//! A compact, dependency-free binary wire format for pub-sub messages.
//!
//! Frames are `u32`-length-prefixed (big-endian). Inside a frame, values
//! serialize with the [`Wire`] trait: fixed-width integers big-endian,
//! byte strings length-prefixed. The format is versioned by a magic byte
//! so incompatible peers fail fast.

use psguard_model::{AttrValue, CategoryPath, Constraint, Event, Filter, IntRange, Op};

/// Maximum frame payload accepted — guards against hostile or corrupt
/// length prefixes: a peer sending a bogus 4-byte prefix must not be able
/// to make the reader allocate gigabytes before `read_exact` fails.
///
/// Sizing: the largest legitimate message is a [`Message::Publish`] whose
/// event carries the biggest payload the secure pipeline produces
/// (encrypted payloads are benched at ≤ 64 KiB) plus up to 4096
/// attributes — well under 512 KiB in practice. 1 MiB gives 2× headroom
/// while still bounding a hostile prefix to one modest allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Wire-format errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// An enum tag byte was invalid.
    BadTag(u8),
    /// A declared length was implausible.
    BadLength(usize),
    /// String bytes were not UTF-8.
    BadUtf8,
    /// Frame magic/version mismatch.
    BadMagic(u8),
    /// A frame's 4-byte length prefix exceeded [`MAX_FRAME`]: either
    /// corruption or a hostile peer trying to force a huge allocation.
    FrameTooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            WireError::BadLength(l) => write!(f, "implausible length {l}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#04x}"),
            WireError::FrameTooLarge(l) => {
                write!(f, "frame of {l} bytes exceeds the {MAX_FRAME}-byte limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Frame magic/version byte.
pub const MAGIC: u8 = 0xA7;

/// A type that can be serialized into / parsed from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Parses a value, advancing `input` past it.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Convenience: decode a complete buffer, requiring full consumption.
    fn from_bytes(mut bytes: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut bytes)?;
        if bytes.is_empty() {
            Ok(v)
        } else {
            Err(WireError::BadLength(bytes.len()))
        }
    }
}

/// Appends a length-prefixed byte string. The borrowed counterpart of
/// `Vec::<u8>::encode` / `String::encode`: encoders hand slices straight
/// to the output buffer instead of cloning into a temporary.
pub fn encode_bytes(bytes: &[u8], buf: &mut Vec<u8>) {
    (bytes.len() as u32).encode(buf);
    buf.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string without cloning it.
pub fn encode_str(s: &str, buf: &mut Vec<u8>) {
    encode_bytes(s.as_bytes(), buf);
}

pub(crate) fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// Like the internal `take` helper, but into a fixed-size array — the length check lives in
/// the return type, so decoders never need a fallible slice conversion.
/// Public so downstream crates implementing [`Wire`] get the same idiom.
pub fn take_arr<const N: usize>(input: &mut &[u8]) -> Result<[u8; N], WireError> {
    let head = take(input, N)?;
    let mut arr = [0u8; N];
    arr.copy_from_slice(head);
    Ok(arr)
}

impl Wire for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(take(input, 1)?[0])
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(u32::from_be_bytes(take_arr(input)?))
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(u64::from_be_bytes(take_arr(input)?))
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(i64::from_be_bytes(take_arr(input)?))
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_str(self, buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = Vec::<u8>::decode(input)?;
        String::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(input)? as usize;
        if len > MAX_FRAME {
            return Err(WireError::BadLength(len));
        }
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl Wire for psguard_crypto::Token {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(psguard_crypto::Token::from_raw(take_arr(input)?))
    }
}

impl Wire for CategoryPath {
    fn encode(&self, buf: &mut Vec<u8>) {
        let indices = self.indices();
        (indices.len() as u32).encode(buf);
        for i in indices {
            i.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(input)? as usize;
        if len > 1024 {
            return Err(WireError::BadLength(len));
        }
        let mut idx = Vec::with_capacity(len);
        for _ in 0..len {
            idx.push(u32::decode(input)?);
        }
        Ok(CategoryPath::from_indices(idx))
    }
}

impl Wire for AttrValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AttrValue::Int(v) => {
                buf.push(0);
                v.encode(buf);
            }
            AttrValue::Str(s) => {
                buf.push(1);
                encode_str(s, buf);
            }
            AttrValue::Category(c) => {
                buf.push(2);
                c.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(AttrValue::Int(i64::decode(input)?)),
            1 => Ok(AttrValue::Str(String::decode(input)?)),
            2 => Ok(AttrValue::Category(CategoryPath::decode(input)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for IntRange {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.lo().encode(buf);
        self.hi().encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let lo = i64::decode(input)?;
        let hi = i64::decode(input)?;
        IntRange::new(lo, hi).ok_or(WireError::BadLength(0))
    }
}

impl Wire for Op {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Op::Eq(v) => {
                buf.push(0);
                v.encode(buf);
            }
            Op::Lt(v) => {
                buf.push(1);
                v.encode(buf);
            }
            Op::Le(v) => {
                buf.push(2);
                v.encode(buf);
            }
            Op::Gt(v) => {
                buf.push(3);
                v.encode(buf);
            }
            Op::Ge(v) => {
                buf.push(4);
                v.encode(buf);
            }
            Op::InRange(r) => {
                buf.push(5);
                r.encode(buf);
            }
            Op::StrPrefix(s) => {
                buf.push(6);
                encode_str(s, buf);
            }
            Op::StrSuffix(s) => {
                buf.push(7);
                encode_str(s, buf);
            }
            Op::CategoryIn(c) => {
                buf.push(8);
                c.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(input)? {
            0 => Op::Eq(AttrValue::decode(input)?),
            1 => Op::Lt(i64::decode(input)?),
            2 => Op::Le(i64::decode(input)?),
            3 => Op::Gt(i64::decode(input)?),
            4 => Op::Ge(i64::decode(input)?),
            5 => Op::InRange(IntRange::decode(input)?),
            6 => Op::StrPrefix(String::decode(input)?),
            7 => Op::StrSuffix(String::decode(input)?),
            8 => Op::CategoryIn(CategoryPath::decode(input)?),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for Filter {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Byte-identical to `Option::<String>::encode`, without the clone.
        match self.topic() {
            None => buf.push(0),
            Some(t) => {
                buf.push(1);
                encode_str(t, buf);
            }
        }
        (self.constraints().len() as u32).encode(buf);
        for c in self.constraints() {
            encode_str(c.name().as_str(), buf);
            c.op().encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let topic: Option<String> = Option::decode(input)?;
        let mut filter = match topic {
            Some(t) => Filter::for_topic(t),
            None => Filter::any(),
        };
        let n = u32::decode(input)? as usize;
        if n > 4096 {
            return Err(WireError::BadLength(n));
        }
        for _ in 0..n {
            let name = String::decode(input)?;
            let op = Op::decode(input)?;
            filter = filter.with(Constraint::new(name, op));
        }
        Ok(filter)
    }
}

impl Wire for Event {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id().0.encode(buf);
        encode_str(self.topic(), buf);
        encode_str(self.publisher(), buf);
        (self.attr_count() as u32).encode(buf);
        for (name, value) in self.attrs() {
            encode_str(name.as_str(), buf);
            value.encode(buf);
        }
        encode_bytes(self.payload(), buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let id = u64::decode(input)?;
        let topic = String::decode(input)?;
        let publisher = String::decode(input)?;
        let n = u32::decode(input)? as usize;
        if n > 4096 {
            return Err(WireError::BadLength(n));
        }
        let mut builder = Event::builder(topic)
            .id(psguard_model::EventId(id))
            .publisher(publisher);
        for _ in 0..n {
            let name = String::decode(input)?;
            let value = AttrValue::decode(input)?;
            builder = builder.attr(name, value);
        }
        let payload = Vec::<u8>::decode(input)?;
        Ok(builder.payload(payload).build())
    }
}

impl Wire for crate::log::Cursor {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.seq.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(crate::log::Cursor {
            epoch: u32::decode(input)?,
            seq: u64::decode(input)?,
        })
    }
}

/// A pub-sub protocol message between two peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message<F, E> {
    /// Peer handshake: 0 = broker, 1 = client.
    Hello {
        /// Peer kind.
        kind: u8,
    },
    /// Register a subscription.
    Subscribe(F),
    /// Remove a subscription.
    Unsubscribe(F),
    /// An event notification.
    Publish(E),
    /// Periodic liveness probe; carries no payload. Peers that stay
    /// silent for too many intervals are evicted (see `tcp`).
    Heartbeat,
    /// Acknowledges a [`Message::Subscribe`]: the broker has installed
    /// the filter and will route matching events. `crc` is the FNV-1a
    /// checksum of the filter's encoding (see [`filter_crc`]), so a
    /// client awaiting a specific subscription can match the ack.
    SubAck {
        /// Checksum identifying the acknowledged filter.
        crc: u32,
    },
    /// A reconnecting subscriber presents the last `(epoch, seq)` it
    /// applied; the broker replays the retained gap from its durable
    /// log (sent after the subscription replay on reconnect).
    CatchUp {
        /// Last cursor the subscriber applied.
        cursor: crate::log::Cursor,
    },
    /// Ends a replay: carries the resolved
    /// [`ResumeOutcome`](crate::log::ResumeOutcome) code and the
    /// broker's high-water cursor at replay end, which the subscriber
    /// adopts as its floor.
    ReplayDone {
        /// [`ResumeOutcome`](crate::log::ResumeOutcome) wire code.
        outcome: u8,
        /// Broker high-water cursor when the replay finished.
        cursor: crate::log::Cursor,
    },
    /// An event notification stamped with its durable log cursor —
    /// what a durable broker sends to *client* peers (replay and live
    /// alike), so the subscriber can dedup across the replay→live
    /// boundary and persist its resume point. Broker↔broker traffic
    /// stays [`Message::Publish`].
    Stamped {
        /// The event's durable log position.
        cursor: crate::log::Cursor,
        /// The event itself.
        event: E,
    },
}

/// FNV-1a (32-bit) over a filter's wire encoding: the identifier echoed
/// in [`Message::SubAck`].
pub fn filter_crc<F: Wire>(filter: &F) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in &filter.to_bytes() {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

impl<F: Wire, E: Wire> Wire for Message<F, E> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(MAGIC);
        match self {
            Message::Hello { kind } => {
                buf.push(0);
                buf.push(*kind);
            }
            Message::Subscribe(f) => {
                buf.push(1);
                f.encode(buf);
            }
            Message::Unsubscribe(f) => {
                buf.push(2);
                f.encode(buf);
            }
            Message::Publish(e) => {
                buf.push(3);
                e.encode(buf);
            }
            Message::Heartbeat => buf.push(4),
            Message::SubAck { crc } => {
                buf.push(5);
                crc.encode(buf);
            }
            Message::CatchUp { cursor } => {
                buf.push(6);
                cursor.encode(buf);
            }
            Message::ReplayDone { outcome, cursor } => {
                buf.push(7);
                buf.push(*outcome);
                cursor.encode(buf);
            }
            Message::Stamped { cursor, event } => {
                buf.push(8);
                cursor.encode(buf);
                event.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let magic = u8::decode(input)?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        Ok(match u8::decode(input)? {
            0 => Message::Hello {
                kind: u8::decode(input)?,
            },
            1 => Message::Subscribe(F::decode(input)?),
            2 => Message::Unsubscribe(F::decode(input)?),
            3 => Message::Publish(E::decode(input)?),
            4 => Message::Heartbeat,
            5 => Message::SubAck {
                crc: u32::decode(input)?,
            },
            6 => Message::CatchUp {
                cursor: crate::log::Cursor::decode(input)?,
            },
            7 => Message::ReplayDone {
                outcome: u8::decode(input)?,
                cursor: crate::log::Cursor::decode(input)?,
            },
            8 => Message::Stamped {
                cursor: crate::log::Cursor::decode(input)?,
                event: E::decode(input)?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Writes one length-prefixed frame as a *single* coalesced write: prefix
/// and payload go out through one `write_vectored` call (one syscall on
/// socket writers) instead of two sequential `write_all`s. Partial writes
/// are completed with follow-up calls, so the function is correct for any
/// writer.
///
/// The steady-state dissemination path avoids even the vectored pair by
/// encoding the prefix into the same buffer as the payload — see
/// [`FramePool`](crate::FramePool) — and lands here only for handshake
/// and test traffic.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let prefix = (payload.len() as u32).to_be_bytes();
    // Two logical segments, one coalesced write. `written` tracks progress
    // across the concatenation [prefix ‖ payload] so partial vectored
    // writes resume mid-segment.
    let total = 4 + payload.len();
    let mut written = 0usize;
    while written < total {
        let bufs: [std::io::IoSlice<'_>; 2] = if written < 4 {
            [
                std::io::IoSlice::new(&prefix[written..]),
                std::io::IoSlice::new(payload),
            ]
        } else {
            [
                std::io::IoSlice::new(&payload[written - 4..]),
                std::io::IoSlice::new(&[]),
            ]
        };
        let n = w.write_vectored(&bufs)?;
        if n == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        written += n;
    }
    w.flush()
}

fn frame_too_large(len: usize) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        WireError::FrameTooLarge(len),
    )
}

/// Reads one length-prefixed frame into a fresh buffer.
///
/// # Errors
///
/// Propagates I/O errors; rejects frames larger than [`MAX_FRAME`] with
/// an `InvalidData` error wrapping [`WireError::FrameTooLarge`] — the
/// check runs *before* any allocation, so a hostile prefix cannot force
/// a multi-GB reservation.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    read_frame_into(r, &mut payload)?;
    Ok(payload)
}

/// Reads one length-prefixed frame into `payload`, reusing its capacity.
///
/// This is the steady-state reader-loop entry point: a per-connection
/// buffer passed here is cleared and refilled, so after warm-up a reader
/// allocates nothing per frame (the buffer grows to the largest frame
/// seen, bounded by [`MAX_FRAME`]).
///
/// # Errors
///
/// As [`read_frame`]: I/O errors propagate, and a length prefix above
/// [`MAX_FRAME`] yields `InvalidData` wrapping
/// [`WireError::FrameTooLarge`] before any buffer growth.
pub fn read_frame_into<R: std::io::Read>(r: &mut R, payload: &mut Vec<u8>) -> std::io::Result<()> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(frame_too_large(len));
    }
    payload.clear();
    payload.resize(len, 0);
    r.read_exact(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdeadbeefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(String::from("héllo"));
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(9u32));
        roundtrip(vec![String::from("a"), String::from("b")]);
    }

    #[test]
    fn model_types_roundtrip() {
        roundtrip(CategoryPath::from_indices([1, 2, 3]));
        roundtrip(AttrValue::Int(-5));
        roundtrip(AttrValue::Str("x".into()));
        roundtrip(AttrValue::Category(CategoryPath::root()));
        roundtrip(IntRange::new(-10, 10).unwrap());
        for op in [
            Op::Eq(AttrValue::Int(1)),
            Op::Lt(2),
            Op::Le(3),
            Op::Gt(4),
            Op::Ge(5),
            Op::InRange(IntRange::new(0, 9).unwrap()),
            Op::StrPrefix("p".into()),
            Op::StrSuffix("s".into()),
            Op::CategoryIn(CategoryPath::from_indices([7])),
        ] {
            roundtrip(op);
        }
    }

    #[test]
    fn filter_and_event_roundtrip() {
        let f = Filter::for_topic("stocks")
            .with(Constraint::new("price", Op::Le(100)))
            .with(Constraint::new("sym", Op::StrPrefix("GO".into())));
        roundtrip(f);
        roundtrip(Filter::any());

        let e = Event::builder("stocks")
            .id(psguard_model::EventId(77))
            .publisher("nasdaq")
            .attr("price", 95i64)
            .attr("sym", "GOOG")
            .payload(vec![0xde, 0xad])
            .build();
        roundtrip(e);
    }

    #[test]
    fn message_roundtrip() {
        let m: Message<Filter, Event> = Message::Subscribe(Filter::for_topic("t"));
        roundtrip(m);
        let m: Message<Filter, Event> = Message::Hello { kind: 1 };
        roundtrip(m);
        let m: Message<Filter, Event> =
            Message::Publish(Event::builder("t").payload(vec![1]).build());
        roundtrip(m);
        roundtrip(Message::<Filter, Event>::Heartbeat);
        roundtrip(Message::<Filter, Event>::SubAck { crc: 0xdead_beef });
    }

    #[test]
    fn catchup_messages_roundtrip() {
        use crate::log::Cursor;
        roundtrip(Cursor {
            epoch: 3,
            seq: u64::MAX,
        });
        roundtrip(Message::<Filter, Event>::CatchUp {
            cursor: Cursor { epoch: 1, seq: 42 },
        });
        roundtrip(Message::<Filter, Event>::ReplayDone {
            outcome: 2,
            cursor: Cursor { epoch: 9, seq: 0 },
        });
        roundtrip(Message::<Filter, Event>::Stamped {
            cursor: Cursor { epoch: 1, seq: 7 },
            event: Event::builder("t").payload(vec![1, 2, 3]).build(),
        });
        // A stamped frame carries the event encoding verbatim after the
        // 12-byte cursor, so the log's opaque payload (an encoded event)
        // decodes unchanged on the client.
        let e = Event::builder("t").payload(vec![9; 10]).build();
        let stamped: Message<Filter, Event> = Message::Stamped {
            cursor: Cursor { epoch: 1, seq: 1 },
            event: e.clone(),
        };
        let bytes = stamped.to_bytes();
        let mut tail = &bytes[2 + 12..]; // magic + tag + cursor
        assert_eq!(Event::decode(&mut tail).unwrap(), e);
    }

    #[test]
    fn filter_crc_distinguishes_filters_and_is_stable() {
        let a = Filter::for_topic("a");
        let b = Filter::for_topic("b");
        assert_eq!(filter_crc(&a), filter_crc(&a.clone()));
        assert_ne!(filter_crc(&a), filter_crc(&b));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(u32::from_bytes(&[1, 2]), Err(WireError::Truncated));
        assert_eq!(Option::<u8>::from_bytes(&[7]), Err(WireError::BadTag(7)));
        // Huge declared length.
        let mut buf = Vec::new();
        (u32::MAX).encode(&mut buf);
        assert!(matches!(
            Vec::<u8>::from_bytes(&buf),
            Err(WireError::BadLength(_))
        ));
        // Bad magic byte.
        assert!(matches!(
            <Message<Filter, Event>>::from_bytes(&[0x00, 1]),
            Err(WireError::BadMagic(0))
        ));
        // Trailing garbage.
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_bytes(&bytes),
            Err(WireError::BadLength(1))
        ));
        // Invalid UTF-8.
        let mut buf = Vec::new();
        vec![0xffu8, 0xfe].encode(&mut buf);
        assert_eq!(String::from_bytes(&buf), Err(WireError::BadUtf8));
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_frame_is_typed_and_preallocation_free() {
        // A hostile 4-GB-ish prefix with no body: the reject must carry
        // the typed error and fire before any read/alloc of the body.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        let mut payload = Vec::new();
        let err = read_frame_into(&mut cursor, &mut payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let inner = err.get_ref().and_then(|e| e.downcast_ref::<WireError>());
        assert_eq!(
            inner,
            Some(&WireError::FrameTooLarge(u32::MAX as usize)),
            "error must be the typed WireError, got {err:?}"
        );
        assert_eq!(payload.capacity(), 0, "must reject before allocating");
    }

    #[test]
    fn read_frame_into_reuses_one_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[7u8; 300]).unwrap();
        write_frame(&mut wire, b"tiny").unwrap();
        write_frame(&mut wire, &[9u8; 128]).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut payload = Vec::new();

        read_frame_into(&mut cursor, &mut payload).unwrap();
        assert_eq!(payload, vec![7u8; 300]);
        let cap = payload.capacity();

        // Subsequent smaller frames refill the same allocation.
        read_frame_into(&mut cursor, &mut payload).unwrap();
        assert_eq!(payload, b"tiny");
        assert_eq!(payload.capacity(), cap);
        read_frame_into(&mut cursor, &mut payload).unwrap();
        assert_eq!(payload, vec![9u8; 128]);
        assert_eq!(payload.capacity(), cap);

        // EOF surfaces as an error, leaving the buffer reusable.
        assert!(read_frame_into(&mut cursor, &mut payload).is_err());
    }
}
