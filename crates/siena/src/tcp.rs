//! Shared TCP transport surface: tuning knobs, counters, and the
//! default (reactor-backed) broker/client entry points.
//!
//! Two interchangeable transports implement the same framed protocol:
//!
//! * [`crate::reactor`] — the default. A readiness-driven event loop:
//!   nonblocking sockets polled by a [`Poller`](crate::Poller), a fixed
//!   worker pool (N ≈ cores) driving per-connection read/decode/write
//!   state machines. Thread count and per-connection memory stay flat as
//!   connections grow (the C10K path). [`spawn_broker`] / [`TcpClient`]
//!   re-exported here are this transport.
//! * [`crate::threaded`] — the thread-per-connection baseline (2 OS
//!   threads per broker peer, 2 per client). Retained for comparison
//!   benchmarks and as a reference implementation of the protocol
//!   semantics.
//!
//! Protocol behaviour is identical across both and hardened for failure:
//!
//! * **Bounded outbound queues** — every per-connection queue holds at
//!   most [`TcpConfig::queue_capacity`] frames. The broker never blocks
//!   its dispatcher on a slow consumer: overflowing frames are dropped
//!   and counted ([`TcpStats::dropped_frames`]). Clients choose an
//!   [`OverflowPolicy`].
//! * **Heartbeats and eviction** — peers exchange heartbeats every
//!   [`TcpConfig::heartbeat_interval`]; a broker evicts a child peer
//!   (dropping its subscriptions, exactly as if it had disconnected)
//!   after [`TcpConfig::heartbeat_miss_limit`] silent intervals.
//! * **Client reconnection** — a client that loses its broker reconnects
//!   with capped exponential backoff plus deterministic jitter, replaying
//!   its subscriptions on every new connection, until
//!   [`TcpConfig::max_reconnect_attempts`] consecutive failures.
//! * **Readiness handshake** — `Subscribe` is acknowledged with `SubAck`
//!   once the filter is installed *and*, when the broker had to forward
//!   it upward, once the parent has acknowledged in turn.
//! * **Zero-copy fan-out** — every outbound message is serialized once
//!   into a pooled, reference-counted `SharedFrame`; a publish matched by
//!   N subscriber connections enqueues N `Arc` clones of the same buffer,
//!   never N copies of the bytes, drained through coalesced vectored
//!   writes.
//!
//! The paper linked its 63-node overlay with "open TCP connections"
//! (§5.2); these modules are the equivalent transport, used by the
//! `broker_network` example and the integration tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// The default transport: reactor-backed broker and client.
pub use crate::reactor::{
    spawn_broker, spawn_broker_durable, spawn_broker_with, TcpBroker, TcpClient,
};

/// What to do when a bounded outbound queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Wait for space (applies backpressure to the caller).
    Block,
    /// Drop the new frame, count it, and report
    /// [`TcpError::Backpressure`](crate::TcpError::Backpressure).
    DropNewest,
}

/// Transport tuning knobs, shared by brokers and clients (and by both
/// the reactor and thread-per-connection transports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Socket read timeout — in the threaded transport, the granularity
    /// at which reader threads notice shutdown. The reactor uses
    /// nonblocking reads and treats this only as a lower bound on its
    /// idle poll latency.
    pub read_timeout: Duration,
    /// Socket write timeout (threaded transport): a peer that stops
    /// draining its socket for this long is treated as dead. The reactor
    /// relies on bounded queues plus heartbeat eviction instead.
    pub write_timeout: Duration,
    /// Capacity of each bounded outbound frame queue.
    pub queue_capacity: usize,
    /// Client-side policy when the outbound queue is full (the broker
    /// always drops — it must never block its dispatcher).
    pub overflow: OverflowPolicy,
    /// Heartbeat period; `Duration::ZERO` disables heartbeats and
    /// eviction.
    pub heartbeat_interval: Duration,
    /// Consecutive silent heartbeat intervals before a broker evicts a
    /// child peer and drops its subscriptions.
    pub heartbeat_miss_limit: u32,
    /// First reconnect delay (doubles per consecutive failure).
    pub reconnect_initial: Duration,
    /// Cap on the reconnect delay.
    pub reconnect_max: Duration,
    /// Consecutive failed reconnects before the client gives up
    /// ([`TcpError::Disconnected`](crate::TcpError::Disconnected) from
    /// then on).
    pub max_reconnect_attempts: u32,
    /// Seed for the deterministic reconnect jitter.
    pub jitter_seed: u64,
    /// Reactor broker worker-pool size. `0` (the default) resolves to
    /// the number of available CPU cores, clamped to
    /// [`MAX_WORKERS`](crate::reactor::MAX_WORKERS). Ignored by the
    /// threaded transport.
    pub worker_threads: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(3),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(5),
            queue_capacity: 1024,
            overflow: OverflowPolicy::Block,
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_miss_limit: 4,
            reconnect_initial: Duration::from_millis(50),
            reconnect_max: Duration::from_secs(2),
            max_reconnect_attempts: 10,
            jitter_seed: 0x7c93,
            worker_threads: 0,
        }
    }
}

/// Counters exposed by [`TcpBroker::stats`] / [`TcpClient::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpStats {
    /// Child peers evicted after missed heartbeats (broker only).
    pub evicted_peers: u64,
    /// Frames dropped by full bounded queues or failed writes.
    pub dropped_frames: u64,
    /// Received events discarded because the application stopped
    /// draining its delivery channel (client only).
    pub dropped_deliveries: u64,
    /// Successful reconnections (client only).
    pub reconnects: u64,
    /// Heartbeat frames sent.
    pub heartbeats_sent: u64,
    /// Replayed (`Stamped`) frames a durable broker queued toward
    /// catching-up subscribers (broker only).
    pub replayed_frames: u64,
    /// Publishes a durable broker could not append to its event log
    /// (delivered live, unstamped, instead) (broker only).
    pub log_append_failures: u64,
    /// Stamped events suppressed by the client's replay/live dedup
    /// window — the double-delivery the catch-up protocol absorbs
    /// (client only).
    pub duplicates_suppressed: u64,
}

#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub(crate) evicted_peers: AtomicU64,
    pub(crate) dropped_frames: AtomicU64,
    pub(crate) dropped_deliveries: AtomicU64,
    pub(crate) reconnects: AtomicU64,
    pub(crate) heartbeats_sent: AtomicU64,
    pub(crate) replayed_frames: AtomicU64,
    pub(crate) log_append_failures: AtomicU64,
    pub(crate) duplicates_suppressed: AtomicU64,
}

impl StatsInner {
    pub(crate) fn snapshot(&self) -> TcpStats {
        TcpStats {
            evicted_peers: self.evicted_peers.load(Ordering::Relaxed),
            dropped_frames: self.dropped_frames.load(Ordering::Relaxed),
            dropped_deliveries: self.dropped_deliveries.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            heartbeats_sent: self.heartbeats_sent.load(Ordering::Relaxed),
            replayed_frames: self.replayed_frames.load(Ordering::Relaxed),
            log_append_failures: self.log_append_failures.load(Ordering::Relaxed),
            duplicates_suppressed: self.duplicates_suppressed.load(Ordering::Relaxed),
        }
    }
}

/// Deterministic jitter: a 64-bit LCG stepped once per reconnect wait.
pub(crate) fn jitter_step(state: &mut u64, base: Duration) -> Duration {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let half = (base.as_micros() as u64 / 2).max(1);
    Duration::from_micros((*state >> 33) % half)
}
