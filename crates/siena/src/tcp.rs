//! A real TCP transport for the broker overlay.
//!
//! Brokers listen on a socket; child brokers and clients connect, send a
//! [`Message::Hello`], then exchange framed [`Message`]s. The routing
//! logic is exactly the pure [`Broker`]; this module only moves bytes.
//!
//! The paper linked its 63-node overlay with "open TCP connections"
//! (§5.2); this module is the equivalent transport, used by the
//! `broker_network` example and the integration tests.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::broker::{Action, Broker};
use crate::index::IndexableFilter;
use crate::semantics::FilterSemantics;
use crate::table::Peer;
use crate::wire::{read_frame, write_frame, Message, Wire};

/// Internal dispatcher input.
enum Input<F: FilterSemantics> {
    FromPeer(u32, Message<F, F::Event>),
    PeerGone(u32),
    NewPeer(u32, Sender<Vec<u8>>),
    Shutdown,
}

/// Handle to a running TCP broker. Dropping the handle shuts it down.
pub struct TcpBroker {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    dispatcher_tx_shutdown: Box<dyn Fn() + Send + Sync>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBroker").field("addr", &self.addr).finish()
    }
}

impl TcpBroker {
    /// The address the broker listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins the worker threads.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        (self.dispatcher_tx_shutdown)();
        // Poke the accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for TcpBroker {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn spawn_writer(stream: TcpStream, rx: Receiver<Vec<u8>>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut stream = stream;
        while let Ok(frame) = rx.recv() {
            if frame.is_empty() {
                break; // shutdown sentinel
            }
            if write_frame(&mut stream, &frame).is_err() {
                break;
            }
        }
        let _ = stream.flush();
    })
}

fn spawn_reader<F>(
    stream: TcpStream,
    peer_id: u32,
    tx: Sender<Input<F>>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()>
where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send,
{
    std::thread::spawn(move || {
        let mut stream = stream;
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .ok();
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match read_frame(&mut stream) {
                Ok(frame) => match Message::<F, F::Event>::from_bytes(&frame) {
                    Ok(msg) => {
                        if tx.send(Input::FromPeer(peer_id, msg)).is_err() {
                            break;
                        }
                    }
                    Err(_) => break, // protocol violation: drop the peer
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break,
            }
        }
        let _ = tx.send(Input::PeerGone(peer_id));
    })
}

/// Spawns a TCP broker listening on `listen` (use port 0 for an ephemeral
/// port), optionally connected upward to `parent`.
///
/// # Errors
///
/// Propagates socket errors (bind/connect failures).
pub fn spawn_broker<F>(listen: &str, parent: Option<SocketAddr>) -> std::io::Result<TcpBroker>
where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    let listener = TcpListener::bind(listen)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = unbounded::<Input<F>>();
    let mut threads = Vec::new();

    // Parent link (peer id 0 is reserved for the parent).
    const PARENT_ID: u32 = 0;
    let mut parent_tx: Option<Sender<Vec<u8>>> = None;
    if let Some(paddr) = parent {
        let stream = TcpStream::connect(paddr)?;
        stream.set_nodelay(true).ok();
        let (wtx, wrx) = unbounded::<Vec<u8>>();
        threads.push(spawn_writer(stream.try_clone()?, wrx));
        threads.push(spawn_reader::<F>(
            stream,
            PARENT_ID,
            tx.clone(),
            shutdown.clone(),
        ));
        // Introduce ourselves as a broker.
        let hello: Message<F, F::Event> = Message::Hello { kind: 0 };
        let _ = wtx.send(hello.to_bytes());
        parent_tx = Some(wtx);
    }

    // Accept loop.
    {
        let tx = tx.clone();
        let shutdown = shutdown.clone();
        let next_peer = Arc::new(Mutex::new(1u32));
        threads.push(std::thread::spawn(move || {
            let mut reader_threads = Vec::new();
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                stream.set_nodelay(true).ok();
                let peer_id = {
                    let mut n = next_peer.lock();
                    let id = *n;
                    *n += 1;
                    id
                };
                let (wtx, wrx) = unbounded::<Vec<u8>>();
                if let Ok(ws) = stream.try_clone() {
                    reader_threads.push(spawn_writer(ws, wrx));
                } else {
                    continue;
                }
                let _ = tx.send(Input::NewPeer(peer_id, wtx));
                reader_threads.push(spawn_reader::<F>(
                    stream,
                    peer_id,
                    tx.clone(),
                    shutdown.clone(),
                ));
            }
            for t in reader_threads {
                let _ = t.join();
            }
        }));
    }

    // Dispatcher: owns the pure broker and the peer registry.
    {
        let is_root = parent.is_none();
        threads.push(std::thread::spawn(move || {
            let mut broker: Broker<F> = Broker::new(is_root);
            let mut writers: std::collections::HashMap<u32, Sender<Vec<u8>>> =
                std::collections::HashMap::new();
            if let Some(ptx) = parent_tx {
                writers.insert(PARENT_ID, ptx);
            }
            let send_to = |writers: &std::collections::HashMap<u32, Sender<Vec<u8>>>,
                           peer: u32,
                           msg: &Message<F, F::Event>| {
                if let Some(w) = writers.get(&peer) {
                    let _ = w.send(msg.to_bytes());
                }
            };
            while let Ok(input) = rx.recv() {
                match input {
                    Input::Shutdown => break,
                    Input::NewPeer(id, wtx) => {
                        writers.insert(id, wtx);
                    }
                    Input::PeerGone(id) => {
                        if id != PARENT_ID {
                            broker.peer_down(Peer::Child(id));
                        }
                        if let Some(w) = writers.remove(&id) {
                            let _ = w.send(Vec::new()); // writer sentinel
                        }
                    }
                    Input::FromPeer(id, msg) => {
                        let from = if id == PARENT_ID {
                            Peer::Parent
                        } else {
                            Peer::Child(id)
                        };
                        let actions = match msg {
                            Message::Hello { .. } => Vec::new(),
                            Message::Subscribe(f) => broker.subscribe(from, f),
                            Message::Unsubscribe(f) => broker.unsubscribe(from, &f),
                            Message::Publish(e) => broker.publish(from, e),
                        };
                        for action in actions {
                            match action {
                                Action::ForwardSubscribe(f) => {
                                    send_to(&writers, PARENT_ID, &Message::Subscribe(f));
                                }
                                Action::ForwardUnsubscribe(f) => {
                                    send_to(&writers, PARENT_ID, &Message::Unsubscribe(f));
                                }
                                Action::Deliver(Peer::Parent, e) => {
                                    send_to(&writers, PARENT_ID, &Message::Publish(e));
                                }
                                Action::Deliver(Peer::Child(c), e) => {
                                    send_to(&writers, c, &Message::Publish(e));
                                }
                                Action::Deliver(Peer::Local(c), e) => {
                                    send_to(&writers, c, &Message::Publish(e));
                                }
                            }
                        }
                    }
                }
            }
            // Release writer threads.
            for (_, w) in writers {
                let _ = w.send(Vec::new());
            }
        }));
    }

    let tx_for_shutdown = tx;
    Ok(TcpBroker {
        addr,
        shutdown,
        dispatcher_tx_shutdown: Box::new(move || {
            let _ = tx_for_shutdown.send(Input::Shutdown);
        }),
        threads,
    })
}

/// A client connection: subscribe and publish over TCP, receive matching
/// events.
pub struct TcpClient<F: FilterSemantics> {
    writer: Sender<Vec<u8>>,
    events: Receiver<F::Event>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    _marker: std::marker::PhantomData<F>,
}

impl<F: FilterSemantics> std::fmt::Debug for TcpClient<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TcpClient { .. }")
    }
}

impl<F> TcpClient<F>
where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send + 'static,
{
    /// Connects to a broker.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(broker: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(broker)?;
        stream.set_nodelay(true).ok();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (wtx, wrx) = unbounded::<Vec<u8>>();
        let (etx, erx) = bounded::<F::Event>(4096);
        let mut threads = Vec::new();
        threads.push(spawn_writer(stream.try_clone()?, wrx));
        {
            let shutdown = shutdown.clone();
            let mut stream = stream;
            threads.push(std::thread::spawn(move || {
                stream
                    .set_read_timeout(Some(Duration::from_millis(200)))
                    .ok();
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match read_frame(&mut stream) {
                        Ok(frame) => {
                            if let Ok(Message::Publish(e)) =
                                Message::<F, F::Event>::from_bytes(&frame)
                            {
                                if etx.send(e).is_err() {
                                    break;
                                }
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue;
                        }
                        Err(_) => break,
                    }
                }
            }));
        }
        let hello: Message<F, F::Event> = Message::Hello { kind: 1 };
        let _ = wtx.send(hello.to_bytes());
        Ok(TcpClient {
            writer: wtx,
            events: erx,
            shutdown,
            threads,
            _marker: std::marker::PhantomData,
        })
    }

    /// Registers a subscription.
    pub fn subscribe(&self, filter: F) {
        let msg: Message<F, F::Event> = Message::Subscribe(filter);
        let _ = self.writer.send(msg.to_bytes());
    }

    /// Publishes an event.
    pub fn publish(&self, event: F::Event) {
        let msg: Message<F, F::Event> = Message::Publish(event);
        let _ = self.writer.send(msg.to_bytes());
    }

    /// Waits up to `timeout` for the next delivered event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<F::Event> {
        self.events.recv_timeout(timeout).ok()
    }
}

impl<F: FilterSemantics> Drop for TcpClient<F> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.writer.send(Vec::new());
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Constraint, Event, Filter, Op};

    #[test]
    fn single_broker_pubsub_roundtrip() {
        let broker = spawn_broker::<Filter>("127.0.0.1:0", None).unwrap();
        let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).unwrap();
        let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).unwrap();

        sub.subscribe(Filter::for_topic("t").with(Constraint::new("x", Op::Ge(10))));
        std::thread::sleep(Duration::from_millis(150));

        let hit = Event::builder("t").attr("x", 42i64).payload(vec![1]).build();
        let miss = Event::builder("t").attr("x", 1i64).build();
        publisher.publish(miss.clone());
        publisher.publish(hit.clone());

        let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(got, hit);
        // The non-matching event must not arrive.
        assert!(sub.recv_timeout(Duration::from_millis(200)).is_none());
        broker.shutdown();
    }

    #[test]
    fn two_level_tree_routes_through_root() {
        let root = spawn_broker::<Filter>("127.0.0.1:0", None).unwrap();
        let left = spawn_broker::<Filter>("127.0.0.1:0", Some(root.addr())).unwrap();
        let right = spawn_broker::<Filter>("127.0.0.1:0", Some(root.addr())).unwrap();

        let sub: TcpClient<Filter> = TcpClient::connect(left.addr()).unwrap();
        let publisher: TcpClient<Filter> = TcpClient::connect(right.addr()).unwrap();

        sub.subscribe(Filter::for_topic("news"));
        std::thread::sleep(Duration::from_millis(300));

        let e = Event::builder("news").payload(b"flash".to_vec()).build();
        publisher.publish(e.clone());
        let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(got, e);

        drop(sub);
        drop(publisher);
        left.shutdown();
        right.shutdown();
        root.shutdown();
    }
}
