//! Per-broker subscription tables with Siena's covering optimization.

use crate::semantics::FilterSemantics;

/// A neighbor of a broker: its parent, a child broker, or a locally
/// attached client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Peer {
    /// The broker's parent in the dissemination hierarchy.
    Parent,
    /// A child broker, by overlay node id.
    Child(u32),
    /// A locally attached client (publisher or subscriber).
    Local(u32),
}

/// The subscription table of one broker.
///
/// Stores `(peer, filter)` registrations and answers the two questions the
/// routing algorithm asks:
///
/// * which peers should receive an event ([`SubscriptionTable::matching_peers`]);
/// * must a new subscription be forwarded to the parent, or is it covered
///   by something already forwarded ([`SubscriptionTable::insert`])?
#[derive(Debug, Clone)]
pub struct SubscriptionTable<F> {
    entries: Vec<(Peer, F)>,
}

impl<F> Default for SubscriptionTable<F> {
    fn default() -> Self {
        SubscriptionTable {
            entries: Vec::new(),
        }
    }
}

impl<F: FilterSemantics> SubscriptionTable<F> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[(Peer, F)] {
        &self.entries
    }

    /// Registers `filter` for `peer`. Returns `true` when the subscription
    /// must be forwarded to the parent — i.e. it is **not** covered by any
    /// previously registered filter (Siena's covering optimization, §2.1).
    ///
    /// Duplicate `(peer, filter)` registrations are idempotent and never
    /// forwarded.
    pub fn insert(&mut self, peer: Peer, filter: F) -> bool {
        if self
            .entries
            .iter()
            .any(|(p, f)| *p == peer && *f == filter)
        {
            return false;
        }
        let covered = self.entries.iter().any(|(_, f)| f.covers(&filter));
        self.entries.push((peer, filter));
        !covered
    }

    /// Removes a specific `(peer, filter)` registration. Returns `true`
    /// when something was removed.
    pub fn remove(&mut self, peer: Peer, filter: &F) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(p, f)| !(*p == peer && f == filter));
        before != self.entries.len()
    }

    /// Removes every registration of `peer` (e.g. on disconnect).
    pub fn remove_peer(&mut self, peer: Peer) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(p, _)| *p != peer);
        before - self.entries.len()
    }

    /// The distinct peers whose filters match `event`, in first-seen order.
    pub fn matching_peers(&self, event: &F::Event) -> Vec<Peer> {
        let mut out: Vec<Peer> = Vec::new();
        for (peer, filter) in &self.entries {
            if filter.matches(event) && !out.contains(peer) {
                out.push(*peer);
            }
        }
        out
    }

    /// Number of filter evaluations `matching_peers` would perform — the
    /// per-event matching cost used by the performance model.
    pub fn match_work(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Constraint, Event, Filter, Op};

    fn age_filter(min: i64) -> Filter {
        Filter::for_topic("t").with(Constraint::new("age", Op::Ge(min)))
    }

    fn event(age: i64) -> Event {
        Event::builder("t").attr("age", age).build()
    }

    #[test]
    fn first_subscription_forwards() {
        let mut t = SubscriptionTable::new();
        assert!(t.insert(Peer::Child(1), age_filter(10)));
    }

    #[test]
    fn covered_subscription_not_forwarded() {
        let mut t = SubscriptionTable::new();
        assert!(t.insert(Peer::Child(1), age_filter(10)));
        // Narrower filter from another peer: covered, no forward.
        assert!(!t.insert(Peer::Child(2), age_filter(20)));
        // Broader filter: not covered, forward.
        assert!(t.insert(Peer::Child(3), age_filter(0)));
    }

    #[test]
    fn duplicate_registration_idempotent() {
        let mut t = SubscriptionTable::new();
        assert!(t.insert(Peer::Child(1), age_filter(10)));
        assert!(!t.insert(Peer::Child(1), age_filter(10)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn matching_peers_dedup_and_filter() {
        let mut t = SubscriptionTable::new();
        t.insert(Peer::Child(1), age_filter(10));
        t.insert(Peer::Child(1), age_filter(30));
        t.insert(Peer::Child(2), age_filter(50));
        assert_eq!(t.matching_peers(&event(40)), vec![Peer::Child(1)]);
        assert_eq!(
            t.matching_peers(&event(60)),
            vec![Peer::Child(1), Peer::Child(2)]
        );
        assert!(t.matching_peers(&event(5)).is_empty());
    }

    #[test]
    fn remove_specific_and_peer() {
        let mut t = SubscriptionTable::new();
        t.insert(Peer::Child(1), age_filter(10));
        t.insert(Peer::Child(1), age_filter(20));
        t.insert(Peer::Local(7), age_filter(10));
        assert!(t.remove(Peer::Child(1), &age_filter(10)));
        assert!(!t.remove(Peer::Child(1), &age_filter(10)));
        assert_eq!(t.remove_peer(Peer::Child(1)), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.matching_peers(&event(15)), vec![Peer::Local(7)]);
    }
}
