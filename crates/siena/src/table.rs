//! Per-broker subscription tables with Siena's covering optimization.
//!
//! Storage is two-layered: a flat `(peer, filter)` list preserving
//! registration order (the reference the property tests check against),
//! and a [`MatchIndex`] that answers event matching and covering scans
//! sublinearly. Every mutation keeps the two coherent.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::index::{EntryId, IndexableFilter, MatchIndex, MatchStats};

/// A neighbor of a broker: its parent, a child broker, or a locally
/// attached client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Peer {
    /// The broker's parent in the dissemination hierarchy.
    Parent,
    /// A child broker, by overlay node id.
    Child(u32),
    /// A locally attached client (publisher or subscriber).
    Local(u32),
}

fn entry_hash<F: Hash>(peer: Peer, filter: &F) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    peer.hash(&mut h);
    filter.hash(&mut h);
    h.finish()
}

/// The subscription table of one broker.
///
/// Stores `(peer, filter)` registrations and answers the two questions the
/// routing algorithm asks:
///
/// * which peers should receive an event ([`SubscriptionTable::matching_peers`]);
/// * must a new subscription be forwarded to the parent, or is it covered
///   by something already forwarded ([`SubscriptionTable::insert`])?
#[derive(Debug, Clone)]
pub struct SubscriptionTable<F: IndexableFilter> {
    entries: Vec<(Peer, F)>,
    /// `entries[i]`'s id inside the index (parallel vector).
    ids: Vec<EntryId>,
    index: MatchIndex<F>,
    /// Hashes of live `(peer, filter)` registrations, with multiplicity.
    /// An absent hash lets [`insert`](Self::insert) skip the exact
    /// duplicate scan entirely — the common case.
    seen: HashMap<u64, u32>,
}

impl<F: IndexableFilter> Default for SubscriptionTable<F> {
    fn default() -> Self {
        SubscriptionTable {
            entries: Vec::new(),
            ids: Vec::new(),
            index: MatchIndex::new(),
            seen: HashMap::new(),
        }
    }
}

impl<F: IndexableFilter> SubscriptionTable<F> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[(Peer, F)] {
        &self.entries
    }

    /// The underlying match index (diagnostics: distinct keys, last
    /// query's work).
    pub fn index(&self) -> &MatchIndex<F> {
        &self.index
    }

    /// Registers `filter` for `peer`. Returns `true` when the subscription
    /// must be forwarded to the parent — i.e. it is **not** covered by any
    /// previously registered filter (Siena's covering optimization, §2.1).
    ///
    /// Duplicate `(peer, filter)` registrations are idempotent and never
    /// forwarded. The duplicate test is a hash-presence check (exact
    /// confirmation only on hash hit), and the covering test scans only
    /// the buckets that could hold a covering filter.
    pub fn insert(&mut self, peer: Peer, filter: F) -> bool {
        let h = entry_hash(peer, &filter);
        if self.seen.get(&h).copied().unwrap_or(0) > 0 && self.index.contains(peer, &filter) {
            return false;
        }
        let covered = self.index.covered_by_any(&filter);
        let id = self.index.insert(peer, filter.clone());
        self.entries.push((peer, filter));
        self.ids.push(id);
        *self.seen.entry(h).or_insert(0) += 1;
        !covered
    }

    /// Removes a specific `(peer, filter)` registration. Returns `true`
    /// when something was removed.
    pub fn remove(&mut self, peer: Peer, filter: &F) -> bool {
        let h = entry_hash(peer, filter);
        if self.seen.get(&h).copied().unwrap_or(0) == 0 {
            return false;
        }
        // Insert's idempotence guarantees at most one exact occurrence.
        let Some(pos) = self
            .entries
            .iter()
            .position(|(p, f)| *p == peer && f == filter)
        else {
            return false;
        };
        self.remove_at(pos, h);
        true
    }

    /// Removes every registration of `peer` (e.g. on disconnect).
    pub fn remove_peer(&mut self, peer: Peer) -> usize {
        let mut removed = 0;
        while let Some(pos) = self.entries.iter().position(|(p, _)| *p == peer) {
            let h = entry_hash(peer, &self.entries[pos].1);
            self.remove_at(pos, h);
            removed += 1;
        }
        removed
    }

    fn remove_at(&mut self, pos: usize, hash: u64) {
        self.index.remove(self.ids[pos]);
        // O(n) shift keeps registration order, so the index's first-seen
        // ordering and the linear reference stay aligned.
        self.entries.remove(pos);
        self.ids.remove(pos);
        if let Some(c) = self.seen.get_mut(&hash) {
            *c -= 1;
            if *c == 0 {
                self.seen.remove(&hash);
            }
        }
    }

    /// The distinct peers whose filters match `event`, in first-seen
    /// order. Served by the [`MatchIndex`] fast path; work performed is
    /// reported by [`last_match_work`](Self::last_match_work).
    pub fn matching_peers(&mut self, event: &F::Event) -> Vec<Peer> {
        self.index.query(event)
    }

    /// [`matching_peers`](Self::matching_peers) into a caller-provided
    /// buffer: `out` is cleared and refilled, so a publish loop reuses
    /// one allocation across events instead of building a fresh `Vec`
    /// per event.
    pub fn matching_peers_into(&mut self, event: &F::Event, out: &mut Vec<Peer>) {
        self.index.query_into(event, out);
    }

    /// Reference implementation of [`matching_peers`](Self::matching_peers):
    /// the original linear scan over every registration. Kept as the
    /// oracle for property tests and as the baseline for benchmarks.
    pub fn matching_peers_linear(&self, event: &F::Event) -> Vec<Peer> {
        let mut out: Vec<Peer> = Vec::new();
        for (peer, filter) in &self.entries {
            if filter.matches(event) && !out.contains(peer) {
                out.push(*peer);
            }
        }
        out
    }

    /// Work performed by the most recent [`matching_peers`](Self::matching_peers)
    /// call (key probes + distinct-predicate evaluations) — the
    /// per-event matching cost used by the performance model. The linear
    /// scan's equivalent was `len()`.
    pub fn last_match_work(&self) -> u64 {
        self.index.last_stats().work()
    }

    /// Detailed statistics of the most recent match.
    pub fn last_match_stats(&self) -> MatchStats {
        self.index.last_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Constraint, Event, Filter, Op};

    fn age_filter(min: i64) -> Filter {
        Filter::for_topic("t").with(Constraint::new("age", Op::Ge(min)))
    }

    fn event(age: i64) -> Event {
        Event::builder("t").attr("age", age).build()
    }

    #[test]
    fn first_subscription_forwards() {
        let mut t = SubscriptionTable::new();
        assert!(t.insert(Peer::Child(1), age_filter(10)));
    }

    #[test]
    fn covered_subscription_not_forwarded() {
        let mut t = SubscriptionTable::new();
        assert!(t.insert(Peer::Child(1), age_filter(10)));
        // Narrower filter from another peer: covered, no forward.
        assert!(!t.insert(Peer::Child(2), age_filter(20)));
        // Broader filter: not covered, forward.
        assert!(t.insert(Peer::Child(3), age_filter(0)));
    }

    #[test]
    fn duplicate_registration_idempotent() {
        let mut t = SubscriptionTable::new();
        assert!(t.insert(Peer::Child(1), age_filter(10)));
        assert!(!t.insert(Peer::Child(1), age_filter(10)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_short_circuit_preserves_len_across_churn() {
        // The hash short-circuit must agree with exact comparison: after
        // a mix of duplicate and distinct inserts plus removals, len()
        // matches the count of distinct live registrations.
        let mut t = SubscriptionTable::new();
        let mut distinct = std::collections::HashSet::new();
        for round in 0..3 {
            // i and i+16 produce the same (peer, filter) pair, and every
            // round repeats all of them: only the brute-force-distinct
            // pairs may survive the short-circuit.
            for i in 0..32i64 {
                t.insert(Peer::Child((i % 8) as u32), age_filter(i % 16));
                distinct.insert(((i % 8) as u32, i % 16));
            }
            assert_eq!(t.len(), distinct.len(), "round {round}");
        }
        for i in 0..32i64 {
            t.remove(Peer::Child((i % 8) as u32), &age_filter(i % 16));
        }
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        // And the table is fully reusable after draining.
        assert!(t.insert(Peer::Child(1), age_filter(10)));
        assert!(!t.insert(Peer::Child(1), age_filter(10)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn matching_peers_dedup_and_filter() {
        let mut t = SubscriptionTable::new();
        t.insert(Peer::Child(1), age_filter(10));
        t.insert(Peer::Child(1), age_filter(30));
        t.insert(Peer::Child(2), age_filter(50));
        assert_eq!(t.matching_peers(&event(40)), vec![Peer::Child(1)]);
        assert_eq!(
            t.matching_peers(&event(60)),
            vec![Peer::Child(1), Peer::Child(2)]
        );
        assert!(t.matching_peers(&event(5)).is_empty());
    }

    #[test]
    fn fast_path_agrees_with_linear_reference() {
        let mut t = SubscriptionTable::new();
        t.insert(Peer::Child(1), age_filter(10));
        t.insert(Peer::Child(1), age_filter(30));
        t.insert(Peer::Child(2), age_filter(50));
        t.insert(Peer::Parent, Filter::any());
        for age in [5i64, 10, 29, 30, 50, 99] {
            let e = event(age);
            assert_eq!(
                t.matching_peers(&e),
                t.matching_peers_linear(&e),
                "age={age}"
            );
        }
    }

    #[test]
    fn match_work_is_sublinear_across_topics() {
        let mut t = SubscriptionTable::new();
        for i in 0..100u32 {
            t.insert(Peer::Child(i), Filter::for_topic(format!("topic{i}")));
        }
        let e = Event::builder("topic7").build();
        assert_eq!(t.matching_peers(&e), vec![Peer::Child(7)]);
        // One bucket probe; the other 99 topics cost nothing. The linear
        // scan's equivalent would have been 100.
        assert_eq!(t.last_match_work(), 1);
    }

    #[test]
    fn remove_specific_and_peer() {
        let mut t = SubscriptionTable::new();
        t.insert(Peer::Child(1), age_filter(10));
        t.insert(Peer::Child(1), age_filter(20));
        t.insert(Peer::Local(7), age_filter(10));
        assert!(t.remove(Peer::Child(1), &age_filter(10)));
        assert!(!t.remove(Peer::Child(1), &age_filter(10)));
        assert_eq!(t.remove_peer(Peer::Child(1)), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.matching_peers(&event(15)), vec![Peer::Local(7)]);
    }
}
