//! Reactor worker: one thread driving many connections.
//!
//! Each worker owns a [`Poller`] plus a map of [`Conn`] state machines
//! and loops over *readiness*, not peers: drain control messages (new
//! connections, shutdown), ask the poller which tokens may be
//! actionable, and pump each one's write then read side without ever
//! blocking on a socket. Decoded messages flow to the dispatcher over a
//! channel; dead or finished connections are deregistered and announced
//! as [`Input::PeerGone`]. The pool size is fixed at spawn time — the
//! broker's thread count does not grow with its connection count.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender, TryRecvError};

use super::broker::Input;
use super::conn::{Conn, ConnStatus, OutQueue};
use super::poller::{PollWaker, Poller};
use crate::semantics::FilterSemantics;
use crate::tcp::StatsInner;
use crate::wire::Wire;

/// Shared read scratch size per worker (one buffer serves every
/// connection the worker drives — per-connection memory stays flat).
const SCRATCH_BYTES: usize = 64 * 1024;

/// Bound on the best-effort final drain at shutdown.
const SHUTDOWN_FLUSH_ROUNDS: usize = 100;

/// Control messages from the acceptor/dispatcher to a worker.
pub(crate) enum WorkerMsg {
    /// Take ownership of an accepted connection under the given token.
    Add(u32, TcpStream, Arc<OutQueue>),
    /// Drop the connection immediately, counting unsent frames — the
    /// eviction path. Flush-then-close (closing the `OutQueue`) can
    /// never finish against a peer that stopped reading, so eviction
    /// needs this hard close or the socket and its queued frames
    /// linger forever.
    Close(u32),
    /// Flush what you can and exit.
    Shutdown,
}

/// The dispatcher's handle to one worker: a control channel plus the
/// waker that cuts the worker's idle park short.
#[derive(Clone)]
pub(crate) struct WorkerHandle {
    pub(crate) tx: Sender<WorkerMsg>,
    pub(crate) waker: PollWaker,
}

impl WorkerHandle {
    /// Hands a connection to the worker and wakes it.
    pub(crate) fn add(&self, id: u32, stream: TcpStream, out: Arc<OutQueue>) {
        let _ = self.tx.send(WorkerMsg::Add(id, stream, out));
        self.waker.wake();
    }

    /// Asks the worker to hard-close a connection (no flush), waking it.
    pub(crate) fn close(&self, id: u32) {
        let _ = self.tx.send(WorkerMsg::Close(id));
        self.waker.wake();
    }

    /// Asks the worker to flush and exit, waking it.
    pub(crate) fn shutdown(&self) {
        let _ = self.tx.send(WorkerMsg::Shutdown);
        self.waker.wake();
    }
}

/// Body of one broker worker thread.
pub(crate) fn run_broker_worker<F>(
    mut poller: Box<dyn Poller>,
    rx: Receiver<WorkerMsg>,
    dispatch_tx: Sender<Input<F>>,
    stats: Arc<StatsInner>,
) where
    F: FilterSemantics + Wire,
    F::Event: Wire,
{
    let mut conns: HashMap<u32, Conn> = HashMap::new();
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    let mut ready: Vec<u32> = Vec::new();
    let mut gone: Vec<(u32, bool)> = Vec::new(); // (token, was_dead)

    loop {
        loop {
            match rx.try_recv() {
                Ok(WorkerMsg::Add(id, stream, out)) => match Conn::new(stream, out) {
                    Ok(conn) => {
                        conns.insert(id, conn);
                        poller.register(id);
                    }
                    Err(_) => {
                        let _ = dispatch_tx.send(Input::PeerGone(id));
                    }
                },
                Ok(WorkerMsg::Close(id)) => {
                    // Dispatcher-initiated eviction: drop the socket now
                    // (closing the fd) and count what never made the
                    // wire. No PeerGone — the dispatcher already removed
                    // its own state for this id.
                    poller.deregister(id);
                    if let Some(conn) = conns.remove(&id) {
                        let unsent = conn.unsent();
                        if unsent > 0 {
                            stats
                                .dropped_frames
                                .fetch_add(unsent, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
                Ok(WorkerMsg::Shutdown) => {
                    final_flush(&mut conns);
                    return;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    final_flush(&mut conns);
                    return;
                }
            }
        }

        ready.clear();
        poller.wait(&mut ready);
        let mut any_progress = false;
        gone.clear();

        for &id in &ready {
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            let (wp, wstatus) = conn.pump_writes();
            any_progress |= wp;
            match wstatus {
                ConnStatus::Dead => {
                    gone.push((id, true));
                    continue;
                }
                ConnStatus::Finished => {
                    gone.push((id, false));
                    continue;
                }
                ConnStatus::Open => {}
            }
            let (rp, rstatus) = conn.pump_reads::<F>(&mut scratch, &mut |msg| {
                dispatch_tx.send(Input::FromPeer(id, msg)).is_ok()
            });
            any_progress |= rp;
            if rstatus == ConnStatus::Dead {
                gone.push((id, true));
            }
        }

        for &(id, was_dead) in &gone {
            poller.deregister(id);
            if let Some(conn) = conns.remove(&id) {
                conn.out.close();
                if was_dead {
                    let unsent = conn.unsent();
                    if unsent > 0 {
                        stats
                            .dropped_frames
                            .fetch_add(unsent, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }
            let _ = dispatch_tx.send(Input::PeerGone(id));
        }

        poller.note_progress(any_progress || !gone.is_empty());
    }
}

/// Best-effort bounded drain of every connection's remaining frames at
/// shutdown — sockets close when `conns` drops.
fn final_flush(conns: &mut HashMap<u32, Conn>) {
    for _ in 0..SHUTDOWN_FLUSH_ROUNDS {
        let mut pending = false;
        for conn in conns.values_mut() {
            let (_, status) = conn.pump_writes();
            if status == ConnStatus::Open && conn.unsent() > 0 {
                pending = true;
            }
        }
        if !pending {
            return;
        }
        // BLOCKING-OK: shutdown-only bounded drain; the event loop has
        // already exited, so there is no reactor left to stall.
        std::thread::sleep(Duration::from_millis(1));
    }
}
