//! The reactor-backed client: many broker connections on one thread.
//!
//! A [`ClientReactor`] owns a single I/O thread hosting any number of
//! client connections as nonblocking state machines — versus the
//! threaded transport's supervisor + per-epoch reader pair *per
//! client*. [`TcpClient`] (the default, drop-in handle) bundles a
//! private reactor with one connection: one thread per client instead
//! of three. Scale tests and benches instead share one reactor across
//! hundreds of clients, which is how a single process holds thousands
//! of subscriber connections with a flat thread count.
//!
//! All PR2 resilience behaviour moves from dedicated threads into the
//! reactor's timer wheel: heartbeats are appended to the in-flight
//! write batch when due, reconnects run capped exponential backoff with
//! deterministic jitter and replay remembered subscriptions, and — new
//! with the reactor — a client that hears *nothing* from its broker for
//! `heartbeat_interval × heartbeat_miss_limit` proactively abandons the
//! socket and reconnects (the threaded client only noticed death via
//! socket errors).

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;

use super::conn::{Conn, ConnStatus, OutQueue};
use super::poller::{PollWaker, DEFAULT_MAX_PARK, PARK_BASE};
use crate::error::TcpError;
use crate::fault::SeqDedup;
use crate::frame::{FramePool, FramePoolStats, SharedFrame};
use crate::log::{Cursor, ResumeOutcome};
use crate::semantics::FilterSemantics;
use crate::tcp::{jitter_step, OverflowPolicy, StatsInner, TcpConfig, TcpStats};
use crate::wire::{filter_crc, Message, Wire};

/// Shared read scratch for the reactor thread (all connections).
const SCRATCH_BYTES: usize = 64 * 1024;

/// Bound on the best-effort final drain at shutdown.
const SHUTDOWN_FLUSH_ROUNDS: usize = 100;

/// Delivered-event channel capacity per connection (same bound as the
/// threaded client).
const EVENT_CHANNEL_CAP: usize = 4096;

/// Sequence numbers the client-side dedup window remembers. Bounds the
/// replay/live overlap the exactly-once guarantee absorbs: a catch-up
/// that re-covers more than this many already-delivered events can leak
/// duplicates past the window.
const DEDUP_WINDOW: usize = 4096;

struct Register<F: FilterSemantics> {
    stream: TcpStream,
    addr: SocketAddr,
    out: Arc<OutQueue>,
    etx: Sender<F::Event>,
    atx: Sender<u32>,
    rtx: Sender<ResumeOutcome>,
    cursor: Arc<Mutex<Option<Cursor>>>,
    subs: Arc<Mutex<Vec<F>>>,
    down: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
}

/// A single-threaded reactor hosting any number of client connections.
/// Create one with [`ClientReactor::new`] /
/// [`with_config`](ClientReactor::with_config), then mint connections
/// with [`connect`](ClientReactor::connect). Dropping the reactor flushes
/// and stops every connection it hosts.
pub struct ClientReactor<F: FilterSemantics> {
    reg_tx: Sender<Register<F>>,
    waker: PollWaker,
    shutdown: Arc<AtomicBool>,
    cfg: TcpConfig,
    pool: FramePool,
    thread: Option<JoinHandle<()>>,
}

impl<F: FilterSemantics> std::fmt::Debug for ClientReactor<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ClientReactor { .. }")
    }
}

impl<F> Default for ClientReactor<F>
where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<F> ClientReactor<F>
where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send + 'static,
{
    /// A reactor with the default [`TcpConfig`].
    pub fn new() -> Self {
        Self::with_config(TcpConfig::default())
    }

    /// A reactor with explicit transport tuning (shared by every
    /// connection it hosts).
    pub fn with_config(cfg: TcpConfig) -> Self {
        let (reg_tx, reg_rx) = unbounded::<Register<F>>();
        let waker = PollWaker::new();
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = FramePool::new();
        let thread = {
            let waker = waker.clone();
            let shutdown = shutdown.clone();
            let pool = pool.clone();
            // SPAWN-OK: the client reactor's single I/O thread — fixed count
            // one, regardless of how many connections it hosts.
            std::thread::spawn(move || {
                run_client_reactor::<F>(cfg, reg_rx, waker, shutdown, pool);
            })
        };
        ClientReactor {
            reg_tx,
            waker,
            shutdown,
            cfg,
            pool,
            thread: Some(thread),
        }
    }

    /// Opens a connection to `broker` and hands it to the reactor
    /// thread. The TCP connect and hello handshake happen synchronously
    /// so immediate failures surface here; everything afterwards
    /// (subscription replay on reconnect, heartbeats, backoff) is driven
    /// by the reactor.
    ///
    /// # Errors
    ///
    /// Returns [`TcpError::Io`] when the initial connection fails.
    pub fn connect(&self, broker: SocketAddr) -> Result<ReactorClient<F>, TcpError> {
        self.connect_resuming(broker, None)
    }

    /// Like [`connect`](Self::connect), but seeds the connection with a
    /// delivery cursor from a previous session. Against a durable broker
    /// the client then resumes exactly-once delivery: subscribe, call
    /// [`ReactorClient::catch_up`], and the broker replays the gap since
    /// `resume_from` before live traffic continues. Reconnections after
    /// connection loss present the current cursor automatically.
    ///
    /// # Errors
    ///
    /// Returns [`TcpError::Io`] when the initial connection fails.
    pub fn connect_resuming(
        &self,
        broker: SocketAddr,
        resume_from: Option<Cursor>,
    ) -> Result<ReactorClient<F>, TcpError> {
        let stream =
            TcpStream::connect_timeout(&broker, self.cfg.connect_timeout).map_err(TcpError::Io)?;
        stream.set_nodelay(true).ok();
        let mut hs = stream.try_clone().map_err(TcpError::Io)?;
        let hello: Message<F, F::Event> = Message::Hello { kind: 1 };
        self.pool
            .encode(&hello)
            .write_to(&mut hs)
            .map_err(TcpError::Io)?;

        let out = OutQueue::new(self.cfg.queue_capacity);
        let (etx, erx) = bounded::<F::Event>(EVENT_CHANNEL_CAP);
        let (atx, arx) = unbounded::<u32>();
        let (rtx, rrx) = unbounded::<ResumeOutcome>();
        let cursor: Arc<Mutex<Option<Cursor>>> = Arc::new(Mutex::new(resume_from));
        let subs: Arc<Mutex<Vec<F>>> = Arc::new(Mutex::new(Vec::new()));
        let down = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let reg = Register {
            stream,
            addr: broker,
            out: out.clone(),
            etx,
            atx,
            rtx,
            cursor: cursor.clone(),
            subs: subs.clone(),
            down: down.clone(),
            stats: stats.clone(),
        };
        self.reg_tx.send(reg).map_err(|_| TcpError::Disconnected)?;
        self.waker.wake();
        Ok(ReactorClient {
            out,
            events: erx,
            acks: arx,
            resume: rrx,
            cursor,
            subs,
            down,
            stats,
            pool: self.pool.clone(),
            overflow: self.cfg.overflow,
            waker: self.waker.clone(),
        })
    }

    /// Frame-pool counters for this reactor's outbound encode path.
    pub fn pool_stats(&self) -> FramePoolStats {
        self.pool.stats()
    }
}

impl<F: FilterSemantics> Drop for ClientReactor<F> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One client connection hosted by a [`ClientReactor`]: subscribe and
/// publish over TCP, receive matching events. Reconnects automatically
/// (replaying its subscriptions) when the broker connection is lost.
/// Dropping the handle flushes queued frames and closes the connection.
pub struct ReactorClient<F: FilterSemantics> {
    out: Arc<OutQueue>,
    events: Receiver<F::Event>,
    acks: Receiver<u32>,
    resume: Receiver<ResumeOutcome>,
    cursor: Arc<Mutex<Option<Cursor>>>,
    subs: Arc<Mutex<Vec<F>>>,
    down: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    pool: FramePool,
    overflow: OverflowPolicy,
    waker: PollWaker,
}

impl<F: FilterSemantics> std::fmt::Debug for ReactorClient<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ReactorClient { .. }")
    }
}

impl<F> ReactorClient<F>
where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send + 'static,
{
    fn enqueue(&self, frame: SharedFrame) -> Result<(), TcpError> {
        if self.down.load(Ordering::SeqCst) {
            return Err(TcpError::Disconnected);
        }
        match self.overflow {
            OverflowPolicy::Block => {
                self.out.push_blocking(frame, &self.down)?;
                self.waker.wake();
                Ok(())
            }
            OverflowPolicy::DropNewest => {
                if self.out.offer(frame) {
                    self.waker.wake();
                    Ok(())
                } else if self.out.is_closed() {
                    Err(TcpError::Disconnected)
                } else {
                    self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
                    Err(TcpError::Backpressure)
                }
            }
        }
    }

    /// Registers a subscription. The filter is also remembered for
    /// replay after a reconnection.
    ///
    /// # Errors
    ///
    /// [`TcpError::Disconnected`] when the transport has given up;
    /// [`TcpError::Backpressure`] under [`OverflowPolicy::DropNewest`]
    /// with a full queue.
    pub fn subscribe(&self, filter: F) -> Result<(), TcpError> {
        let msg: Message<F, F::Event> = Message::Subscribe(filter.clone());
        self.subs.lock().push(filter);
        self.enqueue(self.pool.encode(&msg))
    }

    /// Registers a subscription and waits (up to `timeout`) for the
    /// broker chain to acknowledge that it is installed — the readiness
    /// handshake used by tests instead of sleeping.
    ///
    /// # Errors
    ///
    /// [`TcpError::Timeout`] when no ack arrives in time; otherwise as
    /// [`subscribe`](Self::subscribe).
    pub fn subscribe_acked(&self, filter: F, timeout: Duration) -> Result<(), TcpError> {
        let crc = filter_crc(&filter);
        self.subscribe(filter)?;
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(TcpError::Timeout(timeout));
            }
            match self.acks.recv_timeout(left) {
                Ok(c) if c == crc => return Ok(()),
                Ok(_) => continue, // ack for an earlier subscription
                Err(RecvTimeoutError::Timeout) => return Err(TcpError::Timeout(timeout)),
                Err(RecvTimeoutError::Disconnected) => return Err(TcpError::Disconnected),
            }
        }
    }

    /// Removes a subscription (and stops replaying it on reconnect).
    ///
    /// # Errors
    ///
    /// As [`subscribe`](Self::subscribe).
    pub fn unsubscribe(&self, filter: &F) -> Result<(), TcpError> {
        self.subs.lock().retain(|f| f != filter);
        let msg: Message<F, F::Event> = Message::Unsubscribe(filter.clone());
        self.enqueue(self.pool.encode(&msg))
    }

    /// Publishes an event. Delivery is at-most-once across connection
    /// loss: frames queued while disconnected are sent after reconnect,
    /// but a frame lost inside a dying socket is not replayed.
    ///
    /// # Errors
    ///
    /// As [`subscribe`](Self::subscribe).
    pub fn publish(&self, event: F::Event) -> Result<(), TcpError> {
        let msg: Message<F, F::Event> = Message::Publish(event);
        self.enqueue(self.pool.encode(&msg))
    }

    /// Waits up to `timeout` for the next delivered event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<F::Event> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Asks a durable broker to replay the gap since this client's
    /// current cursor (everything, classified `FreshStart`, when there
    /// is none yet). Call after registering subscriptions — replay is
    /// filtered against them. The classification arrives via
    /// [`recv_resume`](Self::recv_resume) once the replay completes;
    /// reconnections after connection loss repeat this automatically.
    ///
    /// # Errors
    ///
    /// As [`subscribe`](Self::subscribe).
    pub fn catch_up(&self) -> Result<(), TcpError> {
        let cursor = (*self.cursor.lock()).unwrap_or_default();
        let msg: Message<F, F::Event> = Message::CatchUp { cursor };
        self.enqueue(self.pool.encode(&msg))
    }

    /// The last contiguously delivered `(epoch, seq)` cursor — persist
    /// it and pass to [`ClientReactor::connect_resuming`] to survive a
    /// process restart. `None` until the first stamped delivery.
    pub fn cursor(&self) -> Option<Cursor> {
        *self.cursor.lock()
    }

    /// Waits up to `timeout` for the next resume classification: how the
    /// broker resolved this client's cursor after a catch-up request or
    /// reconnection ([`ResumeOutcome::ContinuedAtCursor`], gap truncated
    /// by retention, or fresh start).
    pub fn recv_resume(&self, timeout: Duration) -> Option<ResumeOutcome> {
        self.resume.recv_timeout(timeout).ok()
    }

    /// Transport counters (reconnects, drops, heartbeats).
    pub fn stats(&self) -> TcpStats {
        self.stats.snapshot()
    }

    /// Frame-pool counters for the reactor's outbound encode path.
    pub fn pool_stats(&self) -> FramePoolStats {
        self.pool.stats()
    }
}

impl<F: FilterSemantics> Drop for ReactorClient<F> {
    fn drop(&mut self) {
        // Flush-then-close: the reactor drains what is queued, then
        // finishes the connection.
        self.out.close();
        self.waker.wake();
    }
}

/// The default TCP client: a [`ReactorClient`] bundled with a private
/// single-connection [`ClientReactor`] — one OS thread per client
/// (the threaded baseline costs three). Drop-in replacement for the
/// threaded client's API.
pub struct TcpClient<F: FilterSemantics> {
    // Declaration order matters: the connection handle must drop (and
    // close its queue) before the reactor joins its thread.
    client: ReactorClient<F>,
    #[allow(dead_code)]
    reactor: ClientReactor<F>,
}

impl<F: FilterSemantics> std::fmt::Debug for TcpClient<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TcpClient { .. }")
    }
}

impl<F> TcpClient<F>
where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send + 'static,
{
    /// Connects with the default [`TcpConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the initial connection.
    pub fn connect(broker: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with(broker, TcpConfig::default()).map_err(|e| match e {
            TcpError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        })
    }

    /// Connects with explicit transport tuning. The initial connection
    /// is established synchronously (so immediate failures surface
    /// here); later losses are handled by background reconnection.
    ///
    /// # Errors
    ///
    /// Returns [`TcpError::Io`] when the initial connection fails.
    pub fn connect_with(broker: SocketAddr, cfg: TcpConfig) -> Result<Self, TcpError> {
        Self::connect_resuming(broker, cfg, None)
    }

    /// Connects with a delivery cursor carried over from a previous
    /// session — see [`ClientReactor::connect_resuming`].
    ///
    /// # Errors
    ///
    /// Returns [`TcpError::Io`] when the initial connection fails.
    pub fn connect_resuming(
        broker: SocketAddr,
        cfg: TcpConfig,
        resume_from: Option<Cursor>,
    ) -> Result<Self, TcpError> {
        let reactor = ClientReactor::<F>::with_config(cfg);
        let client = reactor.connect_resuming(broker, resume_from)?;
        Ok(TcpClient { client, reactor })
    }

    /// Registers a subscription (remembered for replay on reconnect).
    ///
    /// # Errors
    ///
    /// As [`ReactorClient::subscribe`].
    pub fn subscribe(&self, filter: F) -> Result<(), TcpError> {
        self.client.subscribe(filter)
    }

    /// Registers a subscription and waits for the broker chain's ack.
    ///
    /// # Errors
    ///
    /// As [`ReactorClient::subscribe_acked`].
    pub fn subscribe_acked(&self, filter: F, timeout: Duration) -> Result<(), TcpError> {
        self.client.subscribe_acked(filter, timeout)
    }

    /// Removes a subscription.
    ///
    /// # Errors
    ///
    /// As [`ReactorClient::unsubscribe`].
    pub fn unsubscribe(&self, filter: &F) -> Result<(), TcpError> {
        self.client.unsubscribe(filter)
    }

    /// Publishes an event.
    ///
    /// # Errors
    ///
    /// As [`ReactorClient::publish`].
    pub fn publish(&self, event: F::Event) -> Result<(), TcpError> {
        self.client.publish(event)
    }

    /// Waits up to `timeout` for the next delivered event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<F::Event> {
        self.client.recv_timeout(timeout)
    }

    /// Requests catch-up replay from a durable broker — see
    /// [`ReactorClient::catch_up`].
    ///
    /// # Errors
    ///
    /// As [`ReactorClient::subscribe`].
    pub fn catch_up(&self) -> Result<(), TcpError> {
        self.client.catch_up()
    }

    /// The last contiguously delivered cursor — see
    /// [`ReactorClient::cursor`].
    pub fn cursor(&self) -> Option<Cursor> {
        self.client.cursor()
    }

    /// Waits up to `timeout` for the next resume classification — see
    /// [`ReactorClient::recv_resume`].
    pub fn recv_resume(&self, timeout: Duration) -> Option<ResumeOutcome> {
        self.client.recv_resume(timeout)
    }

    /// Transport counters (reconnects, drops, heartbeats).
    pub fn stats(&self) -> TcpStats {
        self.client.stats()
    }

    /// Frame-pool counters for the client's outbound encode path.
    pub fn pool_stats(&self) -> FramePoolStats {
        self.client.pool_stats()
    }
}

enum CState {
    Connected(Conn),
    Backoff { until: Instant, attempt: u32 },
    Gone,
}

struct Slot<F: FilterSemantics> {
    addr: SocketAddr,
    out: Arc<OutQueue>,
    etx: Sender<F::Event>,
    atx: Sender<u32>,
    rtx: Sender<ResumeOutcome>,
    cursor: Arc<Mutex<Option<Cursor>>>,
    dedup: SeqDedup,
    dedup_epoch: u32,
    subs: Arc<Mutex<Vec<F>>>,
    down: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    state: CState,
    hb_due: Instant,
    last_heard: Instant,
    jitter: u64,
}

fn backoff_delay(cfg: &TcpConfig, jitter: &mut u64, attempt: u32) -> Duration {
    let base = cfg
        .reconnect_initial
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
        .min(cfg.reconnect_max);
    base + jitter_step(jitter, base)
}

fn run_client_reactor<F>(
    cfg: TcpConfig,
    reg_rx: Receiver<Register<F>>,
    waker: PollWaker,
    shutdown: Arc<AtomicBool>,
    pool: FramePool,
) where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send + 'static,
{
    waker.attach_current_thread();
    let hb_frame = pool.encode(&Message::<F, F::Event>::Heartbeat);
    let mut slots: Vec<Slot<F>> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    let mut idle_streak: u32 = 0;

    loop {
        if shutdown.load(Ordering::SeqCst) {
            final_flush(&mut slots);
            return;
        }
        while let Ok(reg) = reg_rx.try_recv() {
            let now = Instant::now();
            let jitter = cfg.jitter_seed ^ u64::from(reg.addr.port());
            let state = match Conn::new(reg.stream, reg.out.clone()) {
                Ok(conn) => CState::Connected(conn),
                // Socket already unusable: fall straight into backoff.
                Err(_) => CState::Backoff {
                    until: now,
                    attempt: 1,
                },
            };
            let dedup_epoch = reg.cursor.lock().map_or(0, |c| c.epoch);
            slots.push(Slot {
                addr: reg.addr,
                out: reg.out,
                etx: reg.etx,
                atx: reg.atx,
                rtx: reg.rtx,
                cursor: reg.cursor,
                dedup: SeqDedup::new(DEDUP_WINDOW),
                dedup_epoch,
                subs: reg.subs,
                down: reg.down,
                stats: reg.stats,
                state,
                hb_due: now + cfg.heartbeat_interval,
                last_heard: now,
                jitter,
            });
            idle_streak = 0;
        }

        let mut progress = false;
        for slot in &mut slots {
            progress |= step_slot(slot, &cfg, &hb_frame, &pool, &mut scratch);
        }
        slots.retain(|s| !matches!(s.state, CState::Gone));

        if progress || waker.take_pending() {
            idle_streak = 0;
            continue;
        }
        idle_streak = idle_streak.saturating_add(1).min(16);
        let shift = idle_streak.saturating_sub(1).min(10);
        let mut park = PARK_BASE
            .saturating_mul(1u32 << shift)
            .min(DEFAULT_MAX_PARK);
        // Never park past the nearest timer (heartbeat or backoff
        // deadline).
        let now = Instant::now();
        for slot in &slots {
            let next = match slot.state {
                CState::Connected(_) if !cfg.heartbeat_interval.is_zero() => {
                    slot.hb_due.saturating_duration_since(now)
                }
                CState::Backoff { until, .. } => until.saturating_duration_since(now),
                _ => continue,
            };
            park = park.min(next.max(Duration::from_micros(10)));
        }
        std::thread::park_timeout(park);
        waker.take_pending();
    }
}

/// Advances one connection's state machine. Returns whether any I/O
/// progress happened.
fn step_slot<F>(
    slot: &mut Slot<F>,
    cfg: &TcpConfig,
    hb_frame: &SharedFrame,
    pool: &FramePool,
    scratch: &mut [u8],
) -> bool
where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send + 'static,
{
    let hb_on = !cfg.heartbeat_interval.is_zero();
    let now = Instant::now();
    match &mut slot.state {
        CState::Gone => false,
        CState::Backoff { until, attempt: _ } => {
            if slot.out.is_closed() {
                // Handle dropped while disconnected: queued frames can
                // never be sent.
                let stranded = slot.out.len() as u64;
                if stranded > 0 {
                    slot.stats
                        .dropped_frames
                        .fetch_add(stranded, Ordering::Relaxed);
                }
                slot.state = CState::Gone;
                return false;
            }
            if now < *until {
                return false;
            }
            match TcpStream::connect_timeout(&slot.addr, cfg.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    match Conn::new(stream, slot.out.clone()) {
                        Ok(mut conn) => {
                            // Handshake rides the write batch: hello,
                            // then every remembered subscription, then —
                            // with a cursor to resume from — a CatchUp.
                            // Subscriptions must precede the CatchUp so
                            // the broker's replay filters against them.
                            let hello: Message<F, F::Event> = Message::Hello { kind: 1 };
                            let mut preload = vec![pool.encode(&hello)];
                            for f in slot.subs.lock().iter() {
                                let m: Message<F, F::Event> = Message::Subscribe(f.clone());
                                preload.push(pool.encode(&m));
                            }
                            match *slot.cursor.lock() {
                                Some(c) => {
                                    let m: Message<F, F::Event> = Message::CatchUp { cursor: c };
                                    preload.push(pool.encode(&m));
                                }
                                None => {
                                    // No cursor yet: nothing to replay.
                                    // Surface the reset instead of
                                    // silently starting fresh.
                                    let _ = slot.rtx.send(ResumeOutcome::FreshStart);
                                }
                            }
                            conn.preload(preload);
                            slot.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                            slot.last_heard = now;
                            slot.hb_due = now + cfg.heartbeat_interval;
                            slot.state = CState::Connected(conn);
                            true
                        }
                        Err(_) => {
                            fail_attempt(slot, cfg, now);
                            false
                        }
                    }
                }
                Err(_) => {
                    fail_attempt(slot, cfg, now);
                    false
                }
            }
        }
        CState::Connected(conn) => {
            if hb_on && now >= slot.hb_due {
                conn.push_direct(hb_frame.clone());
                slot.stats.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
                slot.hb_due = now + cfg.heartbeat_interval;
            }
            let (wp, wstatus) = conn.pump_writes();
            match wstatus {
                ConnStatus::Dead => {
                    disconnect(slot, cfg, now);
                    return wp;
                }
                ConnStatus::Finished => {
                    slot.state = CState::Gone;
                    return wp;
                }
                ConnStatus::Open => {}
            }
            let etx = &slot.etx;
            let atx = &slot.atx;
            let rtx = &slot.rtx;
            let stats = &slot.stats;
            let cursor = &slot.cursor;
            let dedup = &mut slot.dedup;
            let dedup_epoch = &mut slot.dedup_epoch;
            let (rp, rstatus) = conn.pump_reads::<F>(scratch, &mut |msg| match msg {
                // Never block the reactor thread on a consumer: one app
                // thread that stops draining recv must not stall I/O,
                // heartbeats, and reconnects for every other connection
                // this reactor hosts. A full channel drops the delivery
                // and counts it instead.
                Message::Publish(e) => deliver_event(etx, stats, e),
                Message::Stamped { cursor: at, event } => {
                    if at.epoch != *dedup_epoch {
                        // New broker log epoch: the old window and
                        // cursor describe a log that no longer exists.
                        dedup.clear();
                        *dedup_epoch = at.epoch;
                        let mut cur = cursor.lock();
                        if cur.is_none_or(|c| c.epoch != at.epoch) {
                            *cur = None;
                        }
                    }
                    let fresh = dedup.first_seen(at.seq);
                    {
                        // The cursor only ever advances contiguously:
                        // a gap (dropped frame) freezes it so the next
                        // catch-up replays from the last sure point,
                        // and the dedup window absorbs the overlap.
                        let mut cur = cursor.lock();
                        match &mut *cur {
                            Some(c) if c.epoch == at.epoch => {
                                if at.seq == c.seq + 1 {
                                    c.seq = at.seq;
                                }
                            }
                            _ => *cur = Some(at),
                        }
                    }
                    if fresh {
                        deliver_event(etx, stats, event)
                    } else {
                        stats.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
                        true
                    }
                }
                Message::ReplayDone {
                    outcome,
                    cursor: done,
                } => {
                    if done.epoch != *dedup_epoch {
                        dedup.clear();
                        *dedup_epoch = done.epoch;
                    }
                    {
                        let mut cur = cursor.lock();
                        match &*cur {
                            Some(c) if c.epoch == done.epoch && done.seq <= c.seq => {}
                            _ => *cur = Some(done),
                        }
                    }
                    if let Some(oc) = ResumeOutcome::from_code(outcome) {
                        let _ = rtx.send(oc);
                    }
                    true
                }
                Message::SubAck { crc } => {
                    let _ = atx.send(crc);
                    true
                }
                _ => true, // heartbeats, hellos
            });
            if rp {
                slot.last_heard = now;
            }
            if rstatus == ConnStatus::Dead {
                disconnect(slot, cfg, now);
            } else if hb_on
                && now.duration_since(slot.last_heard)
                    > cfg.heartbeat_interval * cfg.heartbeat_miss_limit.max(1)
            {
                // Broker silent past the miss limit: abandon the socket
                // and reconnect rather than waiting for a TCP error.
                disconnect(slot, cfg, now);
            }
            wp || rp
        }
    }
}

/// Hands a received event to the application channel without ever
/// blocking the reactor thread: a full channel drops and counts.
fn deliver_event<E>(etx: &Sender<E>, stats: &StatsInner, event: E) -> bool {
    match etx.try_send(event) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            stats.dropped_deliveries.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// Connection died: count frames lost in the in-flight batch, then
/// either finish (handle gone) or enter backoff. Queued frames survive
/// for the next epoch.
fn disconnect<F: FilterSemantics>(slot: &mut Slot<F>, cfg: &TcpConfig, now: Instant) {
    if let CState::Connected(conn) = &slot.state {
        let lost = conn.batched_unsent();
        if lost > 0 {
            slot.stats.dropped_frames.fetch_add(lost, Ordering::Relaxed);
        }
    }
    if slot.out.is_closed() {
        slot.state = CState::Gone;
        return;
    }
    let delay = backoff_delay(cfg, &mut slot.jitter, 1);
    slot.state = CState::Backoff {
        until: now + delay,
        attempt: 1,
    };
}

/// A reconnect attempt failed: schedule the next one or give up.
fn fail_attempt<F: FilterSemantics>(slot: &mut Slot<F>, cfg: &TcpConfig, now: Instant) {
    let CState::Backoff { attempt, .. } = slot.state else {
        return;
    };
    let next = attempt + 1;
    if next > cfg.max_reconnect_attempts {
        // Transport gives up: fail pending and future sends.
        slot.down.store(true, Ordering::SeqCst);
        slot.out.close();
        let stranded = slot.out.len() as u64;
        if stranded > 0 {
            slot.stats
                .dropped_frames
                .fetch_add(stranded, Ordering::Relaxed);
        }
        slot.state = CState::Gone;
        return;
    }
    let delay = backoff_delay(cfg, &mut slot.jitter, next);
    slot.state = CState::Backoff {
        until: now + delay,
        attempt: next,
    };
}

/// Best-effort bounded drain of every live connection at reactor
/// shutdown.
fn final_flush<F: FilterSemantics>(slots: &mut [Slot<F>]) {
    for _ in 0..SHUTDOWN_FLUSH_ROUNDS {
        let mut pending = false;
        for slot in slots.iter_mut() {
            if let CState::Connected(conn) = &mut slot.state {
                let (_, status) = conn.pump_writes();
                if status == ConnStatus::Open && conn.unsent() > 0 {
                    pending = true;
                }
            }
        }
        if !pending {
            return;
        }
        // BLOCKING-OK: shutdown-only bounded drain; the event loop has
        // already exited, so there is no reactor left to stall.
        std::thread::sleep(Duration::from_millis(1));
    }
}
