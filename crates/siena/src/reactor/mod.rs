//! Readiness-driven TCP transport: the C10K event loop.
//!
//! This module replaces the thread-per-connection transport (retained
//! as [`crate::threaded`]) with a reactor: sockets are nonblocking,
//! readiness comes from a pluggable [`Poller`], and a *fixed* worker
//! pool drives every connection's read/decode/match/write state
//! machine. The broker's thread count and per-connection memory are
//! decided at spawn time and stay flat as connections grow from tens to
//! tens of thousands; the client side packs any number of connections
//! onto a single reactor thread.
//!
//! Layout:
//!
//! * `poller` — the [`Poller`] trait, the zero-`unsafe` [`ScanPoller`]
//!   default backend, and the [`PollWaker`] cross-thread wakeup.
//! * `conn` — per-connection state: bounded outbound queue, resumable
//!   coalesced-write cursor, incremental frame parser.
//! * `worker` — the broker worker loop (one thread, many connections).
//! * `broker` — dispatcher + acceptor + pool assembly; public
//!   [`TcpBroker`] handle.
//! * `client` — [`ClientReactor`] (one thread, many client
//!   connections) and the drop-in [`TcpClient`].
//!
//! See DESIGN.md §15 for the architecture walk-through and the
//! `connection_scaling` bench for the measured flat-thread/flat-memory
//! behaviour against the threaded baseline.

mod broker;
mod client;
mod conn;
mod poller;
mod worker;

pub use broker::{spawn_broker, spawn_broker_durable, spawn_broker_with, TcpBroker, MAX_WORKERS};
pub use client::{ClientReactor, ReactorClient, TcpClient};
pub use poller::{PollWaker, Poller, ScanPoller};
