//! Per-connection state machines: a bounded lock-guarded outbound queue
//! and a nonblocking read/decode + write-resume driver.
//!
//! A [`Conn`] owns exactly one nonblocking socket plus the state a
//! readiness-driven worker needs to resume it mid-operation:
//!
//! * outbound: an [`OutQueue`] of [`SharedFrame`]s feeding a write batch
//!   drained through [`FrameWriteCursor`] — the PR5 coalesced vectored
//!   write path, now resumable across readiness events instead of
//!   blocking a writer thread;
//! * inbound: a reusable accumulation buffer parsed incrementally —
//!   length prefix, [`MAX_FRAME`] bound, then message decode — so a
//!   frame split across arbitrarily many TCP segments costs no extra
//!   allocation and never blocks a thread.

use std::collections::VecDeque;
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::TcpError;
use crate::frame::{FrameWriteCursor, SharedFrame};
use crate::semantics::FilterSemantics;
use crate::wire::{Message, Wire, MAX_FRAME};

/// Frames moved from an [`OutQueue`] into the write batch per refill —
/// the coalescing window for one vectored write burst.
pub(crate) const MAX_COALESCE: usize = 32;

/// Queue refills one `pump_writes` call may perform before yielding, so
/// one firehose connection cannot starve its worker's other sockets.
pub(crate) const REFILL_BUDGET: usize = 8;

/// `read` calls one `pump_reads` pass may issue per connection, for the
/// same fairness reason.
const MAX_READS_PER_PASS: usize = 4;

/// Once this many parsed-and-consumed bytes accumulate at the front of
/// the read buffer, compact it (amortized O(1) per byte).
const COMPACT_THRESHOLD: usize = 4096;

/// How long a blocking producer dozes between capacity probes of a full
/// queue (the queue drains at wire speed, so this bounds added latency,
/// not throughput).
const PUSH_RETRY_NAP: Duration = Duration::from_micros(100);

#[derive(Debug, Default)]
struct OutInner {
    q: VecDeque<SharedFrame>,
    closed: bool,
}

/// A bounded multi-producer outbound frame queue drained by exactly one
/// reactor worker. Frames are `Arc` clones — enqueueing never copies
/// bytes. Closing the queue is the reactor's flush-then-close signal:
/// already-queued frames still drain, after which the worker finishes
/// the connection (this replaces the threaded transport's sentinel
/// frame).
#[derive(Debug)]
pub(crate) struct OutQueue {
    inner: Mutex<OutInner>,
    cap: usize,
}

impl OutQueue {
    pub(crate) fn new(cap: usize) -> Arc<Self> {
        Arc::new(OutQueue {
            inner: Mutex::new(OutInner::default()),
            cap: cap.max(1),
        })
    }

    /// Enqueues without blocking. Returns `false` (frame dropped) when
    /// the queue is full or closed — callers count the drop.
    pub(crate) fn offer(&self, frame: SharedFrame) -> bool {
        let mut inner = self.inner.lock();
        if inner.closed || inner.q.len() >= self.cap {
            return false;
        }
        inner.q.push_back(frame);
        true
    }

    /// Blocking enqueue for [`OverflowPolicy::Block`]
    /// (crate::OverflowPolicy::Block) producers: naps briefly while the
    /// queue is full, gives up when it closes or `abort` is set.
    ///
    /// # Errors
    ///
    /// [`TcpError::Disconnected`] when the queue closed or `abort` was
    /// set before space appeared.
    pub(crate) fn push_blocking(
        &self,
        frame: SharedFrame,
        abort: &AtomicBool,
    ) -> Result<(), TcpError> {
        loop {
            if abort.load(Ordering::SeqCst) {
                return Err(TcpError::Disconnected);
            }
            {
                let mut inner = self.inner.lock();
                if inner.closed {
                    return Err(TcpError::Disconnected);
                }
                if inner.q.len() < self.cap {
                    inner.q.push_back(frame);
                    return Ok(());
                }
            }
            std::thread::sleep(PUSH_RETRY_NAP);
        }
    }

    /// Marks the queue closed: no new frames are accepted, queued frames
    /// still drain, and once empty the draining worker treats the
    /// connection as finished.
    pub(crate) fn close(&self) {
        self.inner.lock().closed = true;
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Frames currently queued (for drop accounting on a dead socket).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().q.len()
    }

    /// Moves up to `max` frames into `batch`. Returns `(moved,
    /// finished)` where `finished` means the queue is closed *and* now
    /// empty — the flush-then-close point.
    pub(crate) fn drain_into(&self, batch: &mut Vec<SharedFrame>, max: usize) -> (usize, bool) {
        let mut inner = self.inner.lock();
        let take = inner.q.len().min(max);
        for _ in 0..take {
            if let Some(f) = inner.q.pop_front() {
                batch.push(f);
            }
        }
        (take, inner.closed && inner.q.is_empty())
    }
}

/// Outcome of one pump pass over a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnStatus {
    /// Still serviceable; pump again on the next readiness event.
    Open,
    /// Graceful end: queue closed and fully flushed. Close the socket.
    Finished,
    /// Socket error, EOF, or protocol violation. Drop the peer.
    Dead,
}

/// One reactor-managed connection: nonblocking socket + resumable read
/// and write state.
#[derive(Debug)]
pub(crate) struct Conn {
    stream: TcpStream,
    pub(crate) out: Arc<OutQueue>,
    wbatch: Vec<SharedFrame>,
    wcur: FrameWriteCursor,
    rbuf: Vec<u8>,
    rstart: usize,
}

impl Conn {
    /// Wraps an accepted/connected stream, switching it to nonblocking
    /// mode.
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` failure (the socket is unusable
    /// for the reactor without it).
    pub(crate) fn new(stream: TcpStream, out: Arc<OutQueue>) -> std::io::Result<Self> {
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            out,
            wbatch: Vec::with_capacity(MAX_COALESCE),
            wcur: FrameWriteCursor::new(),
            rbuf: Vec::new(),
            rstart: 0,
        })
    }

    /// Queues frames for the handshake (hello / subscription replay)
    /// ahead of anything already in the outbound queue.
    pub(crate) fn preload(&mut self, frames: impl IntoIterator<Item = SharedFrame>) {
        self.wbatch.extend(frames);
    }

    /// Appends a frame directly to the in-flight write batch, bypassing
    /// the bounded queue — used for timer-generated traffic (heartbeats)
    /// that must not compete with callers for queue capacity.
    pub(crate) fn push_direct(&mut self, frame: SharedFrame) {
        self.wbatch.push(frame);
    }

    /// Frames queued or batched but not yet on the wire — the drop count
    /// when the socket dies.
    pub(crate) fn unsent(&self) -> u64 {
        self.batched_unsent() + self.out.len() as u64
    }

    /// Frames in the in-flight write batch not yet fully written. These
    /// are lost when the socket dies; frames still in the queue survive
    /// (a reconnecting client reuses the queue for its next epoch).
    pub(crate) fn batched_unsent(&self) -> u64 {
        self.wbatch.len().saturating_sub(self.wcur.frames_done()) as u64
    }

    /// Drives the write side: resumes any partial batch, then refills
    /// from the queue (up to `REFILL_BUDGET` refills) until the socket
    /// pushes back or the queue runs dry. Returns `(progress, status)`.
    pub(crate) fn pump_writes(&mut self) -> (bool, ConnStatus) {
        let mut progress = false;
        let mut refills = REFILL_BUDGET;
        loop {
            if self.wcur.done(&self.wbatch) {
                self.wbatch.clear(); // release Arcs → buffers return to pool
                self.wcur = FrameWriteCursor::new();
                if refills == 0 {
                    return (progress, ConnStatus::Open);
                }
                refills -= 1;
                let (moved, finished) = self.out.drain_into(&mut self.wbatch, MAX_COALESCE);
                if moved == 0 {
                    let status = if finished {
                        ConnStatus::Finished
                    } else {
                        ConnStatus::Open
                    };
                    return (progress, status);
                }
            }
            match self.wcur.write_step(&mut self.stream, &self.wbatch) {
                Ok(0) => {} // batch was all sentinels; refill
                Ok(_) => progress = true,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return (progress, ConnStatus::Open);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return (progress, ConnStatus::Dead),
            }
        }
    }

    /// Drives the read side: up to [`MAX_READS_PER_PASS`] nonblocking
    /// reads into `scratch`, incrementally parsing complete frames and
    /// handing decoded messages to `on_msg` (which returns `false` to
    /// abort the connection). Returns `(progress, status)`.
    pub(crate) fn pump_reads<F>(
        &mut self,
        scratch: &mut [u8],
        on_msg: &mut dyn FnMut(Message<F, F::Event>) -> bool,
    ) -> (bool, ConnStatus)
    where
        F: FilterSemantics + Wire,
        F::Event: Wire,
    {
        let mut progress = false;
        let mut reads = 0;
        while reads < MAX_READS_PER_PASS {
            reads += 1;
            match self.stream.read(scratch) {
                Ok(0) => return (progress, ConnStatus::Dead), // EOF
                Ok(n) => {
                    progress = true;
                    self.rbuf.extend_from_slice(scratch.get(..n).unwrap_or(&[]));
                    if self.parse_frames::<F>(on_msg).is_err() {
                        return (progress, ConnStatus::Dead);
                    }
                    if n < scratch.len() {
                        break; // socket very likely drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return (progress, ConnStatus::Dead),
            }
        }
        (progress, ConnStatus::Open)
    }

    /// Consumes every complete `[len ‖ payload]` frame currently
    /// buffered. `Err(())` means protocol violation (oversized frame,
    /// undecodable message, or `on_msg` aborting).
    fn parse_frames<F>(
        &mut self,
        on_msg: &mut dyn FnMut(Message<F, F::Event>) -> bool,
    ) -> Result<(), ()>
    where
        F: FilterSemantics + Wire,
        F::Event: Wire,
    {
        while let Some(prefix) = self.rbuf.get(self.rstart..self.rstart + 4) {
            let len = u32::from_be_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]) as usize;
            if len > MAX_FRAME {
                return Err(()); // hostile/corrupt prefix: drop the peer
            }
            let body_start = self.rstart + 4;
            let Some(payload) = self.rbuf.get(body_start..body_start + len) else {
                break; // frame still arriving
            };
            match Message::<F, F::Event>::from_bytes(payload) {
                Ok(msg) => {
                    if !on_msg(msg) {
                        return Err(());
                    }
                }
                Err(_) => return Err(()),
            }
            self.rstart = body_start + len;
        }
        // Compact consumed bytes so the buffer tracks the *unparsed*
        // tail, not total traffic.
        if self.rstart == self.rbuf.len() {
            self.rbuf.clear();
            self.rstart = 0;
        } else if self.rstart >= COMPACT_THRESHOLD {
            self.rbuf.drain(..self.rstart);
            self.rstart = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FramePool;
    use psguard_model::{Event, Filter};
    use std::io::Write;
    use std::net::TcpListener;

    type Msg = Message<Filter, Event>;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn out_queue_bounds_closes_and_drains() {
        let q = OutQueue::new(2);
        let pool = FramePool::new();
        let f = pool.encode(&Msg::Heartbeat);
        assert!(q.offer(f.clone()));
        assert!(q.offer(f.clone()));
        assert!(!q.offer(f.clone()), "third frame must overflow");
        assert_eq!(q.len(), 2);
        let mut batch = Vec::new();
        let (moved, finished) = q.drain_into(&mut batch, 8);
        assert_eq!(moved, 2);
        assert!(!finished, "not closed yet");
        q.close();
        assert!(q.is_closed());
        assert!(!q.offer(f), "closed queue rejects frames");
        let (moved, finished) = q.drain_into(&mut batch, 8);
        assert_eq!(moved, 0);
        assert!(finished, "closed+empty = flush-then-close point");
    }

    #[test]
    fn push_blocking_waits_for_room_and_aborts() {
        let q = OutQueue::new(1);
        let pool = FramePool::new();
        q.offer(pool.encode(&Msg::Heartbeat));
        let abort = AtomicBool::new(true);
        assert!(matches!(
            q.push_blocking(pool.encode(&Msg::Heartbeat), &abort),
            Err(TcpError::Disconnected)
        ));
        // With a consumer, the blocked push completes.
        let q2 = OutQueue::new(1);
        q2.offer(pool.encode(&Msg::Heartbeat));
        let q2c = q2.clone();
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let mut b = Vec::new();
            q2c.drain_into(&mut b, 8);
        });
        let abort = AtomicBool::new(false);
        q2.push_blocking(pool.encode(&Msg::Heartbeat), &abort)
            .unwrap();
        drainer.join().unwrap();
    }

    #[test]
    fn conn_writes_queued_frames_and_reads_split_frames() {
        let (client, server) = pair();
        let q = OutQueue::new(64);
        let mut conn = Conn::new(server, q.clone()).unwrap();

        // Write side: queue two frames, pump, read them off the peer.
        let pool = FramePool::new();
        let m1 = Msg::Subscribe(Filter::for_topic("a"));
        let m2 = Msg::Publish(Event::builder("a").payload(vec![9u8; 100]).build());
        q.offer(pool.encode(&m1));
        q.offer(pool.encode(&m2));
        let (progress, status) = conn.pump_writes();
        assert!(progress);
        assert_eq!(status, ConnStatus::Open);
        let mut rclient = client.try_clone().unwrap();
        let got1 = crate::wire::read_frame(&mut rclient).unwrap();
        let got2 = crate::wire::read_frame(&mut rclient).unwrap();
        assert_eq!(Msg::from_bytes(&got1).unwrap(), m1);
        assert_eq!(Msg::from_bytes(&got2).unwrap(), m2);

        // Read side: send a frame in two halves; the first pump parses
        // nothing, the second completes it.
        let mut wire = Vec::new();
        crate::wire::write_frame(&mut wire, &m2.to_bytes()).unwrap();
        let split = wire.len() / 2;
        let mut wclient = client.try_clone().unwrap();
        wclient.write_all(&wire[..split]).unwrap();
        wclient.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let mut scratch = vec![0u8; 4096];
        let mut got: Vec<Msg> = Vec::new();
        let (_, status) = conn.pump_reads::<Filter>(&mut scratch, &mut |m| {
            got.push(m);
            true
        });
        assert_eq!(status, ConnStatus::Open);
        assert!(got.is_empty(), "half a frame must not decode");
        wclient.write_all(&wire[split..]).unwrap();
        wclient.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let (progress, status) = conn.pump_reads::<Filter>(&mut scratch, &mut |m| {
            got.push(m);
            true
        });
        assert!(progress);
        assert_eq!(status, ConnStatus::Open);
        assert_eq!(got, vec![m2]);
    }

    #[test]
    fn oversized_prefix_and_garbage_kill_the_conn() {
        let (client, server) = pair();
        let mut conn = Conn::new(server, OutQueue::new(4)).unwrap();
        let mut wclient = client.try_clone().unwrap();
        wclient
            .write_all(&(MAX_FRAME as u32 + 1).to_be_bytes())
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let mut scratch = vec![0u8; 1024];
        let (_, status) = conn.pump_reads::<Filter>(&mut scratch, &mut |_| true);
        assert_eq!(status, ConnStatus::Dead);

        let (client2, server2) = pair();
        let mut conn2 = Conn::new(server2, OutQueue::new(4)).unwrap();
        let mut w2 = client2.try_clone().unwrap();
        crate::wire::write_frame(&mut w2, &[0xde, 0xad, 0xbe, 0xef]).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let (_, status) = conn2.pump_reads::<Filter>(&mut scratch, &mut |_| true);
        assert_eq!(status, ConnStatus::Dead, "garbage payload must kill");
    }

    #[test]
    fn eof_reports_dead_and_close_reports_finished() {
        let (client, server) = pair();
        let q = OutQueue::new(4);
        let mut conn = Conn::new(server, q.clone()).unwrap();
        q.close();
        let (_, status) = conn.pump_writes();
        assert_eq!(status, ConnStatus::Finished);
        drop(client);
        std::thread::sleep(Duration::from_millis(30));
        let mut scratch = vec![0u8; 256];
        let (_, status) = conn.pump_reads::<Filter>(&mut scratch, &mut |_| true);
        assert_eq!(status, ConnStatus::Dead);
    }
}
