//! Readiness polling behind a trait: the reactor's OS-facing seam.
//!
//! The workspace forbids `unsafe` and vendors no FFI bindings, so there
//! is no `epoll`/`kqueue` backend here. Instead the default
//! [`ScanPoller`] approximates readiness: it reports *every* registered
//! connection as potentially ready and relies on nonblocking sockets to
//! make a no-op scan cheap (a `read`/`write` that would block returns
//! `WouldBlock` immediately). To keep an idle broker off the CPU, the
//! scan parks adaptively — consecutive no-progress scans grow the park
//! interval exponentially up to a cap, and any cross-thread event
//! (frames queued, a new connection, shutdown) cuts the park short
//! through a [`PollWaker`].
//!
//! The trait contract is deliberately level-triggered and conservative:
//! `wait` may over-report (tokens that turn out not to be ready cost one
//! `WouldBlock` each) but must never under-report — every token whose
//! socket or outbound queue may have become actionable since the last
//! call must appear in `ready`. An `epoll`-style backend would sharpen
//! the same contract (kernel-filtered ready sets + an eventfd-style
//! waker) behind this trait without touching the workers; see DESIGN.md
//! §15 for the tradeoff discussion.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::Duration;

use parking_lot::Mutex;

/// Base park interval after the first no-progress scan; doubles per
/// additional idle scan.
pub(crate) const PARK_BASE: Duration = Duration::from_micros(50);

/// Default cap on the adaptive park interval: bounds worst-case added
/// latency for readiness the waker cannot announce (bytes arriving from
/// the kernel while parked).
pub(crate) const DEFAULT_MAX_PARK: Duration = Duration::from_millis(5);

#[derive(Debug, Default)]
struct WakeInner {
    /// Set by `wake`, consumed by the poller before parking.
    pending: AtomicBool,
    /// The poller's thread, once it first waits; `wake` unparks it.
    thread: Mutex<Option<Thread>>,
}

/// A cross-thread wakeup handle for a parked poller (or any reactor
/// loop built on `std::thread::park_timeout`).
///
/// Wake-before-park is not lost: `wake` sets a pending flag *and*
/// unparks, and `std::thread`'s unpark permit covers the window between
/// the poller's flag check and its park.
#[derive(Debug, Clone, Default)]
pub struct PollWaker {
    inner: Arc<WakeInner>,
}

impl PollWaker {
    /// A waker not yet attached to any thread (attaching happens on the
    /// poller's first wait).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a wakeup: the next (or current) park returns promptly.
    pub fn wake(&self) {
        self.inner.pending.store(true, Ordering::SeqCst);
        if let Some(t) = self.inner.thread.lock().as_ref() {
            t.unpark();
        }
    }

    /// Records the calling thread as the one `wake` should unpark.
    pub fn attach_current_thread(&self) {
        *self.inner.thread.lock() = Some(std::thread::current());
    }

    /// Consumes a pending wakeup, returning whether one was set.
    pub fn take_pending(&self) -> bool {
        self.inner.pending.swap(false, Ordering::SeqCst)
    }
}

/// The reactor's readiness source. One poller instance belongs to one
/// worker thread; `register`/`deregister`/`wait` are called only from
/// that thread, while the [`PollWaker`] returned by `waker` may be
/// invoked from anywhere.
///
/// Contract: `wait` fills `ready` with every token that may be
/// actionable (socket readable/writable, outbound queue non-empty or
/// newly closed) — over-reporting is allowed, under-reporting is not —
/// and blocks at most briefly (bounded by the implementation's park
/// cap) when nothing has happened. `note_progress(false)` tells the
/// poller the last batch produced no work, letting it back off.
pub trait Poller: Send {
    /// Starts tracking a connection token.
    fn register(&mut self, token: u32);
    /// Stops tracking a connection token.
    fn deregister(&mut self, token: u32);
    /// Fills `ready` with possibly-actionable tokens, parking briefly
    /// first when the recent past was idle and no wakeup is pending.
    fn wait(&mut self, ready: &mut Vec<u32>);
    /// Feedback from the worker: did the last ready batch yield any
    /// actual I/O progress?
    fn note_progress(&mut self, progress: bool);
    /// A handle other threads use to cut the next park short.
    fn waker(&self) -> PollWaker;
}

/// The default zero-`unsafe` poller: a sharded nonblocking scan with
/// adaptive parking (see the module docs for the design rationale).
#[derive(Debug)]
pub struct ScanPoller {
    tokens: Vec<u32>,
    waker: PollWaker,
    /// Consecutive no-progress scans (saturating); drives the park
    /// backoff.
    idle_streak: u32,
    max_park: Duration,
    attached: bool,
}

impl ScanPoller {
    /// A scan poller whose adaptive park grows up to `max_park`.
    pub fn new(max_park: Duration) -> Self {
        ScanPoller {
            tokens: Vec::new(),
            waker: PollWaker::new(),
            idle_streak: 0,
            max_park: max_park.max(PARK_BASE),
            attached: false,
        }
    }

    /// Registered token count.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no tokens are registered.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    fn park_interval(&self) -> Duration {
        let shift = self.idle_streak.saturating_sub(1).min(10);
        PARK_BASE.saturating_mul(1u32 << shift).min(self.max_park)
    }
}

impl Default for ScanPoller {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_PARK)
    }
}

impl Poller for ScanPoller {
    fn register(&mut self, token: u32) {
        self.tokens.push(token);
        // A fresh connection is actionable immediately.
        self.idle_streak = 0;
    }

    fn deregister(&mut self, token: u32) {
        if let Some(pos) = self.tokens.iter().position(|&t| t == token) {
            self.tokens.swap_remove(pos);
        }
    }

    fn wait(&mut self, ready: &mut Vec<u32>) {
        if !self.attached {
            self.waker.attach_current_thread();
            self.attached = true;
        }
        // Park only when the recent past was idle AND nobody woke us.
        if !self.waker.take_pending() && self.idle_streak > 0 {
            std::thread::park_timeout(self.park_interval());
            self.waker.take_pending();
        }
        ready.extend_from_slice(&self.tokens);
    }

    fn note_progress(&mut self, progress: bool) {
        if progress {
            self.idle_streak = 0;
        } else {
            self.idle_streak = self.idle_streak.saturating_add(1).min(16);
        }
    }

    fn waker(&self) -> PollWaker {
        self.waker.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn scan_poller_reports_all_registered_tokens() {
        let mut p = ScanPoller::default();
        p.register(1);
        p.register(2);
        p.register(7);
        assert_eq!(p.len(), 3);
        let mut ready = Vec::new();
        p.wait(&mut ready);
        ready.sort_unstable();
        assert_eq!(ready, vec![1, 2, 7]);
        p.deregister(2);
        let mut ready = Vec::new();
        p.wait(&mut ready);
        ready.sort_unstable();
        assert_eq!(ready, vec![1, 7]);
        assert!(!p.is_empty());
    }

    #[test]
    fn idle_scans_park_and_progress_resets_backoff() {
        let mut p = ScanPoller::new(Duration::from_millis(2));
        p.register(1);
        // Busy poller never parks.
        p.note_progress(true);
        let t0 = Instant::now();
        let mut ready = Vec::new();
        p.wait(&mut ready);
        assert!(t0.elapsed() < Duration::from_millis(50));
        // Repeated idleness grows the park up to the cap.
        for _ in 0..8 {
            p.note_progress(false);
        }
        assert_eq!(p.park_interval(), Duration::from_millis(2));
        p.note_progress(true);
        assert_eq!(p.idle_streak, 0);
    }

    #[test]
    fn wake_cuts_park_short_even_before_parking() {
        let mut p = ScanPoller::new(Duration::from_secs(1));
        p.register(1);
        for _ in 0..16 {
            p.note_progress(false); // would park ~1s
        }
        p.waker().wake();
        let t0 = Instant::now();
        let mut ready = Vec::new();
        p.wait(&mut ready); // pending wake: no park at all
        assert!(t0.elapsed() < Duration::from_millis(200), "missed wakeup");
        assert_eq!(ready, vec![1]);
    }

    #[test]
    fn wake_from_another_thread_unparks() {
        let mut p = ScanPoller::new(Duration::from_secs(2));
        p.register(9);
        for _ in 0..16 {
            p.note_progress(false);
        }
        // Attach by waiting once (pending from registration reset: force a
        // first wait to bind the thread handle).
        let mut ready = Vec::new();
        p.waker().wake();
        p.wait(&mut ready);
        let waker = p.waker();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let t0 = Instant::now();
        ready.clear();
        p.wait(&mut ready);
        assert!(
            t0.elapsed() < Duration::from_millis(1500),
            "park was not cut short: {:?}",
            t0.elapsed()
        );
        h.join().unwrap();
    }
}
