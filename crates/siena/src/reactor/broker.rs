//! The reactor-backed broker: a fixed worker pool plus one dispatcher.
//!
//! Thread budget is decided at spawn time and never grows with the
//! connection count: one accept thread, one dispatcher thread, and
//! `worker_threads` reactor workers (defaulting to the CPU core count,
//! capped at [`MAX_WORKERS`]). Accepted connections are sharded across
//! workers by token (`id % workers`); each worker drives its shard's
//! nonblocking read/decode and coalesced-write state machines off a
//! [`Poller`](super::poller::Poller).
//!
//! The pure [`Broker`] matching engine still lives in exactly one
//! thread — the dispatcher — which also owns heartbeat ticks, eviction,
//! and the parent-chained `SubAck` bookkeeping that PR2 introduced. The
//! threaded transport drove ticks from a dedicated ticker thread; here
//! they are synthesized from the dispatcher's `recv_timeout`, saving the
//! thread. After every input batch the dispatcher wakes only the workers
//! whose shards received frames (a 64-bit dirty mask), so an idle broker
//! parks everywhere.

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};

use super::conn::OutQueue;
use super::poller::{Poller, ScanPoller, DEFAULT_MAX_PARK};
use super::worker::{run_broker_worker, WorkerHandle, WorkerMsg};
use crate::broker::{Action, Broker};
use crate::error::TcpError;
use crate::frame::{FramePool, FramePoolStats, SharedFrame};
use crate::index::IndexableFilter;
use crate::log::{
    Cursor, EventLog, LogConfig, LogError, RecoveryReport, ReplayCursor, ResumeOutcome,
};
use crate::semantics::FilterSemantics;
use crate::table::Peer;
use crate::tcp::{StatsInner, TcpConfig, TcpStats};
use crate::wire::{filter_crc, Message, Wire};

/// Hard cap on the reactor worker pool (also the width of the
/// dispatcher's dirty-worker wake mask).
pub const MAX_WORKERS: usize = 64;

/// Peer id reserved for the upward (parent) connection.
const PARENT_ID: u32 = 0;

/// Inputs to the dispatcher thread. Unlike the threaded transport there
/// is no `Tick` variant: ticks are synthesized from `recv_timeout`.
pub(crate) enum Input<F: FilterSemantics> {
    /// A decoded message from connection `id` (0 = parent).
    FromPeer(u32, Message<F, F::Event>),
    /// Connection `id` finished or died.
    PeerGone(u32),
    /// The acceptor registered connection `id` with this outbound queue.
    NewPeer(u32, Arc<OutQueue>),
    /// Stop dispatching and shut the workers down.
    Shutdown,
}

fn resolve_workers(cfg: &TcpConfig) -> usize {
    let n = if cfg.worker_threads > 0 {
        cfg.worker_threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    n.clamp(1, MAX_WORKERS)
}

/// Handle to a running reactor broker. Dropping the handle shuts it
/// down.
pub struct TcpBroker {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    pool: FramePool,
    workers: usize,
    shutdown_fn: Box<dyn Fn() + Send + Sync>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBroker")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .finish()
    }
}

impl TcpBroker {
    /// The address the broker listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Transport counters (evictions, drops, heartbeats).
    pub fn stats(&self) -> TcpStats {
        self.stats.snapshot()
    }

    /// Frame-pool counters for the broker's outbound encode path. A
    /// publish fanned out to N peers bumps `frames_encoded` by exactly
    /// one — the instrumentation the encode-once tests assert on.
    pub fn pool_stats(&self) -> FramePoolStats {
        self.pool.stats()
    }

    /// Size of the reactor worker pool (fixed for the broker's life).
    pub fn worker_threads(&self) -> usize {
        self.workers
    }

    /// Total OS threads this broker owns: workers + acceptor +
    /// dispatcher. Independent of how many connections it serves.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Requests shutdown and joins all broker threads.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        (self.shutdown_fn)();
        // Poke the blocking accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for TcpBroker {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Spawns a reactor broker with the default [`TcpConfig`].
///
/// # Errors
///
/// Propagates socket errors (bind/connect failures).
pub fn spawn_broker<F>(listen: &str, parent: Option<SocketAddr>) -> std::io::Result<TcpBroker>
where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    spawn_broker_with::<F>(listen, parent, TcpConfig::default()).map_err(|e| match e {
        TcpError::Io(io) => io,
        other => std::io::Error::other(other.to_string()),
    })
}

/// Spawns a reactor broker listening on `listen` (use port 0 for an
/// ephemeral port), optionally connected upward to `parent`, with
/// explicit transport tuning.
///
/// # Errors
///
/// Returns [`TcpError::Io`] on bind/connect failures.
pub fn spawn_broker_with<F>(
    listen: &str,
    parent: Option<SocketAddr>,
    cfg: TcpConfig,
) -> Result<TcpBroker, TcpError>
where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    spawn_inner::<F>(listen, parent, cfg, None)
}

/// Spawns a reactor broker backed by a durable [`EventLog`]: every
/// publish is appended (ciphertext-only — the log stores the encoded
/// event bytes verbatim) before fan-out, subscriber deliveries carry a
/// `(epoch, seq)` cursor stamp, and a reconnecting subscriber that
/// presents its cursor via `CatchUp` has the gap replayed from the log
/// without stalling live traffic.
///
/// Also returns the [`RecoveryReport`] from opening the log, so callers
/// can observe crash repair (torn tails truncated, records recovered).
///
/// # Errors
///
/// Returns [`TcpError::Io`] on bind/connect failures or when the log
/// directory cannot be opened or repaired.
pub fn spawn_broker_durable<F>(
    listen: &str,
    parent: Option<SocketAddr>,
    cfg: TcpConfig,
    log_cfg: LogConfig,
) -> Result<(TcpBroker, RecoveryReport), TcpError>
where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    let (log, report) =
        EventLog::open(log_cfg).map_err(|e| TcpError::Io(std::io::Error::other(e)))?;
    let broker = spawn_inner::<F>(listen, parent, cfg, Some(log))?;
    Ok((broker, report))
}

fn spawn_inner<F>(
    listen: &str,
    parent: Option<SocketAddr>,
    cfg: TcpConfig,
    dlog: Option<EventLog>,
) -> Result<TcpBroker, TcpError>
where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    let listener = TcpListener::bind(listen).map_err(TcpError::Io)?;
    let addr = listener.local_addr().map_err(TcpError::Io)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(StatsInner::default());
    let pool = FramePool::new();
    let nworkers = resolve_workers(&cfg);
    let (tx, rx) = unbounded::<Input<F>>();
    let mut threads = Vec::new();

    // The fixed worker pool.
    let mut handles: Vec<WorkerHandle> = Vec::with_capacity(nworkers);
    for _ in 0..nworkers {
        let poller: Box<dyn Poller> = Box::new(ScanPoller::new(DEFAULT_MAX_PARK));
        let waker = poller.waker();
        let (wtx, wrx) = unbounded::<WorkerMsg>();
        let dispatch_tx = tx.clone();
        let wstats = stats.clone();
        // SPAWN-OK: fixed reactor worker pool — N = worker_threads, decided
        // once at spawn time, never per-connection.
        threads.push(std::thread::spawn(move || {
            run_broker_worker::<F>(poller, wrx, dispatch_tx, wstats);
        }));
        handles.push(WorkerHandle { tx: wtx, waker });
    }

    // Parent link (peer id 0 is reserved for the parent); it rides on
    // worker 0 like any other connection.
    let mut parent_out: Option<Arc<OutQueue>> = None;
    if let Some(paddr) = parent {
        let stream =
            TcpStream::connect_timeout(&paddr, cfg.connect_timeout).map_err(TcpError::Io)?;
        let out = OutQueue::new(cfg.queue_capacity);
        let hello: Message<F, F::Event> = Message::Hello { kind: 0 };
        out.offer(pool.encode(&hello));
        if let Some(h) = handles.first() {
            h.add(PARENT_ID, stream, out.clone());
        }
        parent_out = Some(out);
    }

    // Accept loop: shards connections across the pool by token.
    {
        let tx = tx.clone();
        let shutdown = shutdown.clone();
        let handles = handles.clone();
        let queue_capacity = cfg.queue_capacity;
        // SPAWN-OK: single blocking accept thread (fixed count: one).
        threads.push(std::thread::spawn(move || {
            let mut next_peer = 1u32;
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let peer_id = next_peer;
                next_peer += 1;
                let out = OutQueue::new(queue_capacity);
                // NewPeer must reach the dispatcher before any FromPeer
                // for this id; both ride the same FIFO channel and the
                // worker only produces FromPeer after `add`, so sending
                // NewPeer first guarantees the ordering.
                if tx.send(Input::NewPeer(peer_id, out.clone())).is_err() {
                    break;
                }
                if let Some(h) = handles.get(peer_id as usize % handles.len()) {
                    h.add(peer_id, stream, out);
                }
            }
        }));
    }

    // Dispatcher: owns the pure broker, the peer registry, heartbeat
    // ticks (synthesized — no ticker thread), eviction, and ack chains.
    {
        let is_root = parent.is_none();
        let stats = stats.clone();
        let pool = pool.clone();
        let handles = handles.clone();
        // SPAWN-OK: single dispatcher thread (fixed count: one).
        threads.push(std::thread::spawn(move || {
            run_dispatcher::<F>(rx, parent_out, handles, cfg, is_root, stats, pool, dlog);
        }));
    }

    let tx_for_shutdown = tx;
    Ok(TcpBroker {
        addr,
        shutdown,
        stats,
        pool,
        workers: nworkers,
        shutdown_fn: Box::new(move || {
            let _ = tx_for_shutdown.send(Input::Shutdown);
        }),
        threads,
    })
}

/// Offers a frame to a peer's queue, recording the drop on overflow and
/// marking the peer's worker dirty on success. Returns whether the frame
/// was actually queued.
fn offer_to(
    writers: &HashMap<u32, Arc<OutQueue>>,
    peer: u32,
    frame: SharedFrame,
    stats: &StatsInner,
    dirty: &mut u64,
    nworkers: usize,
) -> bool {
    if let Some(q) = writers.get(&peer) {
        if q.offer(frame) {
            *dirty |= 1u64 << (peer as usize % nworkers);
            return true;
        }
        stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
    }
    false
}

/// Inputs drained per dispatcher pass before waking dirty workers —
/// batches the wakeups under load without starving the tick clock.
const DISPATCH_BATCH: usize = 128;

/// Dispatcher poll granularity while any replay has work left: short
/// enough that a replay progresses briskly on an otherwise idle broker
/// (each pass reads at most one `replay_budget` batch per replay), long
/// enough that a fully backpressured replay doesn't spin.
const REPLAY_STEP: Duration = Duration::from_millis(1);

/// One in-flight catch-up replay toward a reconnected subscriber.
struct Replay {
    /// Peer id the replay streams to.
    peer: u32,
    /// Byte-level position in the log.
    rcur: ReplayCursor,
    /// Classification decided when the `CatchUp` arrived; upgraded to
    /// `GapTruncatedByRetention` if compaction overtakes the replay.
    outcome: ResumeOutcome,
    /// Encoded `Stamped` frames awaiting queue space. Backpressure
    /// keeps frames here — they are never dropped, unlike live fan-out.
    pending: VecDeque<SharedFrame>,
    /// The log reader has caught up to the high-water mark and the
    /// closing `ReplayDone` sits at the back of `pending`.
    done_reading: bool,
}

/// Dispatcher-side durable state: the open log, a reusable append
/// buffer, which peers identified as clients (they get `Stamped`
/// deliveries; broker peers keep plain `Publish`), and active replays.
struct Durable {
    log: EventLog,
    buf: Vec<u8>,
    client_peers: HashSet<u32>,
    replays: Vec<Replay>,
    scratch: Vec<(Cursor, Vec<u8>)>,
}

impl Durable {
    fn new(log: EventLog) -> Self {
        Durable {
            log,
            buf: Vec::new(),
            client_peers: HashSet::new(),
            replays: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Whether any replay still has reading or draining left to do.
    fn has_replay_work(&self) -> bool {
        !self.replays.is_empty()
    }
}

/// Moves queued replay frames into the peer's bounded queue until it
/// fills. A refused frame stays at the front of `pending` — replay
/// backpressure retries, it never drops.
fn drain_pending(
    r: &mut Replay,
    q: &Arc<OutQueue>,
    stats: &StatsInner,
    dirty: &mut u64,
    nworkers: usize,
) {
    while let Some(f) = r.pending.front() {
        if !q.offer(f.clone()) {
            break;
        }
        r.pending.pop_front();
        *dirty |= 1u64 << (r.peer as usize % nworkers);
        stats.replayed_frames.fetch_add(1, Ordering::Relaxed);
    }
}

/// Advances every in-flight replay by at most one budgeted log read:
/// drain what's queued, read the next batch, filter it against the
/// peer's live subscriptions, queue the matches as `Stamped` frames,
/// and close out with `ReplayDone` once the reader reaches the
/// high-water mark. Bounded work per call — live fan-out never waits
/// behind a long replay.
fn pump_replays<F>(
    d: &mut Durable,
    broker: &Broker<F>,
    writers: &HashMap<u32, Arc<OutQueue>>,
    stats: &StatsInner,
    pool: &FramePool,
    dirty: &mut u64,
    nworkers: usize,
) where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    let budget = d.log.replay_budget();
    let Durable {
        log,
        replays,
        scratch,
        ..
    } = d;
    replays.retain_mut(|r| {
        let Some(q) = writers.get(&r.peer) else {
            return false; // peer evicted or disconnected: abandon
        };
        drain_pending(r, q, stats, dirty, nworkers);
        if r.pending.is_empty() && !r.done_reading {
            scratch.clear();
            match log.replay_next(&mut r.rcur, budget, scratch) {
                Ok(more) => {
                    for (cursor, payload) in scratch.drain(..) {
                        let Ok(event) = F::Event::from_bytes(&payload) else {
                            continue; // undecodable record: skip it
                        };
                        let wanted = broker
                            .table()
                            .entries()
                            .iter()
                            .any(|(p, f)| *p == Peer::Child(r.peer) && f.matches(&event));
                        if wanted {
                            let m: Message<F, F::Event> = Message::Stamped { cursor, event };
                            r.pending.push_back(pool.encode(&m));
                        }
                    }
                    if !more {
                        let outcome = if r.rcur.truncated() {
                            ResumeOutcome::GapTruncatedByRetention
                        } else {
                            r.outcome
                        };
                        let done: Message<F, F::Event> = Message::ReplayDone {
                            outcome: outcome.code(),
                            cursor: log.high_water(),
                        };
                        r.pending.push_back(pool.encode(&done));
                        r.done_reading = true;
                    }
                }
                // Transient read fault: cursor unchanged, retry next pump.
                Err(LogError::ShortRead) => {}
                Err(_) => {
                    // Hard log failure mid-replay: the rest of the gap is
                    // unrecoverable, which to the subscriber is exactly a
                    // truncated gap — report it as one so the application
                    // knows continuity was lost.
                    let done: Message<F, F::Event> = Message::ReplayDone {
                        outcome: ResumeOutcome::GapTruncatedByRetention.code(),
                        cursor: log.high_water(),
                    };
                    r.pending.push_back(pool.encode(&done));
                    r.done_reading = true;
                }
            }
            drain_pending(r, q, stats, dirty, nworkers);
        }
        // Complete once the closing ReplayDone has left the queue.
        !(r.done_reading && r.pending.is_empty())
    });
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_dispatcher<F>(
    rx: Receiver<Input<F>>,
    parent_out: Option<Arc<OutQueue>>,
    handles: Vec<WorkerHandle>,
    cfg: TcpConfig,
    is_root: bool,
    stats: Arc<StatsInner>,
    pool: FramePool,
    dlog: Option<EventLog>,
) where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    let nworkers = handles.len().max(1);
    let mut durable = dlog.map(Durable::new);
    let mut broker: Broker<F> = Broker::new(is_root);
    let mut writers: HashMap<u32, Arc<OutQueue>> = HashMap::new();
    let mut last_heard: HashMap<u32, Instant> = HashMap::new();
    // Subscribe acks we owe peers once the parent confirms the forwarded
    // filter (keyed by the filter's crc).
    let mut pending_acks: HashMap<u32, Vec<u32>> = HashMap::new();
    let has_parent = parent_out.is_some();
    if let Some(out) = parent_out {
        writers.insert(PARENT_ID, out);
        last_heard.insert(PARENT_ID, Instant::now());
    }
    if has_parent {
        // The hello queued at spawn needs worker 0 awake to leave.
        if let Some(h) = handles.first() {
            h.waker.wake();
        }
    }

    // Tick clock: recv_timeout granularity bounded so shutdown and late
    // ticks are noticed promptly even with long heartbeat intervals.
    let hb_on = !cfg.heartbeat_interval.is_zero();
    let step = if hb_on {
        cfg.heartbeat_interval.min(Duration::from_millis(50))
    } else {
        Duration::from_millis(200)
    };
    let mut last_tick = Instant::now();
    let mut last_pump = Instant::now() - REPLAY_STEP;
    let mut dirty: u64 = 0;

    'run: loop {
        let mut budget = DISPATCH_BATCH;
        // While a replay is in flight, poll fast so the replay advances
        // even with no live traffic; otherwise use the tick clock step.
        let step_now = match &durable {
            Some(d) if d.has_replay_work() => REPLAY_STEP.min(step),
            _ => step,
        };
        match rx.recv_timeout(step_now) {
            Ok(first) => {
                let mut next = Some(first);
                while let Some(input) = next.take() {
                    if !handle_input(
                        input,
                        &mut broker,
                        &mut writers,
                        &mut last_heard,
                        &mut pending_acks,
                        &mut durable,
                        &stats,
                        &pool,
                        &mut dirty,
                        nworkers,
                    ) {
                        break 'run;
                    }
                    budget -= 1;
                    if budget == 0 {
                        break;
                    }
                    next = rx.try_recv().ok();
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Replay progress rides the same loop as live dispatch, one
        // bounded batch per REPLAY_STEP, so catch-up never stalls the
        // fan-out: under live load the input batches come much faster
        // than the step, and pumping on every one of them would tax the
        // live path with a full replay budget per batch.
        if let Some(d) = durable.as_mut() {
            if d.has_replay_work() && last_pump.elapsed() >= REPLAY_STEP {
                pump_replays(d, &broker, &writers, &stats, &pool, &mut dirty, nworkers);
                last_pump = Instant::now();
            }
        }

        if hb_on && last_tick.elapsed() >= cfg.heartbeat_interval {
            last_tick = Instant::now();
            tick(
                &mut broker,
                &mut writers,
                &mut last_heard,
                &handles,
                &cfg,
                &stats,
                &pool,
                &mut dirty,
                nworkers,
            );
        }

        // Wake exactly the workers whose shards got frames this pass.
        while dirty != 0 {
            let w = dirty.trailing_zeros() as usize;
            dirty &= dirty - 1;
            if let Some(h) = handles.get(w) {
                h.waker.wake();
            }
        }
    }

    // Shut the pool down: close every queue (workers flush then finish)
    // and tell each worker to exit.
    for q in writers.values() {
        q.close();
    }
    for h in &handles {
        h.shutdown();
    }
}

/// Per-tick work: fan a heartbeat to every peer and evict children that
/// have been silent past the miss limit. Mirrors the threaded
/// transport's `Input::Tick` arm.
#[allow(clippy::too_many_arguments)]
fn tick<F>(
    broker: &mut Broker<F>,
    writers: &mut HashMap<u32, Arc<OutQueue>>,
    last_heard: &mut HashMap<u32, Instant>,
    handles: &[WorkerHandle],
    cfg: &TcpConfig,
    stats: &StatsInner,
    pool: &FramePool,
    dirty: &mut u64,
    nworkers: usize,
) where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    // Encoded once; each peer queue gets an Arc clone.
    let hb: Message<F, F::Event> = Message::Heartbeat;
    let frame = pool.encode(&hb);
    let ids: Vec<u32> = writers.keys().copied().collect();
    for id in ids {
        if offer_to(writers, id, frame.clone(), stats, dirty, nworkers) {
            stats.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
        }
    }
    let deadline = cfg.heartbeat_interval * cfg.heartbeat_miss_limit.max(1);
    let now = Instant::now();
    let dead: Vec<u32> = last_heard
        .iter()
        .filter(|&(&id, &seen)| id != PARENT_ID && now.duration_since(seen) > deadline)
        .map(|(&id, _)| id)
        .collect();
    for id in dead {
        broker.peer_down(Peer::Child(id));
        last_heard.remove(&id);
        if let Some(q) = writers.remove(&id) {
            q.close();
        }
        // Hard close, not flush-then-close: an evicted peer already
        // proved unresponsive, so a flush can never finish — the worker
        // drops the socket immediately and counts unsent frames (the
        // reactor's replacement for the threaded write_timeout
        // backstop). Late frames the worker already decoded are ignored
        // by the `FromPeer` ghost guard in `handle_input`.
        if let Some(h) = handles.get(id as usize % nworkers) {
            h.close(id);
        }
        stats.evicted_peers.fetch_add(1, Ordering::Relaxed);
    }
}

/// Handles one dispatcher input. Returns `false` on shutdown.
#[allow(clippy::too_many_arguments)]
fn handle_input<F>(
    input: Input<F>,
    broker: &mut Broker<F>,
    writers: &mut HashMap<u32, Arc<OutQueue>>,
    last_heard: &mut HashMap<u32, Instant>,
    pending_acks: &mut HashMap<u32, Vec<u32>>,
    durable: &mut Option<Durable>,
    stats: &StatsInner,
    pool: &FramePool,
    dirty: &mut u64,
    nworkers: usize,
) -> bool
where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    match input {
        Input::Shutdown => return false,
        Input::NewPeer(id, out) => {
            writers.insert(id, out);
            last_heard.insert(id, Instant::now());
        }
        Input::PeerGone(id) => {
            if id != PARENT_ID {
                broker.peer_down(Peer::Child(id));
            } else {
                // Without a parent, forwarded subscriptions can never be
                // confirmed; ack them locally so clients don't hang
                // (degraded mode).
                for (crc, peers) in pending_acks.drain() {
                    for p in peers {
                        let ack: Message<F, F::Event> = Message::SubAck { crc };
                        offer_to(writers, p, pool.encode(&ack), stats, dirty, nworkers);
                    }
                }
            }
            last_heard.remove(&id);
            if let Some(q) = writers.remove(&id) {
                q.close();
            }
            if let Some(d) = durable.as_mut() {
                d.client_peers.remove(&id);
                d.replays.retain(|r| r.peer != id);
            }
        }
        Input::FromPeer(id, msg) => {
            if !writers.contains_key(&id) {
                // The peer was evicted (or is already gone) but the
                // worker had decoded frames in flight. Processing them
                // would resurrect `last_heard` and re-create broker
                // subscription state with no writer — a ghost peer.
                return true;
            }
            last_heard.insert(id, Instant::now());
            let from = if id == PARENT_ID {
                Peer::Parent
            } else {
                Peer::Child(id)
            };
            // Cursor the current publish was logged at, if this broker
            // is durable and the append succeeded; stamps the fan-out.
            let mut publish_stamp: Option<Cursor> = None;
            let actions = match msg {
                Message::Hello { kind } => {
                    if kind == 1 {
                        // Subscriber connections get cursor-stamped
                        // deliveries; broker links keep plain Publish.
                        if let Some(d) = durable.as_mut() {
                            d.client_peers.insert(id);
                        }
                    }
                    Vec::new()
                }
                Message::Heartbeat => Vec::new(),
                Message::CatchUp { cursor } => {
                    match durable.as_mut() {
                        Some(d) => {
                            // Only subscribers catch up; a CatchUp also
                            // implies the peer wants stamped delivery.
                            d.client_peers.insert(id);
                            let (outcome, rcur) = d.log.catch_up_from(cursor);
                            d.replays.retain(|r| r.peer != id);
                            d.replays.push(Replay {
                                peer: id,
                                rcur,
                                outcome,
                                pending: VecDeque::new(),
                                done_reading: false,
                            });
                        }
                        None => {
                            // No log on this broker: nothing to replay,
                            // tell the subscriber it starts fresh.
                            let done: Message<F, F::Event> = Message::ReplayDone {
                                outcome: ResumeOutcome::FreshStart.code(),
                                cursor: Cursor::default(),
                            };
                            offer_to(writers, id, pool.encode(&done), stats, dirty, nworkers);
                        }
                    }
                    Vec::new()
                }
                // Brokers never consume these; tolerate stray ones.
                Message::ReplayDone { .. } | Message::Stamped { .. } => Vec::new(),
                Message::SubAck { crc } => {
                    // Parent confirmed a forwarded filter: release the
                    // acks we owe downstream.
                    if id == PARENT_ID {
                        for p in pending_acks.remove(&crc).unwrap_or_default() {
                            let ack: Message<F, F::Event> = Message::SubAck { crc };
                            offer_to(writers, p, pool.encode(&ack), stats, dirty, nworkers);
                        }
                    }
                    Vec::new()
                }
                Message::Subscribe(f) => {
                    let crc = filter_crc(&f);
                    let actions = broker.subscribe(from, f);
                    let forwards_up = actions
                        .iter()
                        .any(|a| matches!(a, Action::ForwardSubscribe(_)))
                        && writers.contains_key(&PARENT_ID);
                    if forwards_up {
                        pending_acks.entry(crc).or_default().push(id);
                    } else {
                        let ack: Message<F, F::Event> = Message::SubAck { crc };
                        offer_to(writers, id, pool.encode(&ack), stats, dirty, nworkers);
                    }
                    actions
                }
                Message::Unsubscribe(f) => broker.unsubscribe(from, &f),
                Message::Publish(e) => {
                    // Durable brokers log before fan-out: the record is
                    // the encoded event verbatim (already-sealed bytes —
                    // the log never sees plaintext). On append failure
                    // the event is still delivered live, unstamped.
                    if let Some(d) = durable.as_mut() {
                        d.buf.clear();
                        e.encode(&mut d.buf);
                        match d.log.append(&d.buf) {
                            Ok(cursor) => publish_stamp = Some(cursor),
                            Err(_) => {
                                stats.log_append_failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    broker.publish(from, e)
                }
            };
            // Encode-once fan-out: every `Deliver` produced by one
            // publish carries a clone of the same event, so each frame
            // flavor (plain Publish for broker links, cursor-stamped for
            // subscribers) is serialized for its first recipient only and
            // the remaining recipients get Arc clones of that frame.
            let mut deliver_frame: Option<SharedFrame> = None;
            let mut stamped_frame: Option<SharedFrame> = None;
            for action in actions {
                match action {
                    Action::ForwardSubscribe(f) => {
                        let m: Message<F, F::Event> = Message::Subscribe(f);
                        offer_to(writers, PARENT_ID, pool.encode(&m), stats, dirty, nworkers);
                    }
                    Action::ForwardUnsubscribe(f) => {
                        let m: Message<F, F::Event> = Message::Unsubscribe(f);
                        offer_to(writers, PARENT_ID, pool.encode(&m), stats, dirty, nworkers);
                    }
                    Action::Deliver(peer, e) => {
                        let target = match peer {
                            Peer::Parent => PARENT_ID,
                            Peer::Child(c) | Peer::Local(c) => c,
                        };
                        let stamp = publish_stamp.filter(|_| {
                            durable
                                .as_ref()
                                .is_some_and(|d| d.client_peers.contains(&target))
                        });
                        if let Some(cursor) = stamp {
                            let frame = match &stamped_frame {
                                Some(f) => f.clone(),
                                None => {
                                    let m: Message<F, F::Event> =
                                        Message::Stamped { cursor, event: e };
                                    let f = pool.encode(&m);
                                    stamped_frame = Some(f.clone());
                                    f
                                }
                            };
                            // Replay interplay (single-threaded, so the
                            // boundary is race-free): while the log reader
                            // is still behind, the event reaches this peer
                            // in order from the log; once the reader is
                            // done but frames are still queued, line the
                            // live frame up behind them to keep order.
                            let replay = durable
                                .as_mut()
                                .and_then(|d| d.replays.iter_mut().find(|r| r.peer == target));
                            match replay {
                                Some(r) if r.done_reading => r.pending.push_back(frame),
                                Some(_) => {} // the replay will read it from the log
                                None => {
                                    offer_to(writers, target, frame, stats, dirty, nworkers);
                                }
                            }
                        } else {
                            let frame = match &deliver_frame {
                                Some(f) => f.clone(),
                                None => {
                                    let m: Message<F, F::Event> = Message::Publish(e);
                                    let f = pool.encode(&m);
                                    deliver_frame = Some(f.clone());
                                    f
                                }
                            };
                            offer_to(writers, target, frame, stats, dirty, nworkers);
                        }
                    }
                }
            }
        }
    }
    true
}
