//! The filter-semantics abstraction that lets one broker implementation
//! route both plaintext Siena traffic and PSGuard's tokenized envelopes.

use psguard_model::{Event, Filter};

/// What a broker needs from a filter type: event matching and the covering
/// relation used to suppress redundant subscription forwarding.
///
/// Implementations must keep `covers` *sound* with respect to `matches`:
/// `a.covers(b)` implies every event matching `b` matches `a`. (A
/// conservative `covers` that sometimes returns `false` is allowed — it
/// only costs extra forwarding, never correctness.)
pub trait FilterSemantics: Clone + PartialEq {
    /// The notification type routed under these filters.
    type Event: Clone;

    /// Whether an event satisfies this filter.
    fn matches(&self, event: &Self::Event) -> bool;

    /// Whether this filter covers `other` (see trait docs).
    fn covers(&self, other: &Self) -> bool;
}

impl FilterSemantics for Filter {
    type Event = Event;

    fn matches(&self, event: &Event) -> bool {
        Filter::matches(self, event)
    }

    fn covers(&self, other: &Filter) -> bool {
        Filter::covers(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Constraint, Op};

    #[test]
    fn plain_filter_semantics_delegate() {
        let broad = Filter::for_topic("t").with(Constraint::new("x", Op::Ge(0)));
        let narrow = Filter::for_topic("t").with(Constraint::new("x", Op::Ge(10)));
        assert!(FilterSemantics::covers(&broad, &narrow));
        let e = Event::builder("t").attr("x", 5i64).build();
        assert!(FilterSemantics::matches(&broad, &e));
        assert!(!FilterSemantics::matches(&narrow, &e));
    }
}
