//! The retained thread-per-connection TCP transport: the baseline the
//! reactor (see [`crate::reactor`]) is measured against.
//!
//! This is the PR2/PR5 transport unchanged: every accepted connection
//! gets a dedicated reader thread and a dedicated writer thread (2 OS
//! threads + 2 stacks per peer), and every client gets a supervisor
//! thread plus a per-epoch reader thread. That model is simple and
//! latency-friendly at small fan-out but hits a hard wall at a few
//! thousand connections — the motivation for the reactor rework. It is
//! kept (a) as the comparison baseline for
//! `BENCH_connections.json` and (b) as an intentionally boring
//! reference implementation of the wire protocol semantics: the
//! transport-level tests run identically against both.
//!
//! Everything protocol-visible — framing, hello handshake, subscribe
//! acks chained through the parent, heartbeat eviction, reconnect with
//! capped exponential backoff + deterministic jitter, bounded outbound
//! queues with [`OverflowPolicy`], encode-once [`SharedFrame`] fan-out —
//! is shared with the reactor transport; see `crate::tcp` for the
//! config/stats types.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;

use crate::broker::{Action, Broker};
use crate::error::TcpError;
use crate::frame::{write_frames, Frame, FramePool, FramePoolStats, SharedFrame};
use crate::index::IndexableFilter;
use crate::semantics::FilterSemantics;
use crate::table::Peer;
use crate::tcp::{jitter_step, OverflowPolicy, StatsInner, TcpConfig, TcpStats};
use crate::wire::{filter_crc, read_frame_into, Message, Wire};

/// Enqueues without ever blocking; full or closed queues count a drop.
/// The frame is an `Arc` clone — enqueueing never copies the bytes.
fn offer(tx: &Sender<SharedFrame>, frame: SharedFrame, stats: &StatsInner) {
    if tx.try_send(frame).is_err() {
        stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
    }
}

/// Internal dispatcher input.
enum Input<F: FilterSemantics> {
    FromPeer(u32, Message<F, F::Event>),
    PeerGone(u32),
    NewPeer(u32, Sender<SharedFrame>),
    Tick,
    Shutdown,
}

/// Handle to a running thread-per-connection broker. Dropping the handle
/// shuts it down.
pub struct ThreadedBroker {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    pool: FramePool,
    dispatcher_tx_shutdown: Box<dyn Fn() + Send + Sync>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadedBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedBroker")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ThreadedBroker {
    /// The address the broker listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Transport counters (evictions, drops, heartbeats).
    pub fn stats(&self) -> TcpStats {
        self.stats.snapshot()
    }

    /// Frame-pool counters for the broker's outbound encode path. A
    /// publish fanned out to N peers bumps `frames_encoded` by exactly
    /// one — the instrumentation the encode-once tests assert on.
    pub fn pool_stats(&self) -> FramePoolStats {
        self.pool.stats()
    }

    /// Requests shutdown and joins the worker threads.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        (self.dispatcher_tx_shutdown)();
        // Poke the accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ThreadedBroker {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Frames drained per writer wakeup into one coalesced vectored write.
/// Bounds both the `IoSlice` working set and how long a shutdown
/// sentinel can sit behind queued traffic.
const MAX_COALESCE: usize = 32;

/// Blocks for the next frame, then opportunistically drains up to
/// [`MAX_COALESCE`] already-queued frames into `batch` so one syscall
/// covers all of them. Returns `false` when the queue closed or the
/// shutdown sentinel arrived — frames collected before the sentinel are
/// still in `batch` and must be written before stopping.
fn drain_coalesce(rx: &Receiver<SharedFrame>, batch: &mut Vec<SharedFrame>) -> bool {
    batch.clear();
    let Ok(first) = rx.recv() else { return false };
    if first.is_sentinel() {
        return false;
    }
    batch.push(first);
    while batch.len() < MAX_COALESCE {
        match rx.try_recv() {
            Ok(f) if f.is_sentinel() => return false,
            Ok(f) => batch.push(f),
            Err(_) => break,
        }
    }
    true
}

fn spawn_writer(
    stream: TcpStream,
    rx: Receiver<SharedFrame>,
    stats: Arc<StatsInner>,
) -> JoinHandle<()> {
    // SPAWN-OK: thread-per-connection baseline — one writer thread per peer
    // is this module's documented (pre-reactor) design.
    std::thread::spawn(move || {
        let mut stream = stream;
        let mut batch: Vec<SharedFrame> = Vec::with_capacity(MAX_COALESCE);
        loop {
            let keep_going = drain_coalesce(&rx, &mut batch);
            if !batch.is_empty() && write_frames(&mut stream, &batch).is_err() {
                stats
                    .dropped_frames
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                break;
            }
            batch.clear(); // release the Arcs so buffers return to the pool
            if !keep_going {
                break;
            }
        }
        let _ = stream.flush();
    })
}

fn spawn_reader<F>(
    stream: TcpStream,
    peer_id: u32,
    tx: Sender<Input<F>>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Duration,
) -> JoinHandle<()>
where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send,
{
    // SPAWN-OK: thread-per-connection baseline — one reader thread per peer
    // is this module's documented (pre-reactor) design.
    std::thread::spawn(move || {
        let mut stream = stream;
        stream.set_read_timeout(Some(read_timeout)).ok();
        let mut frame = Vec::new(); // reused across frames: no per-read alloc
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match read_frame_into(&mut stream, &mut frame) {
                Ok(()) => match Message::<F, F::Event>::from_bytes(&frame) {
                    Ok(msg) => {
                        if tx.send(Input::FromPeer(peer_id, msg)).is_err() {
                            break;
                        }
                    }
                    Err(_) => break, // protocol violation: drop the peer
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break,
            }
        }
        let _ = tx.send(Input::PeerGone(peer_id));
    })
}

/// Spawns a thread-per-connection broker with the default [`TcpConfig`].
///
/// # Errors
///
/// Propagates socket errors (bind/connect failures).
pub fn spawn_threaded_broker<F>(
    listen: &str,
    parent: Option<SocketAddr>,
) -> std::io::Result<ThreadedBroker>
where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    spawn_threaded_broker_with::<F>(listen, parent, TcpConfig::default()).map_err(|e| match e {
        TcpError::Io(io) => io,
        other => std::io::Error::other(other.to_string()),
    })
}

/// Spawns a thread-per-connection broker listening on `listen` (use port
/// 0 for an ephemeral port), optionally connected upward to `parent`,
/// with explicit transport tuning.
///
/// # Errors
///
/// Returns [`TcpError::Io`] on bind/connect failures.
pub fn spawn_threaded_broker_with<F>(
    listen: &str,
    parent: Option<SocketAddr>,
    cfg: TcpConfig,
) -> Result<ThreadedBroker, TcpError>
where
    F: IndexableFilter + Wire + Send + 'static,
    F::Event: Wire + Send + Eq,
{
    let listener = TcpListener::bind(listen).map_err(TcpError::Io)?;
    let addr = listener.local_addr().map_err(TcpError::Io)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(StatsInner::default());
    let pool = FramePool::new();
    let (tx, rx) = unbounded::<Input<F>>();
    let mut threads = Vec::new();

    // Parent link (peer id 0 is reserved for the parent).
    const PARENT_ID: u32 = 0;
    let mut parent_tx: Option<Sender<SharedFrame>> = None;
    if let Some(paddr) = parent {
        let stream =
            TcpStream::connect_timeout(&paddr, cfg.connect_timeout).map_err(TcpError::Io)?;
        stream.set_nodelay(true).ok();
        stream.set_write_timeout(Some(cfg.write_timeout)).ok();
        let (wtx, wrx) = bounded::<SharedFrame>(cfg.queue_capacity);
        threads.push(spawn_writer(
            stream.try_clone().map_err(TcpError::Io)?,
            wrx,
            stats.clone(),
        ));
        threads.push(spawn_reader::<F>(
            stream,
            PARENT_ID,
            tx.clone(),
            shutdown.clone(),
            cfg.read_timeout,
        ));
        // Introduce ourselves as a broker.
        let hello: Message<F, F::Event> = Message::Hello { kind: 0 };
        let _ = wtx.send(pool.encode(&hello));
        parent_tx = Some(wtx);
    }

    // Accept loop.
    {
        let tx = tx.clone();
        let shutdown = shutdown.clone();
        let stats = stats.clone();
        // SPAWN-OK: baseline accept loop (one thread, plus 2/connection below).
        threads.push(std::thread::spawn(move || {
            let mut next_peer = 1u32;
            let mut reader_threads = Vec::new();
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                stream.set_nodelay(true).ok();
                stream.set_write_timeout(Some(cfg.write_timeout)).ok();
                let peer_id = next_peer;
                next_peer += 1;
                let (wtx, wrx) = bounded::<SharedFrame>(cfg.queue_capacity);
                if let Ok(ws) = stream.try_clone() {
                    reader_threads.push(spawn_writer(ws, wrx, stats.clone()));
                } else {
                    continue;
                }
                let _ = tx.send(Input::NewPeer(peer_id, wtx));
                reader_threads.push(spawn_reader::<F>(
                    stream,
                    peer_id,
                    tx.clone(),
                    shutdown.clone(),
                    cfg.read_timeout,
                ));
            }
            for t in reader_threads {
                let _ = t.join();
            }
        }));
    }

    // Heartbeat ticker.
    if !cfg.heartbeat_interval.is_zero() {
        let tx = tx.clone();
        let shutdown = shutdown.clone();
        let interval = cfg.heartbeat_interval;
        // SPAWN-OK: baseline heartbeat ticker thread (fixed count: one).
        threads.push(std::thread::spawn(move || {
            let step = interval.min(Duration::from_millis(50));
            let mut since_tick = Duration::ZERO;
            loop {
                std::thread::sleep(step);
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                since_tick += step;
                if since_tick >= interval {
                    since_tick = Duration::ZERO;
                    if tx.send(Input::Tick).is_err() {
                        break;
                    }
                }
            }
        }));
    }

    // Dispatcher: owns the pure broker and the peer registry.
    {
        let is_root = parent.is_none();
        let stats = stats.clone();
        let pool = pool.clone();
        // SPAWN-OK: baseline dispatcher thread (fixed count: one).
        threads.push(std::thread::spawn(move || {
            let mut broker: Broker<F> = Broker::new(is_root);
            let mut writers: HashMap<u32, Sender<SharedFrame>> = HashMap::new();
            let mut last_heard: HashMap<u32, Instant> = HashMap::new();
            // Subscribe acks we owe peers once the parent confirms the
            // forwarded filter (keyed by the filter's crc).
            let mut pending_acks: HashMap<u32, Vec<u32>> = HashMap::new();
            if let Some(ptx) = parent_tx {
                writers.insert(PARENT_ID, ptx);
            }
            let send_to = |writers: &HashMap<u32, Sender<SharedFrame>>,
                           peer: u32,
                           msg: &Message<F, F::Event>| {
                if let Some(w) = writers.get(&peer) {
                    offer(w, pool.encode(msg), &stats);
                }
            };
            let flush_acks = |writers: &HashMap<u32, Sender<SharedFrame>>,
                              pending: &mut HashMap<u32, Vec<u32>>| {
                for (crc, peers) in pending.drain() {
                    for p in peers {
                        if let Some(w) = writers.get(&p) {
                            let ack: Message<F, F::Event> = Message::SubAck { crc };
                            offer(w, pool.encode(&ack), &stats);
                        }
                    }
                }
            };
            while let Ok(input) = rx.recv() {
                match input {
                    Input::Shutdown => break,
                    Input::NewPeer(id, wtx) => {
                        writers.insert(id, wtx);
                        last_heard.insert(id, Instant::now());
                    }
                    Input::PeerGone(id) => {
                        if id != PARENT_ID {
                            broker.peer_down(Peer::Child(id));
                        } else {
                            // Without a parent, forwarded subscriptions can
                            // never be confirmed; ack them locally so
                            // clients don't hang (degraded mode).
                            flush_acks(&writers, &mut pending_acks);
                        }
                        last_heard.remove(&id);
                        if let Some(w) = writers.remove(&id) {
                            let _ = w.send(Frame::sentinel());
                        }
                    }
                    Input::Tick => {
                        // Encoded once; each writer queue gets an Arc
                        // clone, and the writer coalesces it into
                        // whatever flush is already pending.
                        let hb: Message<F, F::Event> = Message::Heartbeat;
                        let frame = pool.encode(&hb);
                        for w in writers.values() {
                            offer(w, frame.clone(), &stats);
                            stats.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
                        }
                        let deadline = cfg.heartbeat_interval * cfg.heartbeat_miss_limit.max(1);
                        let now = Instant::now();
                        let dead: Vec<u32> = last_heard
                            .iter()
                            .filter(|&(&id, &seen)| {
                                id != PARENT_ID && now.duration_since(seen) > deadline
                            })
                            .map(|(&id, _)| id)
                            .collect();
                        for id in dead {
                            broker.peer_down(Peer::Child(id));
                            last_heard.remove(&id);
                            if let Some(w) = writers.remove(&id) {
                                let _ = w.send(Frame::sentinel());
                            }
                            stats.evicted_peers.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Input::FromPeer(id, msg) => {
                        last_heard.insert(id, Instant::now());
                        let from = if id == PARENT_ID {
                            Peer::Parent
                        } else {
                            Peer::Child(id)
                        };
                        let actions = match msg {
                            Message::Hello { .. } | Message::Heartbeat => Vec::new(),
                            Message::SubAck { crc } => {
                                // Parent confirmed a forwarded filter:
                                // release the acks we owe downstream.
                                if id == PARENT_ID {
                                    for p in pending_acks.remove(&crc).unwrap_or_default() {
                                        send_to(&writers, p, &Message::SubAck { crc });
                                    }
                                }
                                Vec::new()
                            }
                            Message::Subscribe(f) => {
                                let crc = filter_crc(&f);
                                let actions = broker.subscribe(from, f);
                                let forwards_up = actions
                                    .iter()
                                    .any(|a| matches!(a, Action::ForwardSubscribe(_)))
                                    && writers.contains_key(&PARENT_ID);
                                if forwards_up {
                                    pending_acks.entry(crc).or_default().push(id);
                                } else {
                                    send_to(&writers, id, &Message::SubAck { crc });
                                }
                                actions
                            }
                            Message::Unsubscribe(f) => broker.unsubscribe(from, &f),
                            Message::Publish(e) => broker.publish(from, e),
                            // The threaded baseline has no durable log;
                            // catch-up traffic is ignored (a reactor
                            // broker spawned durable handles these).
                            Message::CatchUp { .. }
                            | Message::ReplayDone { .. }
                            | Message::Stamped { .. } => Vec::new(),
                        };
                        // Encode-once fan-out: every `Deliver` produced
                        // by one publish carries a clone of the same
                        // event, so the Publish frame is serialized for
                        // the first recipient only and the remaining
                        // recipients get Arc clones of that frame.
                        let mut deliver_frame: Option<SharedFrame> = None;
                        for action in actions {
                            match action {
                                Action::ForwardSubscribe(f) => {
                                    send_to(&writers, PARENT_ID, &Message::Subscribe(f));
                                }
                                Action::ForwardUnsubscribe(f) => {
                                    send_to(&writers, PARENT_ID, &Message::Unsubscribe(f));
                                }
                                Action::Deliver(peer, e) => {
                                    let target = match peer {
                                        Peer::Parent => PARENT_ID,
                                        Peer::Child(c) | Peer::Local(c) => c,
                                    };
                                    let frame = match &deliver_frame {
                                        Some(f) => f.clone(),
                                        None => {
                                            let msg: Message<F, F::Event> = Message::Publish(e);
                                            let f = pool.encode(&msg);
                                            deliver_frame = Some(f.clone());
                                            f
                                        }
                                    };
                                    if let Some(w) = writers.get(&target) {
                                        offer(w, frame, &stats);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Release writer threads.
            for (_, w) in writers {
                let _ = w.send(Frame::sentinel());
            }
        }));
    }

    let tx_for_shutdown = tx;
    Ok(ThreadedBroker {
        addr,
        shutdown,
        stats,
        pool,
        dispatcher_tx_shutdown: Box::new(move || {
            let _ = tx_for_shutdown.send(Input::Shutdown);
        }),
        threads,
    })
}

enum Cmd {
    Frame(SharedFrame),
    Shutdown,
}

/// A thread-per-connection client: subscribe and publish over TCP,
/// receive matching events. Reconnects automatically (replaying its
/// subscriptions) when the broker connection is lost. Costs a supervisor
/// thread plus a per-epoch reader thread; the reactor-backed
/// [`TcpClient`](crate::TcpClient) is the 1-thread default.
pub struct ThreadedClient<F: FilterSemantics> {
    cmd: Sender<Cmd>,
    events: Receiver<F::Event>,
    acks: Receiver<u32>,
    subs: Arc<Mutex<Vec<F>>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    pool: FramePool,
    overflow: OverflowPolicy,
    threads: Vec<JoinHandle<()>>,
}

impl<F: FilterSemantics> std::fmt::Debug for ThreadedClient<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ThreadedClient { .. }")
    }
}

impl<F> ThreadedClient<F>
where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send + 'static,
{
    /// Connects with the default [`TcpConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the initial connection.
    pub fn connect(broker: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with(broker, TcpConfig::default()).map_err(|e| match e {
            TcpError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        })
    }

    /// Connects with explicit transport tuning. The initial connection is
    /// established synchronously (so immediate failures surface here);
    /// later losses are handled by background reconnection.
    ///
    /// # Errors
    ///
    /// Returns [`TcpError::Io`] when the initial connection fails.
    pub fn connect_with(broker: SocketAddr, cfg: TcpConfig) -> Result<Self, TcpError> {
        let stream =
            TcpStream::connect_timeout(&broker, cfg.connect_timeout).map_err(TcpError::Io)?;
        stream.set_nodelay(true).ok();
        stream.set_write_timeout(Some(cfg.write_timeout)).ok();

        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let pool = FramePool::new();
        let subs: Arc<Mutex<Vec<F>>> = Arc::new(Mutex::new(Vec::new()));
        let (cmd_tx, cmd_rx) = bounded::<Cmd>(cfg.queue_capacity);
        let (etx, erx) = bounded::<F::Event>(4096);
        let (atx, arx) = unbounded::<u32>();

        let supervisor = {
            let shutdown = shutdown.clone();
            let stats = stats.clone();
            let subs = subs.clone();
            let pool = pool.clone();
            // SPAWN-OK: baseline client supervisor thread (fixed count: one,
            // plus one reader per connection epoch inside `supervise`).
            std::thread::spawn(move || {
                supervise::<F>(
                    broker, cfg, stream, cmd_rx, etx, atx, subs, shutdown, stats, pool,
                );
            })
        };

        Ok(ThreadedClient {
            cmd: cmd_tx,
            events: erx,
            acks: arx,
            subs,
            shutdown,
            stats,
            pool,
            overflow: cfg.overflow,
            threads: vec![supervisor],
        })
    }

    fn enqueue(&self, frame: SharedFrame) -> Result<(), TcpError> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(TcpError::Disconnected);
        }
        match self.overflow {
            OverflowPolicy::Block => self
                .cmd
                .send(Cmd::Frame(frame))
                .map_err(|_| TcpError::Disconnected),
            OverflowPolicy::DropNewest => match self.cmd.try_send(Cmd::Frame(frame)) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => {
                    self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
                    Err(TcpError::Backpressure)
                }
                Err(TrySendError::Disconnected(_)) => Err(TcpError::Disconnected),
            },
        }
    }

    /// Registers a subscription. The filter is also remembered for replay
    /// after a reconnection.
    ///
    /// # Errors
    ///
    /// [`TcpError::Disconnected`] when the transport has given up;
    /// [`TcpError::Backpressure`] under
    /// [`OverflowPolicy::DropNewest`] with a full queue.
    pub fn subscribe(&self, filter: F) -> Result<(), TcpError> {
        let msg: Message<F, F::Event> = Message::Subscribe(filter.clone());
        self.subs.lock().push(filter);
        self.enqueue(self.pool.encode(&msg))
    }

    /// Registers a subscription and waits (up to `timeout`) for the
    /// broker chain to acknowledge that it is installed — the readiness
    /// handshake used by tests instead of sleeping.
    ///
    /// # Errors
    ///
    /// [`TcpError::Timeout`] when no ack arrives in time; otherwise as
    /// [`subscribe`](Self::subscribe).
    pub fn subscribe_acked(&self, filter: F, timeout: Duration) -> Result<(), TcpError> {
        let crc = filter_crc(&filter);
        self.subscribe(filter)?;
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(TcpError::Timeout(timeout));
            }
            match self.acks.recv_timeout(left) {
                Ok(c) if c == crc => return Ok(()),
                Ok(_) => continue, // ack for an earlier subscription
                Err(RecvTimeoutError::Timeout) => return Err(TcpError::Timeout(timeout)),
                Err(RecvTimeoutError::Disconnected) => return Err(TcpError::Disconnected),
            }
        }
    }

    /// Removes a subscription (and stops replaying it on reconnect).
    ///
    /// # Errors
    ///
    /// As [`subscribe`](Self::subscribe).
    pub fn unsubscribe(&self, filter: &F) -> Result<(), TcpError> {
        self.subs.lock().retain(|f| f != filter);
        let msg: Message<F, F::Event> = Message::Unsubscribe(filter.clone());
        self.enqueue(self.pool.encode(&msg))
    }

    /// Publishes an event. Delivery is at-most-once across connection
    /// loss: frames queued while disconnected are sent after reconnect,
    /// but a frame lost inside a dying socket is not replayed.
    ///
    /// # Errors
    ///
    /// As [`subscribe`](Self::subscribe).
    pub fn publish(&self, event: F::Event) -> Result<(), TcpError> {
        let msg: Message<F, F::Event> = Message::Publish(event);
        self.enqueue(self.pool.encode(&msg))
    }

    /// Waits up to `timeout` for the next delivered event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<F::Event> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Transport counters (reconnects, drops).
    pub fn stats(&self) -> TcpStats {
        self.stats.snapshot()
    }

    /// Frame-pool counters for the client's outbound encode path.
    pub fn pool_stats(&self) -> FramePoolStats {
        self.pool.stats()
    }
}

/// The client connection supervisor: owns the socket across epochs,
/// writes frames, sends heartbeats, and reconnects with capped
/// exponential backoff + jitter, replaying subscriptions each time.
#[allow(clippy::too_many_arguments)]
fn supervise<F>(
    addr: SocketAddr,
    cfg: TcpConfig,
    first: TcpStream,
    cmd_rx: Receiver<Cmd>,
    etx: Sender<F::Event>,
    atx: Sender<u32>,
    subs: Arc<Mutex<Vec<F>>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    pool: FramePool,
) where
    F: FilterSemantics + Wire + Send + 'static,
    F::Event: Wire + Send + 'static,
{
    let mut jitter_state = cfg.jitter_seed ^ u64::from(addr.port());
    let mut stream_opt = Some(first);
    // Heartbeats never change: encode once for the client's lifetime.
    let hb_frame = pool.encode(&Message::<F, F::Event>::Heartbeat);
    let mut batch: Vec<SharedFrame> = Vec::with_capacity(MAX_COALESCE);
    'epochs: loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // (Re)establish a connection.
        let stream = match stream_opt.take() {
            Some(s) => s,
            None => {
                let mut attempt = 0u32;
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break 'epochs;
                    }
                    attempt += 1;
                    if attempt > cfg.max_reconnect_attempts {
                        shutdown.store(true, Ordering::SeqCst);
                        break 'epochs;
                    }
                    let base = cfg
                        .reconnect_initial
                        .saturating_mul(1u32 << (attempt - 1).min(16))
                        .min(cfg.reconnect_max);
                    std::thread::sleep(base + jitter_step(&mut jitter_state, base));
                    match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
                        Ok(s) => {
                            s.set_nodelay(true).ok();
                            s.set_write_timeout(Some(cfg.write_timeout)).ok();
                            stats.reconnects.fetch_add(1, Ordering::Relaxed);
                            break s;
                        }
                        Err(_) => continue,
                    }
                }
            }
        };

        // Handshake: hello, then replay every remembered subscription.
        let mut wstream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue, // socket already dead; reconnect
        };
        let hello: Message<F, F::Event> = Message::Hello { kind: 1 };
        if pool.encode(&hello).write_to(&mut wstream).is_err() {
            continue;
        }
        let replay: Vec<F> = subs.lock().clone();
        let mut handshake_ok = true;
        for f in replay {
            let msg: Message<F, F::Event> = Message::Subscribe(f);
            if pool.encode(&msg).write_to(&mut wstream).is_err() {
                handshake_ok = false;
                break;
            }
        }
        if !handshake_ok {
            continue;
        }

        // Reader for this connection epoch.
        let epoch_alive = Arc::new(AtomicBool::new(true));
        let reader = {
            let epoch_alive = epoch_alive.clone();
            let shutdown = shutdown.clone();
            let etx = etx.clone();
            let atx = atx.clone();
            let mut rstream = stream;
            let read_timeout = cfg.read_timeout;
            // SPAWN-OK: baseline per-epoch reader thread (one live at a time).
            std::thread::spawn(move || {
                rstream.set_read_timeout(Some(read_timeout)).ok();
                let mut frame = Vec::new(); // reused across frames
                loop {
                    if shutdown.load(Ordering::SeqCst) || !epoch_alive.load(Ordering::SeqCst) {
                        break;
                    }
                    match read_frame_into(&mut rstream, &mut frame) {
                        Ok(()) => match Message::<F, F::Event>::from_bytes(&frame) {
                            Ok(Message::Publish(e)) => {
                                if etx.send(e).is_err() {
                                    break;
                                }
                            }
                            Ok(Message::SubAck { crc }) => {
                                let _ = atx.send(crc);
                            }
                            Ok(_) => {} // heartbeats, hellos
                            Err(_) => break,
                        },
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue;
                        }
                        Err(_) => break,
                    }
                }
                epoch_alive.store(false, Ordering::SeqCst);
            })
        };

        // Write loop for this epoch; idle gaps send heartbeats.
        let tick = if cfg.heartbeat_interval.is_zero() {
            Duration::from_millis(200)
        } else {
            cfg.heartbeat_interval
        };
        loop {
            if shutdown.load(Ordering::SeqCst) {
                epoch_alive.store(false, Ordering::SeqCst);
                let _ = reader.join();
                break 'epochs;
            }
            if !epoch_alive.load(Ordering::SeqCst) {
                break; // connection died; reconnect
            }
            match cmd_rx.recv_timeout(tick) {
                Ok(Cmd::Shutdown) => {
                    shutdown.store(true, Ordering::SeqCst);
                    epoch_alive.store(false, Ordering::SeqCst);
                    let _ = reader.join();
                    break 'epochs;
                }
                Ok(Cmd::Frame(frame)) => {
                    // Coalesce everything already queued behind this
                    // frame into one vectored write.
                    batch.clear();
                    batch.push(frame);
                    let mut shutdown_after = false;
                    while batch.len() < MAX_COALESCE {
                        match cmd_rx.try_recv() {
                            Ok(Cmd::Frame(f)) => batch.push(f),
                            Ok(Cmd::Shutdown) => {
                                shutdown_after = true;
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    let wrote = write_frames(&mut wstream, &batch);
                    if wrote.is_err() {
                        stats
                            .dropped_frames
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    }
                    batch.clear();
                    if shutdown_after {
                        shutdown.store(true, Ordering::SeqCst);
                        epoch_alive.store(false, Ordering::SeqCst);
                        let _ = reader.join();
                        break 'epochs;
                    }
                    if wrote.is_err() {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if !cfg.heartbeat_interval.is_zero() {
                        if hb_frame.write_to(&mut wstream).is_err() {
                            break;
                        }
                        stats.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    epoch_alive.store(false, Ordering::SeqCst);
                    let _ = reader.join();
                    break 'epochs;
                }
            }
        }
        epoch_alive.store(false, Ordering::SeqCst);
        let _ = reader.join();
    }
}

impl<F: FilterSemantics> Drop for ThreadedClient<F> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.cmd.try_send(Cmd::Shutdown);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
