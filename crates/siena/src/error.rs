//! Typed errors for the TCP transport.
//!
//! Runtime conditions a caller can meaningfully react to (a broker that
//! never comes back, a full outbound queue, a lost connection) surface as
//! [`TcpError`] variants instead of panics or silently swallowed `()`s.

use std::time::Duration;

/// Failures of the TCP transport surfaced to callers.
#[derive(Debug)]
pub enum TcpError {
    /// An underlying socket operation failed.
    Io(std::io::Error),
    /// A wait (connect, subscription ack, receive) exceeded its deadline.
    Timeout(Duration),
    /// The connection supervisor has given up reconnecting (retry budget
    /// exhausted) or the transport was shut down.
    Disconnected,
    /// A bounded outbound queue was full and the overflow policy is
    /// [`OverflowPolicy::DropNewest`](crate::OverflowPolicy::DropNewest) —
    /// the message was *not* enqueued.
    Backpressure,
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "socket error: {e}"),
            TcpError::Timeout(d) => write!(f, "timed out after {d:?}"),
            TcpError::Disconnected => write!(f, "transport disconnected"),
            TcpError::Backpressure => write!(f, "outbound queue full; message dropped"),
        }
    }
}

impl std::error::Error for TcpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TcpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TcpError {
    fn from(e: std::io::Error) -> Self {
        TcpError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let io = TcpError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
        assert!(TcpError::Timeout(Duration::from_secs(1))
            .to_string()
            .contains("1s"));
        assert!(std::error::Error::source(&TcpError::Backpressure).is_none());
    }
}
