//! The parallel sharded dissemination pipeline.
//!
//! [`Broker::publish`](crate::Broker::publish) routes one event at a time
//! through one [`MatchIndex`]: at 100k subscriptions the per-event PRF
//! probes and delivery bookkeeping collapse throughput no matter how good
//! the index is, because everything runs on one core and redoes keyed
//! setup per probe. [`ShardedPipeline`] is the batch counterpart:
//!
//! * **Sharding.** Registrations are partitioned across `N` shards by the
//!   hash of their routing key (topic bucket / subscription token), so
//!   each shard owns a disjoint slice of the bucket space and a batch of
//!   events can be matched against all shards concurrently via
//!   [`std::thread::scope`]. `N = 1` degenerates to the serial path — no
//!   threads are spawned.
//! * **Prepared probe contexts.** Every shard index is created with
//!   [`MatchIndex::with_prepared_probes`], so probe-keyed families (the
//!   secure filters) pay keyed-PRF setup once per *bucket* instead of
//!   once per *probe*.
//! * **Deterministic merge.** Each registration gets a global sequence
//!   number at the pipeline level ([`MatchIndex::insert_with_seq`]);
//!   shards report matches as `(seq, peer)` pairs and the merge sorts by
//!   that unique global sequence before first-seen peer dedup. The
//!   delivered order is therefore *bit-identical for every shard count*
//!   — and identical to what a single serial [`Broker`](crate::Broker)
//!   holding the same registrations produces (pinned by the equivalence
//!   proptests in `tests/pipeline_props.rs`).
//! * **Scratch reuse.** Shards keep their per-batch match buffers and the
//!   merge keeps its sort/dedup buffers across batches; steady-state
//!   matching performs no per-event allocation, and deliveries are
//!   returned as per-event peer slices over one flat buffer instead of a
//!   cloned event per delivery.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use crate::index::{EntryId, IndexableFilter, MatchIndex, MatchStats};
use crate::table::Peer;

/// FNV-1a (64-bit, standard offset basis and prime): the bucket-to-shard
/// partition function. Std's `DefaultHasher` is explicitly not guaranteed
/// stable across Rust releases; a fixed algorithm keeps shard assignment
/// (and thus per-shard work and stats) identical on every toolchain.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Cumulative counters for one [`ShardedPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Events routed through [`ShardedPipeline::publish_batch`].
    pub events: u64,
    /// Total deliveries emitted.
    pub deliveries: u64,
    /// Matching work (key probes + predicate evaluations) summed over
    /// all shards.
    pub match_work: u64,
}

/// Deliveries for one event batch: per-event peer lists over one flat
/// buffer, in the exact order [`crate::Broker::publish`] would have
/// emitted `Deliver` actions — without cloning the event per delivery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchDeliveries {
    peers: Vec<Peer>,
    /// `ends[i]` is the end offset of event `i`'s peers in `peers`.
    ends: Vec<usize>,
}

impl BatchDeliveries {
    /// An empty delivery set, reusable across batches via
    /// [`ShardedPipeline::publish_batch_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the batch held no events.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Total deliveries across the batch.
    pub fn total(&self) -> usize {
        self.peers.len()
    }

    /// The recipients of event `i`, in delivery order.
    pub fn for_event(&self, i: usize) -> &[Peer] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.peers[start..self.ends[i]]
    }

    /// Per-event recipient slices, in batch order.
    pub fn iter(&self) -> impl Iterator<Item = &[Peer]> {
        (0..self.len()).map(|i| self.for_event(i))
    }

    fn clear(&mut self) {
        self.peers.clear();
        self.ends.clear();
    }
}

/// One worker shard: a disjoint slice of the bucket space plus its
/// per-batch scratch.
#[derive(Debug, Clone)]
struct Shard<F: IndexableFilter> {
    index: MatchIndex<F>,
    /// Live registrations with their index entry ids, for removal.
    entries: Vec<(Peer, F, EntryId)>,
    /// Flat `(seq, peer)` matches for the batch in flight.
    out: Vec<(u64, Peer)>,
    /// Per-event end offsets into `out`.
    ends: Vec<usize>,
    /// Per-event scratch reused across the batch.
    tmp: Vec<(u64, Peer)>,
    /// Matching work accumulated over the batch in flight.
    stats: MatchStats,
}

impl<F: IndexableFilter> Shard<F> {
    fn new() -> Self {
        Shard {
            index: MatchIndex::with_prepared_probes(),
            entries: Vec::new(),
            out: Vec::new(),
            ends: Vec::new(),
            tmp: Vec::new(),
            stats: MatchStats::default(),
        }
    }

    /// Matches every event in the batch against this shard's index,
    /// recording `(seq, peer)` pairs per event. Runs on a worker thread.
    fn run_batch(&mut self, events: &[F::Event]) {
        self.out.clear();
        self.ends.clear();
        self.stats = MatchStats::default();
        for event in events {
            self.index.query_matches_into(event, &mut self.tmp);
            self.out.extend_from_slice(&self.tmp);
            self.ends.push(self.out.len());
            self.stats.accumulate(self.index.last_stats());
        }
    }

    /// Event `i`'s matches from the last [`run_batch`](Self::run_batch).
    fn event_matches(&self, i: usize) -> &[(u64, Peer)] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.out[start..self.ends[i]]
    }
}

/// A batch-publishing broker front that partitions its subscription
/// space across `N` worker shards. See the module docs for the design;
/// [`publish_batch`](Self::publish_batch) is the hot path.
///
/// # Example
///
/// ```
/// use psguard_model::{Event, Filter};
/// use psguard_siena::{Peer, ShardedPipeline};
///
/// let mut p: ShardedPipeline<Filter> = ShardedPipeline::new(true, 4);
/// p.subscribe(Peer::Local(1), Filter::for_topic("news"));
/// let batch = vec![Event::builder("news").build(), Event::builder("other").build()];
/// let out = p.publish_batch(Peer::Local(9), &batch);
/// assert_eq!(out.for_event(0), &[Peer::Local(1)]);
/// assert!(out.for_event(1).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ShardedPipeline<F: IndexableFilter> {
    is_root: bool,
    shards: Vec<Shard<F>>,
    /// Global registration counter: the total order the merge restores.
    next_seq: u64,
    live: usize,
    stats: PipelineStats,
    last_batch_work: u64,
    /// Cross-shard merge buffer, reused across events.
    merge_scratch: Vec<(u64, Peer)>,
    /// Peer-dedup set, reused across events.
    seen_scratch: HashSet<Peer>,
}

impl<F: IndexableFilter> ShardedPipeline<F> {
    /// Creates a pipeline with `shards` worker shards (at least one).
    /// `is_root` has the same meaning as for [`crate::Broker::new`]:
    /// root pipelines never emit a parent delivery.
    pub fn new(is_root: bool, shards: usize) -> Self {
        Self::with_capacity(is_root, shards, 0)
    }

    /// [`new`](Self::new), pre-sizing each shard's index arenas for an
    /// expected total of `expected_subs` registrations (split evenly
    /// across shards). A bulk subscribe into a pre-sized pipeline lays
    /// the hot counter arrays out contiguously once instead of growing
    /// them through doubling reallocations — at 1M registrations that
    /// is the difference between one arena placement and ~20 copies of
    /// the hot state per shard.
    pub fn with_capacity(is_root: bool, shards: usize, expected_subs: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = expected_subs.div_ceil(shards);
        ShardedPipeline {
            is_root,
            shards: (0..shards)
                .map(|_| {
                    let mut s = Shard::new();
                    s.index.reserve(per_shard);
                    s.entries.reserve(per_shard);
                    s
                })
                .collect(),
            next_seq: 0,
            live: 0,
            stats: PipelineStats::default(),
            last_batch_work: 0,
            merge_scratch: Vec::new(),
            seen_scratch: HashSet::new(),
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live registrations across all shards.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no registration is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cumulative pipeline counters.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Matching work performed by the most recent batch, summed over
    /// shards — comparable to summing
    /// [`crate::Broker::last_match_work`] over the batch.
    pub fn last_batch_work(&self) -> u64 {
        self.last_batch_work
    }

    /// The shard owning `key`'s bucket: a stable hash partition (fixed
    /// [`Fnv1a`], identical on every toolchain), so a bucket's
    /// registrations always land on one shard and cross-shard dedup only
    /// has to handle *peers*, never split buckets.
    fn shard_of(&self, key: &F::Key) -> usize {
        let mut h = Fnv1a::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Registers `filter` for `peer`, assigning the next global
    /// registration sequence number.
    pub fn subscribe(&mut self, peer: Peer, filter: F) {
        let shard = self.shard_of(&filter.routing_key());
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = self.shards[shard]
            .index
            .insert_with_seq(peer, filter.clone(), seq);
        self.shards[shard].entries.push((peer, filter, id));
        self.live += 1;
    }

    /// Removes one exact `(peer, filter)` registration (the earliest, if
    /// duplicated). Returns `true` when something was removed.
    pub fn unsubscribe(&mut self, peer: Peer, filter: &F) -> bool {
        let shard = self.shard_of(&filter.routing_key());
        let s = &mut self.shards[shard];
        let Some(pos) = s
            .entries
            .iter()
            .position(|(p, f, _)| *p == peer && f == filter)
        else {
            return false;
        };
        let (_, _, id) = s.entries.remove(pos);
        s.index.remove(id);
        self.live -= 1;
        true
    }

    /// Removes every registration of `peer` (e.g. on disconnect).
    pub fn peer_down(&mut self, peer: Peer) -> usize {
        let mut removed = 0;
        for s in &mut self.shards {
            let mut pos = 0;
            while pos < s.entries.len() {
                if s.entries[pos].0 == peer {
                    let (_, _, id) = s.entries.remove(pos);
                    s.index.remove(id);
                    removed += 1;
                } else {
                    pos += 1;
                }
            }
        }
        self.live -= removed;
        removed
    }

    /// Routes a batch of events from `from`, matching across all shards
    /// in parallel. Returns the per-event recipients in exactly the
    /// order [`crate::Broker::publish`] emits `Deliver` actions: the
    /// parent copy first (when `from` is not the parent and this is not
    /// the root), then matching peers in first-seen registration order,
    /// excluding the sender and the parent.
    pub fn publish_batch(&mut self, from: Peer, events: &[F::Event]) -> BatchDeliveries
    where
        F: Send,
        F::Event: Sync,
    {
        let mut out = BatchDeliveries::new();
        self.publish_batch_into(from, events, &mut out);
        out
    }

    /// [`publish_batch`](Self::publish_batch) into a caller-provided
    /// delivery buffer, reusing its allocations across batches.
    pub fn publish_batch_into(&mut self, from: Peer, events: &[F::Event], out: &mut BatchDeliveries)
    where
        F: Send,
        F::Event: Sync,
    {
        out.clear();
        if self.shards.len() == 1 {
            // Serial path: no threads for a single shard.
            self.shards[0].run_batch(events);
        } else {
            std::thread::scope(|scope| {
                for shard in self.shards.iter_mut() {
                    scope.spawn(move || shard.run_batch(events));
                }
            });
        }

        let mut batch_work = 0u64;
        for s in &self.shards {
            batch_work += s.stats.work();
        }
        self.last_batch_work = batch_work;
        self.stats.match_work += batch_work;
        self.stats.events += events.len() as u64;

        let mut merge = std::mem::take(&mut self.merge_scratch);
        let mut seen = std::mem::take(&mut self.seen_scratch);
        for i in 0..events.len() {
            merge.clear();
            for s in &self.shards {
                merge.extend_from_slice(s.event_matches(i));
            }
            // Global sequence numbers are unique, so this order is total
            // and independent of shard count or interleaving.
            merge.sort_unstable_by_key(|&(seq, _)| seq);
            if from != Peer::Parent && !self.is_root {
                out.peers.push(Peer::Parent);
            }
            seen.clear();
            for &(_, peer) in &merge {
                if seen.insert(peer) && peer != from && peer != Peer::Parent {
                    out.peers.push(peer);
                }
            }
            out.ends.push(out.peers.len());
        }
        self.merge_scratch = merge;
        self.seen_scratch = seen;
        self.stats.deliveries += out.total() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{Action, Broker};
    use psguard_model::{Constraint, Event, Filter, Op};

    fn f(topic: &str, min: i64) -> Filter {
        Filter::for_topic(topic).with(Constraint::new("x", Op::Ge(min)))
    }

    fn e(topic: &str, x: i64) -> Event {
        Event::builder(topic).attr("x", x).build()
    }

    /// Reference: the serial broker's deliveries for the same inputs.
    fn broker_deliveries(
        is_root: bool,
        subs: &[(Peer, Filter)],
        from: Peer,
        events: &[Event],
    ) -> Vec<Vec<Peer>> {
        let mut b: Broker<Filter> = Broker::new(is_root);
        for (p, f) in subs {
            b.subscribe(*p, f.clone());
        }
        events
            .iter()
            .map(|ev| {
                b.publish(from, ev.clone())
                    .into_iter()
                    .map(|a| match a {
                        Action::Deliver(p, _) => p,
                        other => panic!("unexpected action {other:?}"),
                    })
                    .collect()
            })
            .collect()
    }

    fn subs() -> Vec<(Peer, Filter)> {
        let mut subs = Vec::new();
        for i in 0..40u32 {
            let topic = format!("t{}", i % 7);
            subs.push((Peer::Child(i % 11), f(&topic, (i as i64 % 5) * 10)));
        }
        subs.push((Peer::Parent, Filter::any()));
        subs.push((Peer::Child(3), Filter::any()));
        subs
    }

    fn events() -> Vec<Event> {
        (0..25i64)
            .map(|i| e(&format!("t{}", i % 9), i * 3))
            .collect()
    }

    #[test]
    fn matches_serial_broker_for_all_shard_counts() {
        let subs = subs();
        let events = events();
        for is_root in [true, false] {
            for from in [Peer::Parent, Peer::Child(3), Peer::Local(99)] {
                let expect = broker_deliveries(is_root, &subs, from, &events);
                for shards in [1usize, 2, 4, 8] {
                    let mut p: ShardedPipeline<Filter> = ShardedPipeline::new(is_root, shards);
                    for (peer, filter) in &subs {
                        p.subscribe(*peer, filter.clone());
                    }
                    let out = p.publish_batch(from, &events);
                    assert_eq!(out.len(), events.len());
                    for (i, want) in expect.iter().enumerate() {
                        assert_eq!(
                            out.for_event(i),
                            want.as_slice(),
                            "shards={shards} root={is_root} from={from:?} event={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_across_shard_counts() {
        let subs = subs();
        let events = events();
        let reference = {
            let mut p: ShardedPipeline<Filter> = ShardedPipeline::new(false, 1);
            for (peer, filter) in &subs {
                p.subscribe(*peer, filter.clone());
            }
            p.publish_batch(Peer::Local(1), &events)
        };
        for shards in [2usize, 4, 8] {
            let mut p: ShardedPipeline<Filter> = ShardedPipeline::new(false, shards);
            for (peer, filter) in &subs {
                p.subscribe(*peer, filter.clone());
            }
            assert_eq!(
                p.publish_batch(Peer::Local(1), &events),
                reference,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn unsubscribe_and_peer_down_update_matches() {
        let mut p: ShardedPipeline<Filter> = ShardedPipeline::new(true, 4);
        p.subscribe(Peer::Child(1), f("a", 0));
        p.subscribe(Peer::Child(2), f("a", 0));
        p.subscribe(Peer::Child(2), f("b", 0));
        assert_eq!(p.len(), 3);
        assert!(p.unsubscribe(Peer::Child(1), &f("a", 0)));
        assert!(!p.unsubscribe(Peer::Child(1), &f("a", 0)));
        let out = p.publish_batch(Peer::Parent, &[e("a", 5)]);
        assert_eq!(out.for_event(0), &[Peer::Child(2)]);
        assert_eq!(p.peer_down(Peer::Child(2)), 2);
        assert!(p.is_empty());
        let out = p.publish_batch(Peer::Parent, &[e("a", 5)]);
        assert!(out.for_event(0).is_empty());
    }

    #[test]
    fn stats_accumulate_over_batches() {
        let mut p: ShardedPipeline<Filter> = ShardedPipeline::new(true, 2);
        p.subscribe(Peer::Child(1), Filter::for_topic("t"));
        let batch = vec![e("t", 1), e("t", 2), e("zzz", 3)];
        let out = p.publish_batch(Peer::Parent, &batch);
        assert_eq!(out.total(), 2);
        let stats = p.stats();
        assert_eq!(stats.events, 3);
        assert_eq!(stats.deliveries, 2);
        assert!(stats.match_work >= 2);
        assert!(p.last_batch_work() >= 2);
    }

    #[test]
    fn shard_hash_is_fnv1a_with_standard_constants() {
        // Published FNV-1a 64-bit test values: the shard partition must
        // not drift across toolchains (or refactors).
        for (input, want) in [
            (b"".as_slice(), 0xcbf2_9ce4_8422_2325u64),
            (b"a", 0xaf63_dc4c_8601_ec8c),
            (b"foobar", 0x8594_4171_f739_67e8),
        ] {
            let mut h = Fnv1a::new();
            h.write(input);
            assert_eq!(h.finish(), want, "input {input:?}");
        }
    }

    #[test]
    fn empty_batch_and_empty_pipeline() {
        let mut p: ShardedPipeline<Filter> = ShardedPipeline::new(true, 8);
        let out = p.publish_batch(Peer::Parent, &[]);
        assert!(out.is_empty());
        assert_eq!(out.total(), 0);
        p.subscribe(Peer::Child(1), Filter::any());
        let out = p.publish_batch(Peer::Parent, &[e("t", 1)]);
        assert_eq!(out.for_event(0), &[Peer::Child(1)]);
    }
}
