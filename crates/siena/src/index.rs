//! The matching fast path: a keyed, counting-based subscription index.
//!
//! [`SubscriptionTable`](crate::SubscriptionTable) historically matched an
//! event by evaluating every registered filter — `O(n)` filter
//! evaluations per event, which dominates broker cost at the paper's
//! scale targets. [`MatchIndex`] replaces that scan with the classic
//! *counting algorithm* (Yan & Garcia-Molina) specialized to this
//! codebase's two filter families:
//!
//! * **Keyed partitioning.** Every filter contributes a *routing key*
//!   (its topic for plain Siena filters, its Song–Wagner–Perrig
//!   subscription token for PSGuard's [`SecureFilter`]s). Filters with
//!   the same key share one bucket, so the per-event work is bounded by
//!   the buckets an event can possibly touch, not the table size. For
//!   secure filters this doubles as a **token interning table**: a
//!   thousand subscribers of one topic store a single bucket key, and the
//!   broker performs **one** PRF verification per *distinct* token per
//!   event instead of one per subscription.
//! * **Distinct-predicate evaluation.** Within a bucket, syntactically
//!   identical constraints are interned once. Numeric constraints are
//!   laid out per attribute in a boundary range sorted by lower bound, so
//!   a query inspects only the prefix whose lower bounds do not exceed
//!   the event's value; equality constraints on strings/categories hash
//!   directly to their predicate. Each satisfied predicate bumps a
//!   per-filter counter; a filter matches exactly when its counter
//!   reaches its constraint count. An event that lacks a constrained
//!   attribute costs nothing for that attribute.
//! * **Per-event probe memo.** Probe-keyed (secure) events carry a fresh
//!   nonce; a bounded memo keyed on that nonce caches which token
//!   buckets an event's tag matched, so re-publishing the same envelope
//!   (workload cycles, fan-in from several children) skips the PRF
//!   entirely.
//!
//! # Data layout (the 1M-entry rework, DESIGN.md §18)
//!
//! At a million registrations the counting pass is memory-bound, not
//! compute-bound, so the index is laid out for cache density rather
//! than struct-per-concept clarity:
//!
//! * **Hot/cold entry split.** The per-entry state touched on every
//!   counter bump — sequence, peer, required count, current count,
//!   generation stamp — lives in one 32-byte [`HotEntry`] record, so a
//!   bump touches exactly one cache line instead of three parallel
//!   arrays plus a filter-sized struct. The filter itself and the
//!   bookkeeping only insert/remove need ([`ColdEntry`]) live in a
//!   separate arena that queries never read.
//! * **Arena-backed predicate and entry-list storage.** Interned
//!   predicates live in one global slab addressed by `u32` pid; the
//!   entry-id lists hanging off predicates, buckets, and unconstrained
//!   sets are chunked lists of 64-byte nodes ([`EntryChunk`]) in one
//!   shared [`ChunkArena`] with a free list — no per-predicate `Vec`
//!   headers, and freed storage is reused across subscription churn.
//! * **Contiguous boundary arena.** Each attribute's sorted numeric
//!   lower bounds occupy a range of one shared pair of parallel arrays
//!   ([`BoundsArena`]), allocated in power-of-two size classes with
//!   per-class free lists. The query-side prefix scan is a
//!   `partition_point` over a dense `i64` slice.
//! * **FxHash maps.** The key, memo, and predicate-interning maps use a
//!   dependency-free FxHash-style multiply-xor hasher instead of
//!   SipHash. These tables are keyed by interned tokens, topic strings,
//!   and event nonces — internal values, not attacker-chosen
//!   hash-flood vectors — so DoS-resistant hashing buys nothing here.
//! * **Scratch sized once.** Counters live in the entry arena and all
//!   per-query scratch is reused, so a steady-state query allocates
//!   nothing and [`reserve`](MatchIndex::reserve) lets the sharded
//!   pipeline size each shard's arenas once up front.
//!
//! The pre-rework layout is preserved verbatim as
//! [`crate::LegacyMatchIndex`] so `e2e_scaling` can measure this rework
//! against it at 1M entries and the property tests can cross-check both.
//!
//! The index reports its actual work per query ([`MatchStats`]), which
//! the broker and the overlay engine use as the matching-cost input to
//! the performance model — replacing the old `table.len()` proxy.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hash, Hasher};

use psguard_model::{AttrName, AttrValue, Constraint, Op};

use crate::semantics::FilterSemantics;
use crate::table::Peer;

/// How the index locates candidate buckets for an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyQuery<K> {
    /// The event names its candidate keys directly (hash lookups): plain
    /// filters, where an event's topic is visible.
    Direct(Vec<K>),
    /// Candidate keys cannot be read off the event; every live bucket
    /// key must be probed with [`IndexableFilter::key_matches`]: secure
    /// filters, where only a PRF test links a tag to a token.
    Probe,
}

/// A filter family the [`MatchIndex`] can decompose: a routing key plus
/// a conjunction of attribute constraints.
///
/// Implementations must satisfy, for every filter `f` and event `e`:
/// `f.matches(e)` ⇔ *the event reaches `f`'s bucket* (per
/// [`candidate_keys`](Self::candidate_keys) /
/// [`key_matches`](Self::key_matches)) *and every constraint in
/// [`indexed_constraints`](Self::indexed_constraints) holds on the
/// attributes exposed by [`event_attr`](Self::event_attr)*. The
/// index-vs-linear property tests in `tests/` pin this equivalence.
pub trait IndexableFilter: FilterSemantics + Hash {
    /// The bucket key: topic for plain filters, subscription token for
    /// secure ones.
    type Key: Clone + Eq + Hash + std::fmt::Debug + Send + 'static;

    /// This filter's routing key.
    fn routing_key(&self) -> Self::Key;

    /// The attribute constraints the index evaluates (everything except
    /// what the key already encodes).
    fn indexed_constraints(&self) -> &[Constraint];

    /// Reads a routable attribute off the event.
    fn event_attr<'a>(event: &'a Self::Event, name: &AttrName) -> Option<&'a AttrValue>;

    /// The buckets this event could match.
    fn candidate_keys(event: &Self::Event) -> KeyQuery<Self::Key>;

    /// Probe-mode test: does the event's tag match this bucket key? Only
    /// called when [`candidate_keys`](Self::candidate_keys) returns
    /// [`KeyQuery::Probe`]; the default (for direct-keyed filters) is
    /// never invoked.
    fn key_matches(_key: &Self::Key, _event: &Self::Event) -> bool {
        false
    }

    /// Reusable per-key probe state, e.g. a keyed PRF context with its
    /// pad states precomputed ([`psguard_crypto::PrfContext`] for secure
    /// filters). `()` for direct-keyed families that never probe.
    type ProbeContext: Clone + Send + std::fmt::Debug + 'static;

    /// Builds the reusable probe context for `key`. `None` (the default)
    /// means the family has no prepared-probe fast path and
    /// [`key_matches`](Self::key_matches) is always used.
    ///
    /// Only consulted by indexes created with
    /// [`MatchIndex::with_prepared_probes`]: preparing a context keeps
    /// key-equivalent digest state resident for the bucket's lifetime,
    /// which is a deliberate memory/secrecy-vs-throughput trade the
    /// caller opts into (see DESIGN.md §13).
    fn probe_context(_key: &Self::Key) -> Option<Self::ProbeContext> {
        None
    }

    /// Probe-mode test via a prepared context. Must decide exactly like
    /// [`key_matches`](Self::key_matches) for the key the context was
    /// built from; the default (never called without a context) is
    /// unreachable in practice.
    fn context_matches(_ctx: &Self::ProbeContext, _event: &Self::Event) -> bool {
        false
    }

    /// A stable per-event identity for memoizing probe results (the
    /// nonce of a secure tag). `None` disables the memo.
    fn probe_memo_key(_event: &Self::Event) -> Option<u128> {
        None
    }

    /// Keys whose buckets could hold a filter covering `self`. Used to
    /// restrict covering scans on subscribe; must be sound (a covering
    /// filter always lives in one of these buckets).
    fn covering_candidate_keys(&self) -> Vec<Self::Key> {
        vec![self.routing_key()]
    }
}

impl IndexableFilter for psguard_model::Filter {
    type Key = Option<String>;
    type ProbeContext = ();

    fn routing_key(&self) -> Option<String> {
        self.topic().map(str::to_owned)
    }

    fn indexed_constraints(&self) -> &[Constraint] {
        self.constraints()
    }

    fn event_attr<'a>(event: &'a psguard_model::Event, name: &AttrName) -> Option<&'a AttrValue> {
        event.attr(name.as_str())
    }

    fn candidate_keys(event: &psguard_model::Event) -> KeyQuery<Option<String>> {
        // The event's own topic bucket plus the wildcard (topicless)
        // bucket.
        KeyQuery::Direct(vec![Some(event.topic().to_owned()), None])
    }

    fn covering_candidate_keys(&self) -> Vec<Option<String>> {
        match self.topic() {
            Some(t) => vec![Some(t.to_owned()), None],
            None => vec![None],
        }
    }
}

/// Identifier of one registration inside a [`MatchIndex`].
pub type EntryId = u32;

/// Work performed by the last [`MatchIndex::query`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchStats {
    /// Bucket-key tests: hash hits for direct keys, PRF verifications
    /// for probed (secure) keys.
    pub key_probes: u64,
    /// Distinct predicates actually evaluated.
    pub predicate_evals: u64,
    /// Probe queries answered from the nonce memo (no PRF work).
    pub memo_hits: u64,
}

impl MatchStats {
    /// Total filter-evaluation-equivalents, the unit the performance
    /// model prices with `broker_match_us`.
    pub fn work(&self) -> u64 {
        self.key_probes + self.predicate_evals
    }

    /// Adds another query's counters into this one (per-batch and
    /// cross-shard aggregation).
    pub fn accumulate(&mut self, other: MatchStats) {
        self.key_probes += other.key_probes;
        self.predicate_evals += other.predicate_evals;
        self.memo_hits += other.memo_hits;
    }
}

// ---------------------------------------------------------------------
// FxHash: a dependency-free multiply-xor hasher for the hot maps.
// ---------------------------------------------------------------------

/// The FxHash multiplier (as used by Firefox/rustc).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A dependency-free FxHash-style hasher: a rotate-xor-multiply over
/// 64-bit words, several times faster than SipHash on the short keys
/// the index hashes (interned tokens, topic strings, event nonces).
/// No hash-flood resistance — acceptable because every hashed value is
/// internal (keys are interned at subscribe time under quota, nonces
/// feed a bounded memo), never an attacker-chosen path into an
/// unbounded table.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[..8]);
            self.add(u64::from_le_bytes(w));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            // Zero-pad the tail and fold in its length so "ab" and
            // "ab\0" land differently.
            let mut w = [0u8; 8];
            w[..bytes.len()].copy_from_slice(bytes);
            self.add(u64::from_le_bytes(w));
            self.add(bytes.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`BuildHasher`] for [`FxHasher`]; usable as the `S` parameter of the
/// std hash containers.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

pub(crate) type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub(crate) type FxHashSet<T> = HashSet<T, FxBuildHasher>;

// ---------------------------------------------------------------------
// Chunked entry-id lists in one shared arena.
// ---------------------------------------------------------------------

/// Sentinel chunk id: "no chunk".
const NIL: u32 = u32::MAX;

/// Ids per chunk: 14 × 4 B of payload + len + next = one 64-byte node.
const CHUNK_LEN: usize = 14;

/// One cache-line node of a chunked entry-id list.
#[derive(Debug, Clone)]
struct EntryChunk {
    ids: [EntryId; CHUNK_LEN],
    len: u32,
    next: u32,
}

impl EntryChunk {
    fn empty() -> Self {
        EntryChunk {
            ids: [0; CHUNK_LEN],
            len: 0,
            next: NIL,
        }
    }
}

/// Handle to one chunked list: head/tail chunk ids plus the element
/// count. `Copy`, so callers can lift it out of a containing struct,
/// mutate it against the arena, and store it back without aliasing the
/// arena borrow.
#[derive(Debug, Clone, Copy)]
struct ChunkList {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for ChunkList {
    fn default() -> Self {
        ChunkList {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

/// The shared chunk arena: every entry-id list in the index (per-bucket
/// rosters, unconstrained sets, per-predicate entry lists) draws its
/// 64-byte nodes from here, and freed nodes are recycled across
/// subscription churn via `free`.
#[derive(Debug, Clone, Default)]
struct ChunkArena {
    chunks: Vec<EntryChunk>,
    free: Vec<u32>,
}

impl ChunkArena {
    fn alloc(&mut self) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.chunks[i as usize] = EntryChunk::empty();
                i
            }
            None => {
                self.chunks.push(EntryChunk::empty());
                (self.chunks.len() - 1) as u32
            }
        }
    }

    /// Appends `id` to `list`, linking a fresh chunk when the tail is
    /// full.
    fn push(&mut self, list: &mut ChunkList, id: EntryId) {
        if list.tail != NIL {
            let t = &mut self.chunks[list.tail as usize];
            if (t.len as usize) < CHUNK_LEN {
                t.ids[t.len as usize] = id;
                t.len += 1;
                list.len += 1;
                return;
            }
        }
        let nid = self.alloc();
        {
            let ch = &mut self.chunks[nid as usize];
            ch.ids[0] = id;
            ch.len = 1;
        }
        if list.tail == NIL {
            list.head = nid;
        } else {
            self.chunks[list.tail as usize].next = nid;
        }
        list.tail = nid;
        list.len += 1;
    }

    /// Removes one occurrence of `id` (swap-remove with the list's last
    /// element; order is not preserved). Returns whether it was found.
    fn remove(&mut self, list: &mut ChunkList, id: EntryId) -> bool {
        let mut cur = list.head;
        let mut prev_of_tail = NIL;
        let mut found: Option<(u32, usize)> = None;
        while cur != NIL {
            let ch = &self.chunks[cur as usize];
            if found.is_none() {
                if let Some(slot) = ch.ids[..ch.len as usize].iter().position(|&x| x == id) {
                    found = Some((cur, slot));
                }
            }
            if ch.next == list.tail {
                prev_of_tail = cur;
            }
            cur = ch.next;
        }
        let Some((cid, slot)) = found else {
            return false;
        };
        let tail = list.tail;
        let (last, last_slot) = {
            let t = &mut self.chunks[tail as usize];
            t.len -= 1;
            (t.ids[t.len as usize], t.len as usize)
        };
        if !(cid == tail && slot == last_slot) {
            self.chunks[cid as usize].ids[slot] = last;
        }
        if self.chunks[tail as usize].len == 0 {
            self.free.push(tail);
            if tail == list.head {
                list.head = NIL;
                list.tail = NIL;
            } else {
                self.chunks[prev_of_tail as usize].next = NIL;
                list.tail = prev_of_tail;
            }
        }
        list.len -= 1;
        true
    }

    /// Calls `f` for every id in `list`.
    #[inline]
    fn for_each<G: FnMut(EntryId)>(&self, list: ChunkList, mut f: G) {
        let mut cur = list.head;
        while cur != NIL {
            let ch = &self.chunks[cur as usize];
            for &id in &ch.ids[..ch.len as usize] {
                f(id);
            }
            cur = ch.next;
        }
    }

    /// Whether `f` holds for any id in `list` (early exit).
    fn any<G: FnMut(EntryId) -> bool>(&self, list: ChunkList, mut f: G) -> bool {
        let mut cur = list.head;
        while cur != NIL {
            let ch = &self.chunks[cur as usize];
            if ch.ids[..ch.len as usize].iter().any(|&id| f(id)) {
                return true;
            }
            cur = ch.next;
        }
        false
    }
}

// ---------------------------------------------------------------------
// Contiguous sorted-boundary arena.
// ---------------------------------------------------------------------

/// Smallest boundary-range capacity; size classes are
/// `BOUNDS_MIN_CAP << class`.
const BOUNDS_MIN_CAP: u32 = 4;

/// One attribute's slice of the boundary arena: `len` live pairs inside
/// a `cap`-sized allocation at `start`. `cap == 0` means no allocation.
#[derive(Debug, Clone, Copy, Default)]
struct BoundsRange {
    start: u32,
    len: u32,
    cap: u32,
}

/// All sorted numeric boundaries in the index, laid out as two parallel
/// arrays (`lo`, `pid`) so the query-side prefix scan is a
/// `partition_point` over a dense `i64` slice. Ranges are allocated in
/// power-of-two size classes with per-class free lists, so churn reuses
/// storage instead of fragmenting it.
#[derive(Debug, Clone, Default)]
struct BoundsArena {
    lo: Vec<i64>,
    pid: Vec<u32>,
    /// `free[class]` holds start offsets of released ranges of capacity
    /// `BOUNDS_MIN_CAP << class`.
    free: Vec<Vec<u32>>,
}

impl BoundsArena {
    fn class_of(cap: u32) -> usize {
        debug_assert!(cap.is_power_of_two() && cap >= BOUNDS_MIN_CAP);
        (cap / BOUNDS_MIN_CAP).trailing_zeros() as usize
    }

    fn alloc(&mut self, cap: u32) -> u32 {
        let class = Self::class_of(cap);
        if self.free.len() <= class {
            self.free.resize_with(class + 1, Vec::new);
        }
        if let Some(start) = self.free[class].pop() {
            return start;
        }
        let start = self.lo.len() as u32;
        self.lo.resize(self.lo.len() + cap as usize, 0);
        self.pid.resize(self.pid.len() + cap as usize, 0);
        start
    }

    fn release(&mut self, r: BoundsRange) {
        if r.cap == 0 {
            return;
        }
        let class = Self::class_of(r.cap);
        if self.free.len() <= class {
            self.free.resize_with(class + 1, Vec::new);
        }
        self.free[class].push(r.start);
    }

    /// Inserts `(lo, pid)` keeping the range sorted by `lo`, migrating
    /// to the next size class when full.
    fn insert_sorted(&mut self, r: &mut BoundsRange, lo: i64, pid: u32) {
        if r.len == r.cap {
            let new_cap = if r.cap == 0 {
                BOUNDS_MIN_CAP
            } else {
                r.cap * 2
            };
            let new_start = self.alloc(new_cap);
            let (os, ns) = (r.start as usize, new_start as usize);
            let n = r.len as usize;
            self.lo.copy_within(os..os + n, ns);
            self.pid.copy_within(os..os + n, ns);
            self.release(*r);
            r.start = new_start;
            r.cap = new_cap;
        }
        let s = r.start as usize;
        let n = r.len as usize;
        let at = self.lo[s..s + n].partition_point(|&l| l < lo);
        self.lo.copy_within(s + at..s + n, s + at + 1);
        self.pid.copy_within(s + at..s + n, s + at + 1);
        self.lo[s + at] = lo;
        self.pid[s + at] = pid;
        r.len += 1;
    }

    /// Removes `pid` from the range, preserving sort order; releases
    /// the allocation when the range empties.
    fn remove_pid(&mut self, r: &mut BoundsRange, pid: u32) {
        let s = r.start as usize;
        let n = r.len as usize;
        let Some(i) = self.pid[s..s + n].iter().position(|&p| p == pid) else {
            return;
        };
        self.lo.copy_within(s + i + 1..s + n, s + i);
        self.pid.copy_within(s + i + 1..s + n, s + i);
        r.len -= 1;
        if r.len == 0 {
            self.release(*r);
            *r = BoundsRange::default();
        }
    }

    /// The live `(lo, pid)` slices of a range.
    #[inline]
    fn slices(&self, r: BoundsRange) -> (&[i64], &[u32]) {
        let s = r.start as usize;
        let n = r.len as usize;
        (&self.lo[s..s + n], &self.pid[s..s + n])
    }
}

// ---------------------------------------------------------------------
// Predicate arena.
// ---------------------------------------------------------------------

/// One interned predicate: its constraint plus the chunked list of
/// entries that require it (with multiplicity — a filter repeating a
/// constraint appears repeatedly, keeping its counter target
/// consistent).
#[derive(Debug, Clone)]
struct PredSlot {
    constraint: Constraint,
    entries: ChunkList,
}

/// The index-global predicate/entry-list storage: interned predicates
/// addressed by `u32` pid across all buckets, the shared chunk arena
/// their entry lists live in, and the boundary arena. Grouped in one
/// struct so bucket mutators can borrow it alongside `&mut Bucket`
/// (disjoint-field split off [`MatchIndex`]).
#[derive(Debug, Clone, Default)]
struct PredStore {
    preds: Vec<PredSlot>,
    free_preds: Vec<u32>,
    chunks: ChunkArena,
    bounds: BoundsArena,
}

impl PredStore {
    fn alloc_pred(&mut self, c: &Constraint) -> u32 {
        let slot = PredSlot {
            constraint: c.clone(),
            entries: ChunkList::default(),
        };
        match self.free_preds.pop() {
            Some(p) => {
                self.preds[p as usize] = slot;
                p
            }
            None => {
                self.preds.push(slot);
                (self.preds.len() - 1) as u32
            }
        }
    }
}

// ---------------------------------------------------------------------
// Buckets.
// ---------------------------------------------------------------------

/// Per-attribute predicate layout inside one bucket.
#[derive(Debug, Clone, Default)]
struct AttrSlot {
    /// Numeric predicates: a sorted `(lower bound, pid)` range in the
    /// shared [`BoundsArena`] (`i64::MIN` for unbounded-below). A query
    /// for value `v` inspects only the prefix with `lo <= v`; inspected
    /// predicates are re-checked with the real operator, so the sort is
    /// purely a sound pruning structure.
    bounds: BoundsRange,
    /// Non-numeric equality predicates, hashed by expected value.
    eq: FxHashMap<AttrValue, Vec<u32>>,
    /// Everything else (prefix / suffix / category), evaluated one by
    /// one — still at most once per distinct predicate.
    other: Vec<u32>,
}

impl AttrSlot {
    fn is_empty(&self) -> bool {
        self.bounds.len == 0 && self.eq.is_empty() && self.other.is_empty()
    }
}

/// All filters sharing one routing key. Everything variable-sized hangs
/// off the shared arenas; the bucket itself only stores list handles
/// and the interning map into the global pid space.
#[derive(Debug, Clone)]
struct Bucket<K> {
    key: K,
    /// All live entries (kept strictly in sync by insert/remove); also
    /// the bucket-emptiness test via `entries.len`.
    entries: ChunkList,
    /// Live entries with zero constraints: they match any event that
    /// reaches this bucket.
    unconstrained: ChunkList,
    attrs: Vec<(AttrName, AttrSlot)>,
    /// Interned constraint → global pid in the [`PredStore`].
    pred_of: FxHashMap<Constraint, u32>,
}

impl<K> Bucket<K> {
    fn new(key: K) -> Self {
        Bucket {
            key,
            entries: ChunkList::default(),
            unconstrained: ChunkList::default(),
            attrs: Vec::new(),
            pred_of: FxHashMap::default(),
        }
    }

    fn attr_slot_mut(&mut self, name: &AttrName) -> &mut AttrSlot {
        let pos = match self.attrs.iter().position(|(n, _)| n == name) {
            Some(pos) => pos,
            None => {
                self.attrs.push((name.clone(), AttrSlot::default()));
                self.attrs.len() - 1
            }
        };
        &mut self.attrs[pos].1
    }

    fn add_entry(&mut self, store: &mut PredStore, id: EntryId, constraints: &[Constraint]) {
        let mut roster = self.entries;
        store.chunks.push(&mut roster, id);
        self.entries = roster;
        if constraints.is_empty() {
            let mut un = self.unconstrained;
            store.chunks.push(&mut un, id);
            self.unconstrained = un;
            return;
        }
        for c in constraints {
            let pid = match self.pred_of.get(c) {
                Some(&p) => p,
                None => self.intern_pred(store, c),
            };
            let mut list = store.preds[pid as usize].entries;
            store.chunks.push(&mut list, id);
            store.preds[pid as usize].entries = list;
        }
    }

    fn intern_pred(&mut self, store: &mut PredStore, c: &Constraint) -> u32 {
        let pid = store.alloc_pred(c);
        self.pred_of.insert(c.clone(), pid);
        let slot = self.attr_slot_mut(c.name());
        if let Some(iv) = c.interval() {
            let lo = iv.lo().unwrap_or(i64::MIN);
            store.bounds.insert_sorted(&mut slot.bounds, lo, pid);
        } else if let Op::Eq(v) = c.op() {
            slot.eq.entry(v.clone()).or_default().push(pid);
        } else {
            slot.other.push(pid);
        }
        pid
    }

    fn remove_entry(&mut self, store: &mut PredStore, id: EntryId, constraints: &[Constraint]) {
        let mut roster = self.entries;
        store.chunks.remove(&mut roster, id);
        self.entries = roster;
        if constraints.is_empty() {
            let mut un = self.unconstrained;
            store.chunks.remove(&mut un, id);
            self.unconstrained = un;
            return;
        }
        for c in constraints {
            let Some(&pid) = self.pred_of.get(c) else {
                continue;
            };
            let mut list = store.preds[pid as usize].entries;
            store.chunks.remove(&mut list, id);
            store.preds[pid as usize].entries = list;
            if list.len == 0 {
                self.drop_pred(store, pid, c);
            }
        }
    }

    fn drop_pred(&mut self, store: &mut PredStore, pid: u32, c: &Constraint) {
        self.pred_of.remove(c);
        store.free_preds.push(pid);
        let Some(pos) = self.attrs.iter().position(|(n, _)| n == c.name()) else {
            return;
        };
        let slot = &mut self.attrs[pos].1;
        if c.interval().is_some() {
            store.bounds.remove_pid(&mut slot.bounds, pid);
        } else if let Op::Eq(v) = c.op() {
            if let Some(pids) = slot.eq.get_mut(v) {
                pids.retain(|&p| p != pid);
                if pids.is_empty() {
                    slot.eq.remove(v);
                }
            }
        } else {
            slot.other.retain(|&p| p != pid);
        }
        if slot.is_empty() {
            self.attrs.swap_remove(pos);
        }
    }
}

// ---------------------------------------------------------------------
// Entries: hot/cold split.
// ---------------------------------------------------------------------

/// The per-entry state the counting pass touches: one 32-byte record,
/// so a counter bump costs one cache line. `count`/`stamp` are the
/// generation-stamped counter (no per-query clearing); `seq`/`peer`
/// ride along so a completed match emits its `(seq, peer)` pair without
/// a second lookup.
#[derive(Debug, Clone, Copy)]
struct HotEntry {
    seq: u64,
    peer: Peer,
    required: u32,
    count: u32,
    stamp: u32,
}

/// The per-entry state only insert/remove/covering scans need; queries
/// never read it.
#[derive(Debug, Clone)]
struct ColdEntry<F> {
    filter: F,
    bucket: u32,
    live: bool,
}

/// Probe-memo capacity: structural mutations clear the memo anyway, so
/// on overflow the whole memo (map + slab) is dropped at once — it is a
/// pure cache and rebuilding it costs one probe sweep per nonce.
const PROBE_MEMO_CAP: usize = 1024;

/// The counting-based subscription index. See the module docs for the
/// algorithm and data layout; [`crate::SubscriptionTable`] owns one and
/// keeps it coherent across insert / remove / covering checks.
#[derive(Debug, Clone)]
pub struct MatchIndex<F: IndexableFilter> {
    keys: FxHashMap<F::Key, u32>,
    buckets: Vec<Bucket<F::Key>>,
    store: PredStore,
    /// Hot per-entry records, indexed by [`EntryId`].
    hot: Vec<HotEntry>,
    /// Cold per-entry records, parallel to `hot`.
    cold: Vec<ColdEntry<F>>,
    free_entries: Vec<EntryId>,
    live: usize,
    next_seq: u64,
    /// Query generation for the stamped counters. `u32` so the stamp
    /// fits the hot record; wraparound resets all stamps (one linear
    /// sweep every 2^32 queries).
    generation: u32,
    /// Probe memo: event nonce → `(start, len)` range of bucket ids in
    /// `memo_slab`.
    memo: FxHashMap<u128, (u32, u32)>,
    memo_slab: Vec<u32>,
    last_stats: MatchStats,
    /// Whether buckets carry prepared probe contexts
    /// ([`IndexableFilter::probe_context`]).
    prepared: bool,
    /// Per-bucket prepared probe context (parallel to `buckets`); `None`
    /// when unprepared or the family has no context.
    probe_ctxs: Vec<Option<F::ProbeContext>>,
    /// `(seq, peer)` pairs of the query in flight, reused across
    /// queries. Carrying the pair (not the entry id) means the final
    /// sort-by-seq and the dedup pass never touch the entry arrays.
    matched_scratch: Vec<(u64, Peer)>,
    /// Candidate bucket ids of the query in flight, reused across queries.
    cand_scratch: Vec<u32>,
    /// Peer-dedup set, reused across queries.
    seen_scratch: FxHashSet<Peer>,
}

impl<F: IndexableFilter> Default for MatchIndex<F> {
    fn default() -> Self {
        MatchIndex {
            keys: FxHashMap::default(),
            buckets: Vec::new(),
            store: PredStore::default(),
            hot: Vec::new(),
            cold: Vec::new(),
            free_entries: Vec::new(),
            live: 0,
            next_seq: 0,
            generation: 0,
            memo: FxHashMap::default(),
            memo_slab: Vec::new(),
            last_stats: MatchStats::default(),
            prepared: false,
            probe_ctxs: Vec::new(),
            matched_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            seen_scratch: FxHashSet::default(),
        }
    }
}

impl<F: IndexableFilter> MatchIndex<F> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty index that builds a reusable probe context per bucket
    /// ([`IndexableFilter::probe_context`]), amortizing keyed-PRF setup
    /// across every probe of that key. Used by the sharded pipeline; the
    /// default serial index keeps the one-shot probe path.
    pub fn with_prepared_probes() -> Self {
        MatchIndex {
            prepared: true,
            ..Self::default()
        }
    }

    /// Live registrations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no registration is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Distinct routing keys ever interned (buckets are reused, never
    /// dropped, so this also bounds probe work).
    pub fn distinct_keys(&self) -> usize {
        self.keys.len()
    }

    /// Work performed by the most recent [`query`](Self::query).
    pub fn last_stats(&self) -> MatchStats {
        self.last_stats
    }

    /// Pre-sizes the entry arenas for `additional` further
    /// registrations. The sharded pipeline calls this once per shard at
    /// construction so the hot counter array is laid out contiguously
    /// up front and a bulk subscribe never reallocates it.
    pub fn reserve(&mut self, additional: usize) {
        self.hot.reserve(additional);
        self.cold.reserve(additional);
    }

    /// Registers `filter` for `peer`; returns the entry id to pass to
    /// [`remove`](Self::remove).
    pub fn insert(&mut self, peer: Peer, filter: F) -> EntryId {
        let seq = self.next_seq;
        self.insert_with_seq(peer, filter, seq)
    }

    /// Registers `filter` for `peer` under a caller-assigned sequence
    /// number. Queries order matches by `seq`, so a caller that splits
    /// one logical table across several indexes (the sharded pipeline)
    /// passes its global registration counter here to keep the merged
    /// order identical to a single index. Sequence numbers must be unique
    /// across live entries; `next_seq` advances past `seq` so mixing with
    /// [`insert`](Self::insert) stays safe.
    pub fn insert_with_seq(&mut self, peer: Peer, filter: F, seq: u64) -> EntryId {
        self.invalidate_memo();
        let key = filter.routing_key();
        let bid = match self.keys.get(&key) {
            Some(&b) => b,
            None => {
                let b = self.buckets.len() as u32;
                self.probe_ctxs.push(if self.prepared {
                    F::probe_context(&key)
                } else {
                    None
                });
                self.buckets.push(Bucket::new(key.clone()));
                self.keys.insert(key, b);
                b
            }
        };
        let required = filter.indexed_constraints().len() as u32;
        self.next_seq = self.next_seq.max(seq.saturating_add(1));
        let id = match self.free_entries.pop() {
            Some(id) => id,
            None => self.hot.len() as EntryId,
        };
        {
            // Register constraints straight off the borrowed filter —
            // no constraint-list copy on the insert path.
            let MatchIndex { buckets, store, .. } = self;
            buckets[bid as usize].add_entry(store, id, filter.indexed_constraints());
        }
        let h = HotEntry {
            seq,
            peer,
            required,
            count: 0,
            stamp: 0,
        };
        let c = ColdEntry {
            filter,
            bucket: bid,
            live: true,
        };
        if (id as usize) == self.hot.len() {
            self.hot.push(h);
            self.cold.push(c);
        } else {
            self.hot[id as usize] = h;
            self.cold[id as usize] = c;
        }
        self.live += 1;
        id
    }

    /// Unregisters an entry previously returned by
    /// [`insert`](Self::insert).
    pub fn remove(&mut self, id: EntryId) {
        let idx = id as usize;
        assert!(self.cold[idx].live, "double remove of entry {id}");
        self.invalidate_memo();
        let bid = self.cold[idx].bucket;
        {
            let MatchIndex {
                buckets,
                store,
                cold,
                ..
            } = self;
            let constraints = cold[idx].filter.indexed_constraints();
            buckets[bid as usize].remove_entry(store, id, constraints);
        }
        self.cold[idx].live = false;
        self.free_entries.push(id);
        self.live -= 1;
    }

    /// Whether an identical `(peer, filter)` registration is live. Only
    /// the filter's own bucket is scanned.
    pub fn contains(&self, peer: Peer, filter: &F) -> bool {
        let Some(&bid) = self.keys.get(&filter.routing_key()) else {
            return false;
        };
        self.store
            .chunks
            .any(self.buckets[bid as usize].entries, |id| {
                let idx = id as usize;
                self.hot[idx].peer == peer && self.cold[idx].filter == *filter
            })
    }

    /// Whether any live filter covers `filter`. Only buckets named by
    /// [`IndexableFilter::covering_candidate_keys`] are scanned.
    pub fn covered_by_any(&self, filter: &F) -> bool {
        filter.covering_candidate_keys().iter().any(|key| {
            self.keys.get(key).is_some_and(|&bid| {
                self.store
                    .chunks
                    .any(self.buckets[bid as usize].entries, |id| {
                        self.cold[id as usize].filter.covers(filter)
                    })
            })
        })
    }

    /// The distinct peers whose filters match `event`, in first-seen
    /// registration order — exactly what the linear scan produced.
    pub fn query(&mut self, event: &F::Event) -> Vec<Peer> {
        let mut peers = Vec::new();
        self.query_into(event, &mut peers);
        peers
    }

    /// [`query`](Self::query) into a caller-provided buffer: `peers` is
    /// cleared and filled with the distinct matching peers in first-seen
    /// registration order. All per-query scratch (candidate lists,
    /// counters, dedup set) is reused across calls, so a steady-state
    /// query allocates nothing.
    pub fn query_into(&mut self, event: &F::Event, peers: &mut Vec<Peer>) {
        peers.clear();
        self.run_match(event);
        let mut seen = std::mem::take(&mut self.seen_scratch);
        seen.clear();
        for &(_, peer) in &self.matched_scratch {
            if seen.insert(peer) {
                peers.push(peer);
            }
        }
        self.seen_scratch = seen;
    }

    /// Raw matches for `event` as `(seq, peer)` pairs sorted by
    /// registration sequence, **without** peer dedup. `out` is cleared
    /// first. This is the shard-side half of the pipeline's merge: each
    /// shard reports its matches with global sequence numbers
    /// ([`insert_with_seq`](Self::insert_with_seq)) and the merge dedups
    /// peers across shards in sequence order.
    pub fn query_matches_into(&mut self, event: &F::Event, out: &mut Vec<(u64, Peer)>) {
        out.clear();
        self.run_match(event);
        out.extend_from_slice(&self.matched_scratch);
    }

    /// Test hook: forces the query generation so the u32 stamp
    /// wraparound path is reachable without 2^32 queries.
    #[doc(hidden)]
    pub fn set_generation_for_tests(&mut self, generation: u32) {
        self.generation = generation;
    }

    /// The shared matching pass: fills `matched_scratch` with matched
    /// `(seq, peer)` pairs sorted by registration sequence and records
    /// the stats.
    fn run_match(&mut self, event: &F::Event) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wraparound: without this sweep an entry last bumped
            // 2^32 queries ago would alias the fresh generation and keep
            // its stale counter.
            for h in &mut self.hot {
                h.stamp = 0;
            }
            self.generation = 1;
        }
        let mut stats = MatchStats::default();
        let mut matched = std::mem::take(&mut self.matched_scratch);
        let mut cands = std::mem::take(&mut self.cand_scratch);
        matched.clear();
        cands.clear();

        match F::candidate_keys(event) {
            KeyQuery::Direct(keys) => {
                for k in &keys {
                    let Some(&b) = self.keys.get(k) else {
                        continue;
                    };
                    if self.buckets[b as usize].entries.len > 0 {
                        stats.key_probes += 1;
                        cands.push(b);
                    }
                }
            }
            KeyQuery::Probe => self.probe_buckets(event, &mut stats, &mut cands),
        }

        let generation = self.generation;
        {
            let MatchIndex {
                buckets,
                store,
                hot,
                ..
            } = self;
            for &bid in &cands {
                match_bucket::<F>(
                    &buckets[bid as usize],
                    store,
                    hot,
                    generation,
                    event,
                    &mut stats,
                    &mut matched,
                );
            }
        }

        matched.sort_unstable_by_key(|&(seq, _)| seq);
        self.matched_scratch = matched;
        self.cand_scratch = cands;
        self.last_stats = stats;
    }

    /// Probe mode: one key test per live bucket, memoized per event
    /// nonce. Matching bucket ids are appended to `out`.
    fn probe_buckets(&mut self, event: &F::Event, stats: &mut MatchStats, out: &mut Vec<u32>) {
        let memo_key = F::probe_memo_key(event);
        if let Some(k) = memo_key {
            if let Some(&(s, n)) = self.memo.get(&k) {
                stats.memo_hits += 1;
                out.extend_from_slice(&self.memo_slab[s as usize..(s + n) as usize]);
                return;
            }
        }
        let start = out.len();
        for (bid, bucket) in self.buckets.iter().enumerate() {
            if bucket.entries.len == 0 {
                continue;
            }
            stats.key_probes += 1;
            let hit = match self.probe_ctxs.get(bid).and_then(Option::as_ref) {
                Some(ctx) => F::context_matches(ctx, event),
                None => F::key_matches(&bucket.key, event),
            };
            if hit {
                out.push(bid as u32);
            }
        }
        if let Some(k) = memo_key {
            if self.memo.len() >= PROBE_MEMO_CAP {
                // The memo is a pure cache: dropping it wholesale costs
                // one probe sweep per re-seen nonce and keeps the slab
                // bounded without FIFO bookkeeping.
                self.memo.clear();
                self.memo_slab.clear();
            }
            let s = self.memo_slab.len() as u32;
            self.memo_slab.extend_from_slice(&out[start..]);
            self.memo.insert(k, (s, (out.len() - start) as u32));
        }
    }

    /// Structural mutations invalidate memoized probe results (a new
    /// token bucket could match an already-memoized nonce).
    fn invalidate_memo(&mut self) {
        self.memo.clear();
        self.memo_slab.clear();
    }
}

/// The counting pass over one bucket. A free function (not a method) so
/// the caller can split-borrow: `bucket`/`store` shared, `hot` counters
/// mutable.
fn match_bucket<F: IndexableFilter>(
    bucket: &Bucket<F::Key>,
    store: &PredStore,
    hot: &mut [HotEntry],
    generation: u32,
    event: &F::Event,
    stats: &mut MatchStats,
    matched: &mut Vec<(u64, Peer)>,
) {
    store.chunks.for_each(bucket.unconstrained, |id| {
        let h = &hot[id as usize];
        matched.push((h.seq, h.peer));
    });

    let mut bump = |id: EntryId| {
        let h = &mut hot[id as usize];
        if h.stamp != generation {
            h.stamp = generation;
            h.count = 0;
        }
        h.count += 1;
        if h.count == h.required {
            matched.push((h.seq, h.peer));
        }
    };

    for (name, slot) in &bucket.attrs {
        let Some(value) = F::event_attr(event, name) else {
            continue;
        };
        match value {
            AttrValue::Int(v) => {
                // Prefix of predicates whose lower bound admits `v`;
                // the real operator re-check keeps exotic operators
                // (and `Lt(i64::MIN)`-style empty ranges) faithful.
                let (los, pids) = store.bounds.slices(slot.bounds);
                let end = los.partition_point(|&lo| lo <= *v);
                for &pid in &pids[..end] {
                    stats.predicate_evals += 1;
                    let pred = &store.preds[pid as usize];
                    if pred.constraint.matches_value(value) {
                        store.chunks.for_each(pred.entries, &mut bump);
                    }
                }
            }
            _ => {
                if let Some(pids) = slot.eq.get(value) {
                    for &pid in pids {
                        stats.predicate_evals += 1;
                        store
                            .chunks
                            .for_each(store.preds[pid as usize].entries, &mut bump);
                    }
                }
                for &pid in &slot.other {
                    stats.predicate_evals += 1;
                    let pred = &store.preds[pid as usize];
                    if pred.constraint.matches_value(value) {
                        store.chunks.for_each(pred.entries, &mut bump);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Event, Filter, IntRange};

    fn f(topic: &str, min: i64) -> Filter {
        Filter::for_topic(topic).with(Constraint::new("x", Op::Ge(min)))
    }

    fn e(topic: &str, x: i64) -> Event {
        Event::builder(topic).attr("x", x).build()
    }

    #[test]
    fn query_matches_by_topic_and_constraint() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert(Peer::Child(1), f("a", 10));
        idx.insert(Peer::Child(2), f("a", 50));
        idx.insert(Peer::Child(3), f("b", 0));
        assert_eq!(idx.query(&e("a", 20)), vec![Peer::Child(1)]);
        assert_eq!(idx.query(&e("a", 60)), vec![Peer::Child(1), Peer::Child(2)]);
        assert_eq!(idx.query(&e("b", 99)), vec![Peer::Child(3)]);
        assert!(idx.query(&e("c", 99)).is_empty());
    }

    #[test]
    fn wildcard_bucket_reaches_every_topic() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert(Peer::Parent, Filter::any());
        idx.insert(Peer::Child(1), f("a", 0));
        assert_eq!(idx.query(&e("zzz", 5)), vec![Peer::Parent]);
        assert_eq!(idx.query(&e("a", 5)), vec![Peer::Parent, Peer::Child(1)]);
    }

    #[test]
    fn work_counts_only_inspected_predicates() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        for (i, min) in [10i64, 20, 30, 40].into_iter().enumerate() {
            idx.insert(Peer::Child(i as u32), f("t", min));
        }
        for i in 0..64u32 {
            idx.insert(Peer::Child(100 + i), f("elsewhere", 0));
        }
        let peers = idx.query(&e("t", 25));
        assert_eq!(peers, vec![Peer::Child(0), Peer::Child(1)]);
        // One topic-bucket hit + the two predicates with lo <= 25; the
        // "elsewhere" bucket and the 30/40 bounds cost nothing.
        let stats = idx.last_stats();
        assert_eq!(stats.key_probes, 1);
        assert_eq!(stats.predicate_evals, 2);
    }

    #[test]
    fn duplicate_constraint_in_one_filter_still_matches() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        let dup = Filter::for_topic("t")
            .with(Constraint::new("x", Op::Ge(10)))
            .with(Constraint::new("x", Op::Ge(10)));
        idx.insert(Peer::Local(1), dup);
        assert_eq!(idx.query(&e("t", 15)), vec![Peer::Local(1)]);
        assert!(idx.query(&e("t", 5)).is_empty());
    }

    #[test]
    fn remove_keeps_index_coherent() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        let a = idx.insert(Peer::Child(1), f("t", 10));
        let _b = idx.insert(Peer::Child(2), f("t", 10));
        idx.remove(a);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.query(&e("t", 15)), vec![Peer::Child(2)]);
        assert!(idx.contains(Peer::Child(2), &f("t", 10)));
        assert!(!idx.contains(Peer::Child(1), &f("t", 10)));
        // Re-insert reuses the freed slot and still matches.
        let c = idx.insert(Peer::Child(3), f("t", 0));
        assert_eq!(c, a, "slab slot reused");
        assert_eq!(idx.query(&e("t", 15)), vec![Peer::Child(2), Peer::Child(3)]);
    }

    #[test]
    fn covering_scan_restricted_to_candidate_buckets() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert(Peer::Child(1), f("t", 10));
        idx.insert(Peer::Parent, Filter::any());
        assert!(idx.covered_by_any(&f("t", 20))); // same-topic bucket
        assert!(idx.covered_by_any(&f("other", 5))); // wildcard bucket
        let mut no_wild: MatchIndex<Filter> = MatchIndex::new();
        no_wild.insert(Peer::Child(1), f("t", 10));
        assert!(!no_wild.covered_by_any(&f("other", 5)));
    }

    #[test]
    fn caller_assigned_seq_controls_order() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert_with_seq(Peer::Child(2), f("t", 0), 7);
        idx.insert_with_seq(Peer::Child(1), f("t", 0), 3);
        assert_eq!(idx.query(&e("t", 5)), vec![Peer::Child(1), Peer::Child(2)]);
        // next_seq advanced past the largest assigned seq, so a plain
        // insert sorts after both.
        idx.insert(Peer::Child(9), f("t", 0));
        assert_eq!(
            idx.query(&e("t", 5)),
            vec![Peer::Child(1), Peer::Child(2), Peer::Child(9)]
        );
    }

    #[test]
    fn query_into_matches_query_and_reuses_buffer() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert(Peer::Child(1), f("a", 10));
        idx.insert(Peer::Child(2), f("a", 50));
        let mut buf = vec![Peer::Parent; 8]; // stale contents must vanish
        for x in [5i64, 20, 60] {
            let ev = e("a", x);
            idx.query_into(&ev, &mut buf);
            assert_eq!(buf, idx.query(&ev), "x={x}");
        }
    }

    #[test]
    fn query_matches_into_reports_global_seq_pairs() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert_with_seq(Peer::Child(1), f("t", 0), 4);
        idx.insert_with_seq(Peer::Child(1), f("t", 10), 9);
        idx.insert_with_seq(Peer::Child(2), f("t", 0), 6);
        let mut out = Vec::new();
        idx.query_matches_into(&e("t", 50), &mut out);
        // Sorted by seq, peers not deduped.
        assert_eq!(
            out,
            vec![
                (4, Peer::Child(1)),
                (6, Peer::Child(2)),
                (9, Peer::Child(1))
            ]
        );
    }

    #[test]
    fn mixed_families_and_ranges() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        let range = Filter::for_topic("t").with(Constraint::new(
            "x",
            Op::InRange(IntRange::new(10, 20).unwrap()),
        ));
        let eqs = Filter::for_topic("t").with(Constraint::new("sym", Op::Eq("GOOG".into())));
        let pre = Filter::for_topic("t").with(Constraint::new("sym", Op::StrPrefix("GO".into())));
        idx.insert(Peer::Child(1), range);
        idx.insert(Peer::Child(2), eqs);
        idx.insert(Peer::Child(3), pre);
        let ev = Event::builder("t")
            .attr("x", 15i64)
            .attr("sym", "GOOG")
            .build();
        assert_eq!(
            idx.query(&ev),
            vec![Peer::Child(1), Peer::Child(2), Peer::Child(3)]
        );
        let ev2 = Event::builder("t")
            .attr("x", 25i64)
            .attr("sym", "GOOD")
            .build();
        assert_eq!(idx.query(&ev2), vec![Peer::Child(3)]);
    }

    #[test]
    fn stamp_wraparound_resets_counters() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        // Two-constraint filter: a stale partial count (1 of 2) left
        // from before the wrap must not survive into the wrapped
        // generation and fake a match.
        let two = Filter::for_topic("t")
            .with(Constraint::new("x", Op::Ge(10)))
            .with(Constraint::new("y", Op::Ge(10)));
        idx.insert(Peer::Child(1), two);
        // Partial match: only `x` satisfied, counter parks at 1.
        let partial = Event::builder("t").attr("x", 50i64).build();
        assert!(idx.query(&partial).is_empty());
        // Jump the generation to the wrap point; the next query sweeps
        // stamps and restarts at generation 1 — which old stamps must
        // not alias.
        idx.set_generation_for_tests(u32::MAX);
        assert!(idx.query(&partial).is_empty(), "stale count must not leak");
        let full = Event::builder("t")
            .attr("x", 50i64)
            .attr("y", 50i64)
            .build();
        assert_eq!(idx.query(&full), vec![Peer::Child(1)]);
    }

    #[test]
    fn wraparound_spanning_churn_stays_correct() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        let mut ids = Vec::new();
        for i in 0..40u32 {
            ids.push(idx.insert(Peer::Child(i), f("t", (i as i64) * 10)));
        }
        idx.set_generation_for_tests(u32::MAX - 3);
        for round in 0..8i64 {
            let got = idx.query(&e("t", 195 + round - round)); // x = 195
            assert_eq!(got.len(), 20, "round {round}");
        }
        // Remove half across the wrap, re-query.
        for id in ids.drain(..20) {
            idx.remove(id);
        }
        assert_eq!(idx.query(&e("t", 195)).len(), 0);
        assert_eq!(idx.query(&e("t", 395)).len(), 20);
    }

    #[test]
    fn boundary_arena_grows_and_reuses_ranges() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        // 64 distinct bounds on one attribute force several size-class
        // migrations of the bucket's boundary range.
        let mut ids = Vec::new();
        for i in 0..64i64 {
            ids.push(idx.insert(Peer::Child(i as u32), f("t", i)));
        }
        assert_eq!(idx.query(&e("t", 31)).len(), 32);
        // Remove all; the range must release cleanly.
        for id in ids.drain(..) {
            idx.remove(id);
        }
        assert!(idx.query(&e("t", 31)).is_empty());
        // Refill: released ranges are reused, matching still exact.
        for i in 0..64i64 {
            ids.push(idx.insert(Peer::Child(i as u32), f("t", i)));
        }
        assert_eq!(idx.query(&e("t", 31)).len(), 32);
        assert_eq!(idx.query(&e("t", 0)).len(), 1);
    }

    #[test]
    fn chunked_entry_lists_survive_heavy_shared_predicate_churn() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        // 100 entries share one interned predicate → a 8-chunk list;
        // removal from the middle exercises swap-remove across chunks
        // and tail reclamation.
        let mut ids = Vec::new();
        for i in 0..100u32 {
            ids.push(idx.insert(Peer::Child(i), f("t", 10)));
        }
        assert_eq!(idx.query(&e("t", 15)).len(), 100);
        for id in ids.iter().skip(1).step_by(2) {
            idx.remove(*id);
        }
        assert_eq!(idx.query(&e("t", 15)).len(), 50);
        for id in ids.iter().skip(1).step_by(2) {
            idx.insert(Peer::Child(*id + 1000), f("t", 10));
        }
        assert_eq!(idx.query(&e("t", 15)).len(), 100);
    }

    #[test]
    fn fx_hasher_spreads_and_is_deterministic() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        let mut s1 = FxHasher::default();
        s1.write(b"topic-a");
        let mut s2 = FxHasher::default();
        s2.write(b"topic-b");
        assert_ne!(s1.finish(), s2.finish());
    }
}
