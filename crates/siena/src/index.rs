//! The matching fast path: a keyed, counting-based subscription index.
//!
//! [`SubscriptionTable`](crate::SubscriptionTable) historically matched an
//! event by evaluating every registered filter — `O(n)` filter
//! evaluations per event, which dominates broker cost at the paper's
//! scale targets. [`MatchIndex`] replaces that scan with the classic
//! *counting algorithm* (Yan & Garcia-Molina) specialized to this
//! codebase's two filter families:
//!
//! * **Keyed partitioning.** Every filter contributes a *routing key*
//!   (its topic for plain Siena filters, its Song–Wagner–Perrig
//!   subscription token for PSGuard's [`SecureFilter`]s). Filters with
//!   the same key share one bucket, so the per-event work is bounded by
//!   the buckets an event can possibly touch, not the table size. For
//!   secure filters this doubles as a **token interning table**: a
//!   thousand subscribers of one topic store a single bucket key, and the
//!   broker performs **one** PRF verification per *distinct* token per
//!   event instead of one per subscription.
//! * **Distinct-predicate evaluation.** Within a bucket, syntactically
//!   identical constraints are interned once. Numeric constraints are
//!   laid out per attribute in a boundary list sorted by lower bound, so
//!   a query inspects only the prefix whose lower bounds do not exceed
//!   the event's value; equality constraints on strings/categories hash
//!   directly to their predicate. Each satisfied predicate bumps a
//!   per-filter counter; a filter matches exactly when its counter
//!   reaches its constraint count. An event that lacks a constrained
//!   attribute costs nothing for that attribute.
//! * **Per-event probe memo.** Probe-keyed (secure) events carry a fresh
//!   nonce; a bounded memo keyed on that nonce caches which token
//!   buckets an event's tag matched, so re-publishing the same envelope
//!   (workload cycles, fan-in from several children) skips the PRF
//!   entirely.
//!
//! The index reports its actual work per query ([`MatchStats`]), which
//! the broker and the overlay engine use as the matching-cost input to
//! the performance model — replacing the old `table.len()` proxy.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

use psguard_model::{AttrName, AttrValue, Constraint, Op};

use crate::semantics::FilterSemantics;
use crate::table::Peer;

/// How the index locates candidate buckets for an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyQuery<K> {
    /// The event names its candidate keys directly (hash lookups): plain
    /// filters, where an event's topic is visible.
    Direct(Vec<K>),
    /// Candidate keys cannot be read off the event; every live bucket
    /// key must be probed with [`IndexableFilter::key_matches`]: secure
    /// filters, where only a PRF test links a tag to a token.
    Probe,
}

/// A filter family the [`MatchIndex`] can decompose: a routing key plus
/// a conjunction of attribute constraints.
///
/// Implementations must satisfy, for every filter `f` and event `e`:
/// `f.matches(e)` ⇔ *the event reaches `f`'s bucket* (per
/// [`candidate_keys`](Self::candidate_keys) /
/// [`key_matches`](Self::key_matches)) *and every constraint in
/// [`indexed_constraints`](Self::indexed_constraints) holds on the
/// attributes exposed by [`event_attr`](Self::event_attr)*. The
/// index-vs-linear property tests in `tests/` pin this equivalence.
pub trait IndexableFilter: FilterSemantics + Hash {
    /// The bucket key: topic for plain filters, subscription token for
    /// secure ones.
    type Key: Clone + Eq + Hash + std::fmt::Debug + Send + 'static;

    /// This filter's routing key.
    fn routing_key(&self) -> Self::Key;

    /// The attribute constraints the index evaluates (everything except
    /// what the key already encodes).
    fn indexed_constraints(&self) -> &[Constraint];

    /// Reads a routable attribute off the event.
    fn event_attr<'a>(event: &'a Self::Event, name: &AttrName) -> Option<&'a AttrValue>;

    /// The buckets this event could match.
    fn candidate_keys(event: &Self::Event) -> KeyQuery<Self::Key>;

    /// Probe-mode test: does the event's tag match this bucket key? Only
    /// called when [`candidate_keys`](Self::candidate_keys) returns
    /// [`KeyQuery::Probe`]; the default (for direct-keyed filters) is
    /// never invoked.
    fn key_matches(_key: &Self::Key, _event: &Self::Event) -> bool {
        false
    }

    /// Reusable per-key probe state, e.g. a keyed PRF context with its
    /// pad states precomputed ([`psguard_crypto::PrfContext`] for secure
    /// filters). `()` for direct-keyed families that never probe.
    type ProbeContext: Clone + Send + std::fmt::Debug + 'static;

    /// Builds the reusable probe context for `key`. `None` (the default)
    /// means the family has no prepared-probe fast path and
    /// [`key_matches`](Self::key_matches) is always used.
    ///
    /// Only consulted by indexes created with
    /// [`MatchIndex::with_prepared_probes`]: preparing a context keeps
    /// key-equivalent digest state resident for the bucket's lifetime,
    /// which is a deliberate memory/secrecy-vs-throughput trade the
    /// caller opts into (see DESIGN.md §13).
    fn probe_context(_key: &Self::Key) -> Option<Self::ProbeContext> {
        None
    }

    /// Probe-mode test via a prepared context. Must decide exactly like
    /// [`key_matches`](Self::key_matches) for the key the context was
    /// built from; the default (never called without a context) is
    /// unreachable in practice.
    fn context_matches(_ctx: &Self::ProbeContext, _event: &Self::Event) -> bool {
        false
    }

    /// A stable per-event identity for memoizing probe results (the
    /// nonce of a secure tag). `None` disables the memo.
    fn probe_memo_key(_event: &Self::Event) -> Option<u128> {
        None
    }

    /// Keys whose buckets could hold a filter covering `self`. Used to
    /// restrict covering scans on subscribe; must be sound (a covering
    /// filter always lives in one of these buckets).
    fn covering_candidate_keys(&self) -> Vec<Self::Key> {
        vec![self.routing_key()]
    }
}

impl IndexableFilter for psguard_model::Filter {
    type Key = Option<String>;
    type ProbeContext = ();

    fn routing_key(&self) -> Option<String> {
        self.topic().map(str::to_owned)
    }

    fn indexed_constraints(&self) -> &[Constraint] {
        self.constraints()
    }

    fn event_attr<'a>(event: &'a psguard_model::Event, name: &AttrName) -> Option<&'a AttrValue> {
        event.attr(name.as_str())
    }

    fn candidate_keys(event: &psguard_model::Event) -> KeyQuery<Option<String>> {
        // The event's own topic bucket plus the wildcard (topicless)
        // bucket.
        KeyQuery::Direct(vec![Some(event.topic().to_owned()), None])
    }

    fn covering_candidate_keys(&self) -> Vec<Option<String>> {
        match self.topic() {
            Some(t) => vec![Some(t.to_owned()), None],
            None => vec![None],
        }
    }
}

/// Identifier of one registration inside a [`MatchIndex`].
pub type EntryId = u32;

/// Work performed by the last [`MatchIndex::query`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchStats {
    /// Bucket-key tests: hash hits for direct keys, PRF verifications
    /// for probed (secure) keys.
    pub key_probes: u64,
    /// Distinct predicates actually evaluated.
    pub predicate_evals: u64,
    /// Probe queries answered from the nonce memo (no PRF work).
    pub memo_hits: u64,
}

impl MatchStats {
    /// Total filter-evaluation-equivalents, the unit the performance
    /// model prices with `broker_match_us`.
    pub fn work(&self) -> u64 {
        self.key_probes + self.predicate_evals
    }

    /// Adds another query's counters into this one (per-batch and
    /// cross-shard aggregation).
    pub fn accumulate(&mut self, other: MatchStats) {
        self.key_probes += other.key_probes;
        self.predicate_evals += other.predicate_evals;
        self.memo_hits += other.memo_hits;
    }
}

/// One interned predicate and the entries that require it.
#[derive(Debug, Clone)]
struct Pred {
    constraint: Constraint,
    /// Entries needing this predicate, with multiplicity (a filter that
    /// repeats a constraint appears repeatedly, keeping its counter
    /// target consistent).
    entries: Vec<EntryId>,
}

/// Per-attribute predicate layout inside one bucket.
#[derive(Debug, Clone, Default)]
struct AttrIndex {
    /// Numeric predicates as `(lower bound, pred)` sorted by lower
    /// bound (`i64::MIN` for unbounded-below). A query for value `v`
    /// inspects only the prefix with `lo <= v`; inspected predicates are
    /// re-checked with the real operator, so the sort is purely a sound
    /// pruning structure.
    numeric: Vec<(i64, u32)>,
    /// Non-numeric equality predicates, hashed by expected value.
    eq: HashMap<AttrValue, Vec<u32>>,
    /// Everything else (prefix / suffix / category), evaluated one by
    /// one — still at most once per distinct predicate.
    other: Vec<u32>,
}

impl AttrIndex {
    fn is_empty(&self) -> bool {
        self.numeric.is_empty() && self.eq.is_empty() && self.other.is_empty()
    }
}

/// All filters sharing one routing key.
#[derive(Debug, Clone)]
struct Bucket<K> {
    key: K,
    /// Live entries (kept strictly in sync by insert/remove).
    entry_ids: Vec<EntryId>,
    /// Live entries with zero constraints: they match any event that
    /// reaches this bucket.
    unconstrained: Vec<EntryId>,
    attrs: Vec<(AttrName, AttrIndex)>,
    preds: Vec<Pred>,
    free_preds: Vec<u32>,
    pred_of: HashMap<Constraint, u32>,
}

impl<K> Bucket<K> {
    fn new(key: K) -> Self {
        Bucket {
            key,
            entry_ids: Vec::new(),
            unconstrained: Vec::new(),
            attrs: Vec::new(),
            preds: Vec::new(),
            free_preds: Vec::new(),
            pred_of: HashMap::new(),
        }
    }

    fn attr_index_mut(&mut self, name: &AttrName) -> &mut AttrIndex {
        let pos = match self.attrs.iter().position(|(n, _)| n == name) {
            Some(pos) => pos,
            None => {
                self.attrs.push((name.clone(), AttrIndex::default()));
                self.attrs.len() - 1
            }
        };
        &mut self.attrs[pos].1
    }

    fn add_entry(&mut self, id: EntryId, constraints: &[Constraint]) {
        self.entry_ids.push(id);
        if constraints.is_empty() {
            self.unconstrained.push(id);
            return;
        }
        for c in constraints {
            let pid = match self.pred_of.get(c) {
                Some(&p) => p,
                None => self.intern_pred(c),
            };
            self.preds[pid as usize].entries.push(id);
        }
    }

    fn intern_pred(&mut self, c: &Constraint) -> u32 {
        let pid = match self.free_preds.pop() {
            Some(p) => {
                self.preds[p as usize] = Pred {
                    constraint: c.clone(),
                    entries: Vec::new(),
                };
                p
            }
            None => {
                self.preds.push(Pred {
                    constraint: c.clone(),
                    entries: Vec::new(),
                });
                (self.preds.len() - 1) as u32
            }
        };
        self.pred_of.insert(c.clone(), pid);
        let slot = self.attr_index_mut(c.name());
        if let Some(iv) = c.interval() {
            let lo = iv.lo().unwrap_or(i64::MIN);
            let at = slot.numeric.partition_point(|&(l, _)| l < lo);
            slot.numeric.insert(at, (lo, pid));
        } else if let Op::Eq(v) = c.op() {
            slot.eq.entry(v.clone()).or_default().push(pid);
        } else {
            slot.other.push(pid);
        }
        pid
    }

    fn remove_entry(&mut self, id: EntryId, constraints: &[Constraint]) {
        if let Some(pos) = self.entry_ids.iter().position(|&e| e == id) {
            self.entry_ids.swap_remove(pos);
        }
        if constraints.is_empty() {
            if let Some(pos) = self.unconstrained.iter().position(|&e| e == id) {
                self.unconstrained.swap_remove(pos);
            }
            return;
        }
        for c in constraints {
            let Some(&pid) = self.pred_of.get(c) else {
                continue;
            };
            let entries = &mut self.preds[pid as usize].entries;
            if let Some(pos) = entries.iter().position(|&e| e == id) {
                entries.swap_remove(pos);
            }
            if entries.is_empty() {
                self.drop_pred(pid, c);
            }
        }
    }

    fn drop_pred(&mut self, pid: u32, c: &Constraint) {
        self.pred_of.remove(c);
        self.free_preds.push(pid);
        let Some(pos) = self.attrs.iter().position(|(n, _)| n == c.name()) else {
            return;
        };
        let slot = &mut self.attrs[pos].1;
        if c.interval().is_some() {
            slot.numeric.retain(|&(_, p)| p != pid);
        } else if let Op::Eq(v) = c.op() {
            if let Some(pids) = slot.eq.get_mut(v) {
                pids.retain(|&p| p != pid);
                if pids.is_empty() {
                    slot.eq.remove(v);
                }
            }
        } else {
            slot.other.retain(|&p| p != pid);
        }
        if slot.is_empty() {
            self.attrs.swap_remove(pos);
        }
    }
}

#[derive(Debug, Clone)]
struct Entry<F> {
    peer: Peer,
    filter: F,
    /// Global insertion sequence — queries report matches in first-seen
    /// order so the fast path is observationally identical to the old
    /// linear scan.
    seq: u64,
    bucket: u32,
    required: u32,
    live: bool,
}

/// Bounded FIFO memo of probe results keyed on per-event nonces.
const PROBE_MEMO_CAP: usize = 1024;

/// The counting-based subscription index. See the module docs for the
/// algorithm; [`crate::SubscriptionTable`] owns one and keeps it
/// coherent across insert / remove / covering checks.
#[derive(Debug, Clone)]
pub struct MatchIndex<F: IndexableFilter> {
    keys: HashMap<F::Key, u32>,
    buckets: Vec<Bucket<F::Key>>,
    entries: Vec<Entry<F>>,
    free_entries: Vec<EntryId>,
    live: usize,
    next_seq: u64,
    /// Generation-stamped counters (no per-query clearing).
    counts: Vec<u32>,
    stamps: Vec<u64>,
    generation: u64,
    memo: HashMap<u128, Vec<u32>>,
    memo_order: VecDeque<u128>,
    last_stats: MatchStats,
    /// Whether buckets carry prepared probe contexts
    /// ([`IndexableFilter::probe_context`]).
    prepared: bool,
    /// Per-bucket prepared probe context (parallel to `buckets`); `None`
    /// when unprepared or the family has no context.
    probe_ctxs: Vec<Option<F::ProbeContext>>,
    /// Matched entry ids of the query in flight, reused across queries.
    matched_scratch: Vec<EntryId>,
    /// Candidate bucket ids of the query in flight, reused across queries.
    cand_scratch: Vec<u32>,
    /// Peer-dedup set, reused across queries.
    seen_scratch: HashSet<Peer>,
}

impl<F: IndexableFilter> Default for MatchIndex<F> {
    fn default() -> Self {
        MatchIndex {
            keys: HashMap::new(),
            buckets: Vec::new(),
            entries: Vec::new(),
            free_entries: Vec::new(),
            live: 0,
            next_seq: 0,
            counts: Vec::new(),
            stamps: Vec::new(),
            generation: 0,
            memo: HashMap::new(),
            memo_order: VecDeque::new(),
            last_stats: MatchStats::default(),
            prepared: false,
            probe_ctxs: Vec::new(),
            matched_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            seen_scratch: HashSet::new(),
        }
    }
}

impl<F: IndexableFilter> MatchIndex<F> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty index that builds a reusable probe context per bucket
    /// ([`IndexableFilter::probe_context`]), amortizing keyed-PRF setup
    /// across every probe of that key. Used by the sharded pipeline; the
    /// default serial index keeps the one-shot probe path.
    pub fn with_prepared_probes() -> Self {
        MatchIndex {
            prepared: true,
            ..Self::default()
        }
    }

    /// Live registrations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no registration is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Distinct routing keys ever interned (buckets are reused, never
    /// dropped, so this also bounds probe work).
    pub fn distinct_keys(&self) -> usize {
        self.keys.len()
    }

    /// Work performed by the most recent [`query`](Self::query).
    pub fn last_stats(&self) -> MatchStats {
        self.last_stats
    }

    /// Registers `filter` for `peer`; returns the entry id to pass to
    /// [`remove`](Self::remove).
    pub fn insert(&mut self, peer: Peer, filter: F) -> EntryId {
        let seq = self.next_seq;
        self.insert_with_seq(peer, filter, seq)
    }

    /// Registers `filter` for `peer` under a caller-assigned sequence
    /// number. Queries order matches by `seq`, so a caller that splits
    /// one logical table across several indexes (the sharded pipeline)
    /// passes its global registration counter here to keep the merged
    /// order identical to a single index. Sequence numbers must be unique
    /// across live entries; `next_seq` advances past `seq` so mixing with
    /// [`insert`](Self::insert) stays safe.
    pub fn insert_with_seq(&mut self, peer: Peer, filter: F, seq: u64) -> EntryId {
        self.invalidate_memo();
        let key = filter.routing_key();
        let bid = match self.keys.get(&key) {
            Some(&b) => b,
            None => {
                let b = self.buckets.len() as u32;
                self.probe_ctxs.push(if self.prepared {
                    F::probe_context(&key)
                } else {
                    None
                });
                self.buckets.push(Bucket::new(key.clone()));
                self.keys.insert(key, b);
                b
            }
        };
        let required = filter.indexed_constraints().len() as u32;
        self.next_seq = self.next_seq.max(seq.saturating_add(1));
        let entry = Entry {
            peer,
            filter,
            seq,
            bucket: bid,
            required,
            live: true,
        };
        let id = match self.free_entries.pop() {
            Some(id) => {
                self.entries[id as usize] = entry;
                id
            }
            None => {
                self.entries.push(entry);
                self.counts.push(0);
                self.stamps.push(0);
                (self.entries.len() - 1) as EntryId
            }
        };
        self.live += 1;
        let constraints = self.entries[id as usize]
            .filter
            .indexed_constraints()
            .to_vec();
        self.buckets[bid as usize].add_entry(id, &constraints);
        id
    }

    /// Unregisters an entry previously returned by
    /// [`insert`](Self::insert).
    pub fn remove(&mut self, id: EntryId) {
        let idx = id as usize;
        assert!(self.entries[idx].live, "double remove of entry {id}");
        self.invalidate_memo();
        let bid = self.entries[idx].bucket;
        let constraints = self.entries[idx].filter.indexed_constraints().to_vec();
        self.buckets[bid as usize].remove_entry(id, &constraints);
        self.entries[idx].live = false;
        self.free_entries.push(id);
        self.live -= 1;
    }

    /// Whether an identical `(peer, filter)` registration is live. Only
    /// the filter's own bucket is scanned.
    pub fn contains(&self, peer: Peer, filter: &F) -> bool {
        let Some(&bid) = self.keys.get(&filter.routing_key()) else {
            return false;
        };
        self.buckets[bid as usize].entry_ids.iter().any(|&id| {
            let e = &self.entries[id as usize];
            e.peer == peer && e.filter == *filter
        })
    }

    /// Whether any live filter covers `filter`. Only buckets named by
    /// [`IndexableFilter::covering_candidate_keys`] are scanned.
    pub fn covered_by_any(&self, filter: &F) -> bool {
        filter.covering_candidate_keys().iter().any(|key| {
            self.keys.get(key).is_some_and(|&bid| {
                self.buckets[bid as usize]
                    .entry_ids
                    .iter()
                    .any(|&id| self.entries[id as usize].filter.covers(filter))
            })
        })
    }

    /// The distinct peers whose filters match `event`, in first-seen
    /// registration order — exactly what the linear scan produced.
    pub fn query(&mut self, event: &F::Event) -> Vec<Peer> {
        let mut peers = Vec::new();
        self.query_into(event, &mut peers);
        peers
    }

    /// [`query`](Self::query) into a caller-provided buffer: `peers` is
    /// cleared and filled with the distinct matching peers in first-seen
    /// registration order. All per-query scratch (candidate lists,
    /// counters, dedup set) is reused across calls, so a steady-state
    /// query allocates nothing.
    pub fn query_into(&mut self, event: &F::Event, peers: &mut Vec<Peer>) {
        peers.clear();
        self.run_match(event);
        let mut seen = std::mem::take(&mut self.seen_scratch);
        seen.clear();
        for &id in &self.matched_scratch {
            let peer = self.entries[id as usize].peer;
            if seen.insert(peer) {
                peers.push(peer);
            }
        }
        self.seen_scratch = seen;
    }

    /// Raw matches for `event` as `(seq, peer)` pairs sorted by
    /// registration sequence, **without** peer dedup. `out` is cleared
    /// first. This is the shard-side half of the pipeline's merge: each
    /// shard reports its matches with global sequence numbers
    /// ([`insert_with_seq`](Self::insert_with_seq)) and the merge dedups
    /// peers across shards in sequence order.
    pub fn query_matches_into(&mut self, event: &F::Event, out: &mut Vec<(u64, Peer)>) {
        out.clear();
        self.run_match(event);
        for &id in &self.matched_scratch {
            let e = &self.entries[id as usize];
            out.push((e.seq, e.peer));
        }
    }

    /// The shared matching pass: fills `matched_scratch` with matched
    /// entry ids sorted by registration sequence and records the stats.
    fn run_match(&mut self, event: &F::Event) {
        self.generation += 1;
        let mut stats = MatchStats::default();
        let mut matched = std::mem::take(&mut self.matched_scratch);
        let mut cands = std::mem::take(&mut self.cand_scratch);
        matched.clear();
        cands.clear();

        match F::candidate_keys(event) {
            KeyQuery::Direct(keys) => {
                for k in &keys {
                    let Some(&b) = self.keys.get(k) else {
                        continue;
                    };
                    if !self.buckets[b as usize].entry_ids.is_empty() {
                        stats.key_probes += 1;
                        cands.push(b);
                    }
                }
            }
            KeyQuery::Probe => self.probe_buckets(event, &mut stats, &mut cands),
        }

        for &bid in &cands {
            self.match_bucket(bid, event, &mut stats, &mut matched);
        }

        matched.sort_unstable_by_key(|&id| self.entries[id as usize].seq);
        self.matched_scratch = matched;
        self.cand_scratch = cands;
        self.last_stats = stats;
    }

    /// Probe mode: one key test per live bucket, memoized per event
    /// nonce. Matching bucket ids are appended to `out`.
    fn probe_buckets(&mut self, event: &F::Event, stats: &mut MatchStats, out: &mut Vec<u32>) {
        let memo_key = F::probe_memo_key(event);
        if let Some(k) = memo_key {
            if let Some(bids) = self.memo.get(&k) {
                stats.memo_hits += 1;
                out.extend_from_slice(bids);
                return;
            }
        }
        let start = out.len();
        for (bid, bucket) in self.buckets.iter().enumerate() {
            if bucket.entry_ids.is_empty() {
                continue;
            }
            stats.key_probes += 1;
            let hit = match self.probe_ctxs.get(bid).and_then(Option::as_ref) {
                Some(ctx) => F::context_matches(ctx, event),
                None => F::key_matches(&bucket.key, event),
            };
            if hit {
                out.push(bid as u32);
            }
        }
        if let Some(k) = memo_key {
            if self.memo_order.len() >= PROBE_MEMO_CAP {
                if let Some(old) = self.memo_order.pop_front() {
                    self.memo.remove(&old);
                }
            }
            self.memo.insert(k, out[start..].to_vec());
            self.memo_order.push_back(k);
        }
    }

    /// The counting pass over one bucket.
    fn match_bucket(
        &mut self,
        bid: u32,
        event: &F::Event,
        stats: &mut MatchStats,
        matched: &mut Vec<EntryId>,
    ) {
        let bucket = &self.buckets[bid as usize];
        let entries = &self.entries;
        let counts = &mut self.counts;
        let stamps = &mut self.stamps;
        let generation = self.generation;

        matched.extend_from_slice(&bucket.unconstrained);

        let mut bump = |id: EntryId| {
            let idx = id as usize;
            if stamps[idx] != generation {
                stamps[idx] = generation;
                counts[idx] = 0;
            }
            counts[idx] += 1;
            if counts[idx] == entries[idx].required {
                matched.push(id);
            }
        };

        for (name, slot) in &bucket.attrs {
            let Some(value) = F::event_attr(event, name) else {
                continue;
            };
            match value {
                AttrValue::Int(v) => {
                    // Prefix of predicates whose lower bound admits `v`;
                    // the real operator re-check keeps exotic operators
                    // (and `Lt(i64::MIN)`-style empty ranges) faithful.
                    let end = slot.numeric.partition_point(|&(lo, _)| lo <= *v);
                    for &(_, pid) in &slot.numeric[..end] {
                        stats.predicate_evals += 1;
                        let pred = &bucket.preds[pid as usize];
                        if pred.constraint.matches_value(value) {
                            for &id in &pred.entries {
                                bump(id);
                            }
                        }
                    }
                }
                _ => {
                    if let Some(pids) = slot.eq.get(value) {
                        for &pid in pids {
                            stats.predicate_evals += 1;
                            for &id in &bucket.preds[pid as usize].entries {
                                bump(id);
                            }
                        }
                    }
                    for &pid in &slot.other {
                        stats.predicate_evals += 1;
                        let pred = &bucket.preds[pid as usize];
                        if pred.constraint.matches_value(value) {
                            for &id in &pred.entries {
                                bump(id);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Structural mutations invalidate memoized probe results (a new
    /// token bucket could match an already-memoized nonce).
    fn invalidate_memo(&mut self) {
        self.memo.clear();
        self.memo_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Event, Filter, IntRange};

    fn f(topic: &str, min: i64) -> Filter {
        Filter::for_topic(topic).with(Constraint::new("x", Op::Ge(min)))
    }

    fn e(topic: &str, x: i64) -> Event {
        Event::builder(topic).attr("x", x).build()
    }

    #[test]
    fn query_matches_by_topic_and_constraint() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert(Peer::Child(1), f("a", 10));
        idx.insert(Peer::Child(2), f("a", 50));
        idx.insert(Peer::Child(3), f("b", 0));
        assert_eq!(idx.query(&e("a", 20)), vec![Peer::Child(1)]);
        assert_eq!(idx.query(&e("a", 60)), vec![Peer::Child(1), Peer::Child(2)]);
        assert_eq!(idx.query(&e("b", 99)), vec![Peer::Child(3)]);
        assert!(idx.query(&e("c", 99)).is_empty());
    }

    #[test]
    fn wildcard_bucket_reaches_every_topic() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert(Peer::Parent, Filter::any());
        idx.insert(Peer::Child(1), f("a", 0));
        assert_eq!(idx.query(&e("zzz", 5)), vec![Peer::Parent]);
        assert_eq!(idx.query(&e("a", 5)), vec![Peer::Parent, Peer::Child(1)]);
    }

    #[test]
    fn work_counts_only_inspected_predicates() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        for (i, min) in [10i64, 20, 30, 40].into_iter().enumerate() {
            idx.insert(Peer::Child(i as u32), f("t", min));
        }
        for i in 0..64u32 {
            idx.insert(Peer::Child(100 + i), f("elsewhere", 0));
        }
        let peers = idx.query(&e("t", 25));
        assert_eq!(peers, vec![Peer::Child(0), Peer::Child(1)]);
        // One topic-bucket hit + the two predicates with lo <= 25; the
        // "elsewhere" bucket and the 30/40 bounds cost nothing.
        let stats = idx.last_stats();
        assert_eq!(stats.key_probes, 1);
        assert_eq!(stats.predicate_evals, 2);
    }

    #[test]
    fn duplicate_constraint_in_one_filter_still_matches() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        let dup = Filter::for_topic("t")
            .with(Constraint::new("x", Op::Ge(10)))
            .with(Constraint::new("x", Op::Ge(10)));
        idx.insert(Peer::Local(1), dup);
        assert_eq!(idx.query(&e("t", 15)), vec![Peer::Local(1)]);
        assert!(idx.query(&e("t", 5)).is_empty());
    }

    #[test]
    fn remove_keeps_index_coherent() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        let a = idx.insert(Peer::Child(1), f("t", 10));
        let _b = idx.insert(Peer::Child(2), f("t", 10));
        idx.remove(a);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.query(&e("t", 15)), vec![Peer::Child(2)]);
        assert!(idx.contains(Peer::Child(2), &f("t", 10)));
        assert!(!idx.contains(Peer::Child(1), &f("t", 10)));
        // Re-insert reuses the freed slot and still matches.
        let c = idx.insert(Peer::Child(3), f("t", 0));
        assert_eq!(c, a, "slab slot reused");
        assert_eq!(idx.query(&e("t", 15)), vec![Peer::Child(2), Peer::Child(3)]);
    }

    #[test]
    fn covering_scan_restricted_to_candidate_buckets() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert(Peer::Child(1), f("t", 10));
        idx.insert(Peer::Parent, Filter::any());
        assert!(idx.covered_by_any(&f("t", 20))); // same-topic bucket
        assert!(idx.covered_by_any(&f("other", 5))); // wildcard bucket
        let mut no_wild: MatchIndex<Filter> = MatchIndex::new();
        no_wild.insert(Peer::Child(1), f("t", 10));
        assert!(!no_wild.covered_by_any(&f("other", 5)));
    }

    #[test]
    fn caller_assigned_seq_controls_order() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert_with_seq(Peer::Child(2), f("t", 0), 7);
        idx.insert_with_seq(Peer::Child(1), f("t", 0), 3);
        assert_eq!(idx.query(&e("t", 5)), vec![Peer::Child(1), Peer::Child(2)]);
        // next_seq advanced past the largest assigned seq, so a plain
        // insert sorts after both.
        idx.insert(Peer::Child(9), f("t", 0));
        assert_eq!(
            idx.query(&e("t", 5)),
            vec![Peer::Child(1), Peer::Child(2), Peer::Child(9)]
        );
    }

    #[test]
    fn query_into_matches_query_and_reuses_buffer() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert(Peer::Child(1), f("a", 10));
        idx.insert(Peer::Child(2), f("a", 50));
        let mut buf = vec![Peer::Parent; 8]; // stale contents must vanish
        for x in [5i64, 20, 60] {
            let ev = e("a", x);
            idx.query_into(&ev, &mut buf);
            assert_eq!(buf, idx.query(&ev), "x={x}");
        }
    }

    #[test]
    fn query_matches_into_reports_global_seq_pairs() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        idx.insert_with_seq(Peer::Child(1), f("t", 0), 4);
        idx.insert_with_seq(Peer::Child(1), f("t", 10), 9);
        idx.insert_with_seq(Peer::Child(2), f("t", 0), 6);
        let mut out = Vec::new();
        idx.query_matches_into(&e("t", 50), &mut out);
        // Sorted by seq, peers not deduped.
        assert_eq!(
            out,
            vec![
                (4, Peer::Child(1)),
                (6, Peer::Child(2)),
                (9, Peer::Child(1))
            ]
        );
    }

    #[test]
    fn mixed_families_and_ranges() {
        let mut idx: MatchIndex<Filter> = MatchIndex::new();
        let range = Filter::for_topic("t").with(Constraint::new(
            "x",
            Op::InRange(IntRange::new(10, 20).unwrap()),
        ));
        let eqs = Filter::for_topic("t").with(Constraint::new("sym", Op::Eq("GOOG".into())));
        let pre = Filter::for_topic("t").with(Constraint::new("sym", Op::StrPrefix("GO".into())));
        idx.insert(Peer::Child(1), range);
        idx.insert(Peer::Child(2), eqs);
        idx.insert(Peer::Child(3), pre);
        let ev = Event::builder("t")
            .attr("x", 15i64)
            .attr("sym", "GOOG")
            .build();
        assert_eq!(
            idx.query(&ev),
            vec![Peer::Child(1), Peer::Child(2), Peer::Child(3)]
        );
        let ev2 = Event::builder("t")
            .attr("x", 25i64)
            .attr("sym", "GOOD")
            .build();
        assert_eq!(idx.query(&ev2), vec![Peer::Child(3)]);
    }
}
