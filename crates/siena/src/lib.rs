//! A Siena-like content-based publish-subscribe substrate, built from
//! scratch for the PSGuard reproduction.
//!
//! The paper (§2.1, §5.1) layers PSGuard on an unmodified Siena core: a
//! hierarchical broker overlay with in-network matching and the *covering*
//! optimization on subscription forwarding. This crate provides that core:
//!
//! * [`Broker`] — the pure routing state machine (subscribe / publish →
//!   actions), generic over [`FilterSemantics`] so the same code routes
//!   plaintext filters and PSGuard's tokenized envelopes;
//! * [`SubscriptionTable`] — covering-aware subscription storage;
//! * [`ShardedPipeline`] — the batch publish path: subscriptions hash-
//!   partitioned across worker shards, matched in parallel with reusable
//!   probe contexts, merged back into the serial broker's exact delivery
//!   order;
//! * [`Engine`] — a deterministic discrete-event overlay (full binary
//!   broker trees, GT-ITM latencies, per-node queueing) used to reproduce
//!   the throughput/latency figures;
//! * [`spawn_broker`] / [`TcpClient`] — a real TCP transport with a framed
//!   binary [`wire`] format.
//!
//! # Example
//!
//! ```
//! use psguard_model::{Constraint, Event, Filter, Op};
//! use psguard_siena::{Action, Broker, Peer};
//!
//! let mut broker: Broker<Filter> = Broker::new(true);
//! broker.subscribe(Peer::Local(1), Filter::for_topic("news"));
//! let e = Event::builder("news").build();
//! let out = broker.publish(Peer::Local(2), e.clone());
//! assert_eq!(out, vec![Action::Deliver(Peer::Local(1), e)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod engine;
mod error;
mod fault;
mod frame;
mod index;
mod index_legacy;
pub mod log;
mod pipeline;
pub mod reactor;
mod semantics;
mod table;
mod tcp;
pub mod threaded;
pub mod wire;

pub use broker::{Action, Broker, BrokerStats};
pub use engine::{CostModel, Engine, EngineConfig, RunReport};
pub use error::TcpError;
pub use fault::{
    DeliveryRecord, FaultConfig, FaultRunReport, RecoveryConfig, Revocation, SeqDedup,
};
pub use frame::{write_frames, Frame, FramePool, FramePoolStats, FrameWriteCursor, SharedFrame};
pub use index::{EntryId, IndexableFilter, KeyQuery, MatchIndex, MatchStats};
pub use index_legacy::LegacyMatchIndex;
pub use log::{
    Cursor, EventLog, LogConfig, LogError, LogStats, RecoveryReport, ReplayCursor, ResumeOutcome,
};
pub use pipeline::{BatchDeliveries, PipelineStats, ShardedPipeline};
pub use reactor::{ClientReactor, PollWaker, Poller, ReactorClient, ScanPoller, MAX_WORKERS};
pub use semantics::FilterSemantics;
pub use table::{Peer, SubscriptionTable};
pub use tcp::{
    spawn_broker, spawn_broker_durable, spawn_broker_with, OverflowPolicy, TcpBroker, TcpClient,
    TcpConfig, TcpStats,
};
pub use threaded::{
    spawn_threaded_broker, spawn_threaded_broker_with, ThreadedBroker, ThreadedClient,
};
pub use wire::{Message, Wire, WireError};
