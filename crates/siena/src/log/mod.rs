//! Durable, append-only event log with crash recovery and cursor-based
//! replay — the broker-side half of the catch-up protocol (DESIGN.md
//! §16).
//!
//! The log stores *already-encoded* event bytes: the same
//! ciphertext-plus-routing-tokens wire encoding that a `Publish` frame
//! carries. Because the broker is honest-but-curious and never holds
//! plaintext, the log is encrypted-at-rest for free — a compromised
//! disk leaks exactly what a compromised broker already could. This
//! module deliberately never names or decodes the event type; payloads
//! are opaque `&[u8]`, an invariant enforced by the `ciphertext-at-rest`
//! xtask rule.
//!
//! Layout: a directory of `seg-<base>.psl` segment files (the
//! `segment` submodule), each a fixed header followed by CRC-protected
//! records `[len ‖ crc ‖ epoch ‖ seq ‖ payload]` (`record`). Appends go
//! to the newest segment; segments roll at a size threshold and the
//! oldest are deleted past a retention cap (compaction). Reopening
//! scans every segment, truncates any torn tail, and resumes at the
//! recovered high-water mark — a crash mid-append costs exactly the
//! record being written.
//!
//! Replay: a subscriber's `(epoch, seq)` [`Cursor`] names the last
//! event it applied; [`EventLog::catch_up_from`] classifies the resume
//! ([`ResumeOutcome`]) and yields a [`ReplayCursor`] that
//! [`EventLog::replay_next`] advances in bounded batches, so the
//! dispatcher interleaves replay with live fan-out. Compaction racing
//! an active replay is detected via a generation counter: the cursor
//! re-seeks (never reads freed bytes) and records that its gap grew.
//!
//! Chaos: [`EventLog::open_with_faults`] wires the
//! [`psguard_net::FaultPlan`] disk axis (torn writes, short reads,
//! fsync failures) into every disk touch, so recovery is tested under
//! seeded fault plans like every other layer.

mod record;
mod segment;

use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use psguard_net::FaultPlan;

use record::{
    crc32, encode_record, parse_body, parse_header, BODY_PREFIX_LEN, MAX_BODY_LEN,
    RECORD_HEADER_LEN,
};
use segment::{
    encode_header, file_name, list_bases, scan_and_repair, LogSegment, SEGMENT_HEADER_LEN,
    SPARSE_INDEX_EVERY,
};

/// Configuration for one [`EventLog`] directory.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Epoch stamped into a *freshly created* log. Reopening an
    /// existing log keeps the epoch recorded on disk; bump this when
    /// provisioning a new log directory for an existing deployment so
    /// stale cursors resolve to [`ResumeOutcome::FreshStart`].
    pub epoch: u32,
    /// Roll to a new segment once the active one would exceed this many
    /// bytes (a single over-sized record still gets its own segment).
    pub segment_max_bytes: u64,
    /// Retention cap: oldest segments are deleted so at most this many
    /// remain. Minimum 1.
    pub max_segments: usize,
    /// Fsync after every append. Off by default (the bench measures the
    /// difference); recovery correctness only depends on record CRCs.
    pub fsync_on_append: bool,
    /// Records one [`EventLog::replay_next`] call may return — the
    /// dispatcher's per-tick replay budget, keeping live fan-out ahead
    /// of catch-up traffic.
    pub replay_budget: usize,
}

impl LogConfig {
    /// A config with defaults suitable for tests and the bench: 4 MiB
    /// segments, 8 retained, no per-append fsync, 256-record replay
    /// budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogConfig {
            dir: dir.into(),
            epoch: 1,
            segment_max_bytes: 4 << 20,
            max_segments: 8,
            fsync_on_append: false,
            replay_budget: 256,
        }
    }
}

/// A subscriber's position in the log: the last `(epoch, seq)` it
/// applied. `seq` 0 means "nothing yet" (sequence numbers start at 1).
/// Ordering is lexicographic on `(epoch, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cursor {
    /// Log-stream identity; cursors from another epoch cannot resume.
    pub epoch: u32,
    /// Seq of the last applied record (0 = none).
    pub seq: u64,
}

/// What a reconnecting subscriber's cursor resolved to — surfaced to
/// the application instead of the previous indistinguishable silence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeOutcome {
    /// Every event after the cursor is retained; replay closes the gap
    /// completely.
    ContinuedAtCursor,
    /// Retention (or compaction racing the replay) deleted part of the
    /// gap; replay starts at the retention floor and earlier events are
    /// gone.
    GapTruncatedByRetention,
    /// The cursor names another epoch or lies beyond the log's
    /// high-water mark; no history applies, delivery restarts live.
    FreshStart,
}

impl ResumeOutcome {
    /// Wire code for the outcome (carried in `ReplayDone`).
    pub fn code(self) -> u8 {
        match self {
            ResumeOutcome::ContinuedAtCursor => 0,
            ResumeOutcome::GapTruncatedByRetention => 1,
            ResumeOutcome::FreshStart => 2,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ResumeOutcome::ContinuedAtCursor),
            1 => Some(ResumeOutcome::GapTruncatedByRetention),
            2 => Some(ResumeOutcome::FreshStart),
            _ => None,
        }
    }
}

/// Typed failures of the durable log.
#[derive(Debug)]
pub enum LogError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk state violated a format invariant mid-operation.
    Corrupt(&'static str),
    /// Injected fault: the append was torn mid-record (simulated
    /// crash); the record is not durable and the log is poisoned.
    TornWrite,
    /// Injected fault: fsync reported failure; the record is not
    /// durable and the log is poisoned.
    FsyncFailed,
    /// Injected fault: a replay read came back short; retry the pump.
    ShortRead,
    /// An earlier write failure poisoned the log; reopen to recover.
    Poisoned,
    /// The payload exceeds the maximum record body.
    PayloadTooLarge,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O error: {e}"),
            LogError::Corrupt(m) => write!(f, "log corrupt: {m}"),
            LogError::TornWrite => write!(f, "append torn mid-record (simulated crash)"),
            LogError::FsyncFailed => write!(f, "fsync failed; record not durable"),
            LogError::ShortRead => write!(f, "replay read returned short"),
            LogError::Poisoned => write!(f, "log poisoned by an earlier write failure"),
            LogError::PayloadTooLarge => write!(f, "payload exceeds maximum record body"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// What reopening a log directory found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments retained after repair.
    pub segments: usize,
    /// Valid records across all retained segments.
    pub records: u64,
    /// Bytes discarded as torn or corrupt (tail truncation plus any
    /// unreachable later segments).
    pub truncated_bytes: u64,
    /// Recovered high-water mark; appends resume at `seq + 1`.
    pub high_water: Cursor,
}

/// Counters describing a log's activity since open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Records successfully appended.
    pub appends: u64,
    /// Bytes those records occupy on disk (headers included).
    pub bytes_appended: u64,
    /// Segments created (including the first).
    pub segments_created: u64,
    /// Segments deleted by retention.
    pub segments_evicted: u64,
    /// Records handed out by replay.
    pub replayed_records: u64,
}

/// A replaying subscriber's progress through the log. Holds no OS
/// resources — just a seq, a byte position, and the compaction
/// generation it was valid for, so a cursor survives any interleaving
/// of appends, rolls, and compactions (re-seeking when its segment was
/// deleted underneath it).
#[derive(Debug, Clone)]
pub struct ReplayCursor {
    next_seq: u64,
    seg_base: u64,
    offset: u64,
    generation: u64,
    truncated: bool,
}

impl ReplayCursor {
    /// Seq of the next record this cursor will yield.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Whether compaction deleted part of the gap after replay started
    /// (the caller should report [`ResumeOutcome::GapTruncatedByRetention`]).
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

/// The append-only durable event log. Single-owner (the dispatcher
/// thread); all methods take `&mut self` or `&self`, no interior
/// locking.
#[derive(Debug)]
pub struct EventLog {
    cfg: LogConfig,
    epoch: u32,
    /// Seq the next append receives (high-water + 1; starts at 1).
    next_seq: u64,
    segments: Vec<LogSegment>,
    /// Open handle to the newest segment, positioned at its end.
    active: Option<File>,
    /// Reusable record-encode buffer.
    scratch: Vec<u8>,
    /// Bumped whenever compaction deletes a segment; replay cursors
    /// from older generations must re-seek.
    generation: u64,
    /// Set on any write-path failure: appends and replays stop until
    /// the log is reopened (which re-runs recovery).
    poisoned: bool,
    faults: Option<FaultPlan>,
    stats: LogStats,
}

impl EventLog {
    /// Opens (creating if needed) the log at `cfg.dir`, running the
    /// recovery scan: every segment is validated, torn tails truncated,
    /// and unreachable later segments deleted.
    ///
    /// # Errors
    ///
    /// [`LogError::Io`] when the directory or a segment cannot be read
    /// or repaired.
    pub fn open(cfg: LogConfig) -> Result<(Self, RecoveryReport), LogError> {
        Self::open_inner(cfg, None)
    }

    /// Like [`EventLog::open`], with the plan's disk-fault axis wired
    /// into every subsequent disk touch (torn appends, short replay
    /// reads, fsync failures) — the chaos-test entry point.
    ///
    /// # Errors
    ///
    /// [`LogError::Io`] when the directory or a segment cannot be read
    /// or repaired.
    pub fn open_with_faults(
        cfg: LogConfig,
        faults: FaultPlan,
    ) -> Result<(Self, RecoveryReport), LogError> {
        Self::open_inner(cfg, Some(faults))
    }

    fn open_inner(
        cfg: LogConfig,
        faults: Option<FaultPlan>,
    ) -> Result<(Self, RecoveryReport), LogError> {
        fs::create_dir_all(&cfg.dir)?;
        let bases = list_bases(&cfg.dir)?;
        let mut segments: Vec<LogSegment> = Vec::new();
        let mut truncated_bytes = 0u64;
        let mut records = 0u64;
        let mut epoch: Option<u32> = None;
        let mut expect_base: Option<u64> = None;
        let mut drop_rest = false;
        for base in bases {
            let path = cfg.dir.join(file_name(base));
            if drop_rest || expect_base.is_some_and(|e| e != base) {
                // Unreachable past a torn tail or a seq gap: discard.
                drop_rest = true;
                truncated_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(&path)?;
                continue;
            }
            match scan_and_repair(&path, base, epoch)? {
                None => {
                    drop_rest = true;
                    truncated_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    fs::remove_file(&path)?;
                }
                Some(scan) => {
                    epoch = Some(scan.epoch);
                    truncated_bytes += scan.truncated_bytes;
                    records += scan.records;
                    expect_base = Some(scan.last_seq + 1);
                    if scan.truncated_bytes > 0 {
                        drop_rest = true;
                    }
                    segments.push(LogSegment {
                        base,
                        last_seq: scan.last_seq,
                        len: scan.len,
                        path,
                        index: scan.index,
                    });
                }
            }
        }
        let epoch = epoch.unwrap_or(cfg.epoch.max(1));
        let next_seq = segments.last().map_or(1, |s| s.last_seq + 1);
        let report = RecoveryReport {
            segments: segments.len(),
            records,
            truncated_bytes,
            high_water: Cursor {
                epoch,
                seq: next_seq - 1,
            },
        };
        Ok((
            EventLog {
                cfg,
                epoch,
                next_seq,
                segments,
                active: None,
                scratch: Vec::new(),
                generation: 1,
                poisoned: false,
                faults,
                stats: LogStats::default(),
            },
            report,
        ))
    }

    /// The log's epoch (stamped into every record and cursor).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The last durable cursor: `(epoch, seq-of-last-record)`, seq 0
    /// when the log is empty.
    pub fn high_water(&self) -> Cursor {
        Cursor {
            epoch: self.epoch,
            seq: self.next_seq - 1,
        }
    }

    /// Oldest seq still retained (equals the next append's seq when the
    /// log holds nothing).
    pub fn floor_seq(&self) -> u64 {
        self.segments.first().map_or(self.next_seq, |s| s.base)
    }

    /// Whether a write-path failure has poisoned the log (reopen to
    /// recover).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Activity counters since open.
    pub fn stats(&self) -> LogStats {
        self.stats
    }

    /// The configured per-pump replay budget.
    pub fn replay_budget(&self) -> usize {
        self.cfg.replay_budget.max(1)
    }

    /// Appends one already-encoded event payload, returning its durable
    /// cursor.
    ///
    /// # Errors
    ///
    /// [`LogError::Poisoned`] after any earlier write failure;
    /// [`LogError::PayloadTooLarge`] for over-sized payloads;
    /// [`LogError::TornWrite`] / [`LogError::FsyncFailed`] for injected
    /// disk faults (the record is not durable and the log poisons
    /// itself — the caller falls back to live-only delivery);
    /// [`LogError::Io`] for real filesystem failures (also poisoning).
    pub fn append(&mut self, payload: &[u8]) -> Result<Cursor, LogError> {
        if self.poisoned {
            return Err(LogError::Poisoned);
        }
        if payload.len() > MAX_BODY_LEN - BODY_PREFIX_LEN {
            return Err(LogError::PayloadTooLarge);
        }
        let seq = self.next_seq;
        encode_record(&mut self.scratch, self.epoch, seq, payload);
        let rec_len = self.scratch.len() as u64;

        let fits = self
            .segments
            .last()
            .is_some_and(|seg| seg.len + rec_len <= self.cfg.segment_max_bytes);
        if !fits {
            if let Err(e) = self.roll_to(seq) {
                self.poisoned = true;
                return Err(e);
            }
        } else if self.active.is_none() {
            // Reopened log: continue appending to the recovered tail
            // segment (append mode positions at its repaired end).
            if let Some(seg) = self.segments.last() {
                match OpenOptions::new().append(true).open(&seg.path) {
                    Ok(f) => self.active = Some(f),
                    Err(e) => {
                        self.poisoned = true;
                        return Err(LogError::Io(e));
                    }
                }
            }
        }

        let Some(file) = self.active.as_mut() else {
            self.poisoned = true;
            return Err(LogError::Corrupt("no active segment after roll"));
        };
        if let Some(plan) = self.faults.as_mut() {
            if let Some(torn) = plan.disk_torn_write(self.scratch.len()) {
                // Simulated crash: a strict prefix reaches the disk.
                let _ = file.write_all(self.scratch.get(..torn).unwrap_or(&[]));
                let _ = file.sync_data();
                self.poisoned = true;
                return Err(LogError::TornWrite);
            }
        }
        if let Err(e) = file.write_all(&self.scratch) {
            self.poisoned = true;
            return Err(LogError::Io(e));
        }
        if self.cfg.fsync_on_append {
            if self.faults.as_mut().is_some_and(|p| p.disk_fsync_fails()) {
                self.poisoned = true;
                return Err(LogError::FsyncFailed);
            }
            if let Err(e) = file.sync_data() {
                self.poisoned = true;
                return Err(LogError::Io(e));
            }
        }

        if let Some(seg) = self.segments.last_mut() {
            if (seq - seg.base).is_multiple_of(SPARSE_INDEX_EVERY) {
                // `seg.len` is still the record's start offset here.
                seg.index.push((seq, seg.len));
            }
            seg.len += rec_len;
            seg.last_seq = seq;
        }
        self.next_seq = seq + 1;
        self.stats.appends += 1;
        self.stats.bytes_appended += rec_len;
        Ok(Cursor {
            epoch: self.epoch,
            seq,
        })
    }

    /// Flushes the active segment to disk (no-op when nothing is open).
    ///
    /// # Errors
    ///
    /// [`LogError::Io`] when fsync fails.
    pub fn sync(&mut self) -> Result<(), LogError> {
        if let Some(file) = self.active.as_mut() {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Starts a new segment based at `base`, evicting the oldest
    /// segments past the retention cap first.
    fn roll_to(&mut self, base: u64) -> Result<(), LogError> {
        self.active = None;
        let max = self.cfg.max_segments.max(1);
        while self.segments.len() >= max {
            let seg = self.segments.remove(0);
            fs::remove_file(&seg.path)?;
            self.generation += 1;
            self.stats.segments_evicted += 1;
        }
        let path = self.cfg.dir.join(file_name(base));
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&encode_header(self.epoch, base))?;
        self.segments.push(LogSegment {
            base,
            last_seq: base - 1, // zero records yet
            len: SEGMENT_HEADER_LEN as u64,
            path,
            index: Vec::new(),
        });
        self.active = Some(file);
        self.stats.segments_created += 1;
        Ok(())
    }

    /// Classifies a reconnecting subscriber's cursor and returns the
    /// replay cursor to drive: continue right after it, restart at the
    /// retention floor, or (epoch mismatch / future seq) replay nothing.
    pub fn catch_up_from(&self, cursor: Cursor) -> (ResumeOutcome, ReplayCursor) {
        let hwm = self.next_seq - 1;
        if cursor.epoch != self.epoch || cursor.seq > hwm {
            (ResumeOutcome::FreshStart, self.replay_cursor(self.next_seq))
        } else if cursor.seq + 1 < self.floor_seq() {
            (
                ResumeOutcome::GapTruncatedByRetention,
                self.replay_cursor(self.floor_seq()),
            )
        } else {
            (
                ResumeOutcome::ContinuedAtCursor,
                self.replay_cursor(cursor.seq + 1),
            )
        }
    }

    /// A replay cursor positioned before `from_seq` (clamped to the
    /// retention floor on first use).
    pub fn replay_cursor(&self, from_seq: u64) -> ReplayCursor {
        ReplayCursor {
            next_seq: from_seq,
            seg_base: 0,
            offset: 0,
            generation: 0, // forces a seek on first pump
            truncated: false,
        }
    }

    /// Reads up to `budget` records at the cursor into `out` as
    /// `(cursor, payload)` pairs, advancing it. Returns whether more
    /// records remain. Compaction since the last pump makes the cursor
    /// re-seek (marking it truncated when records it still needed are
    /// gone); records appended since the last pump are picked up
    /// naturally.
    ///
    /// # Errors
    ///
    /// [`LogError::Poisoned`] on a poisoned log;
    /// [`LogError::ShortRead`] for an injected transient read fault
    /// (the cursor is unchanged — retry the pump); [`LogError::Io`] /
    /// [`LogError::Corrupt`] for real failures.
    pub fn replay_next(
        &mut self,
        cur: &mut ReplayCursor,
        budget: usize,
        out: &mut Vec<(Cursor, Vec<u8>)>,
    ) -> Result<bool, LogError> {
        if self.poisoned {
            return Err(LogError::Poisoned);
        }
        if cur.next_seq >= self.next_seq {
            return Ok(false);
        }
        if let Some(plan) = self.faults.as_mut() {
            if plan.disk_short_read() {
                return Err(LogError::ShortRead);
            }
        }
        if cur.generation != self.generation {
            self.reseek(cur)?;
        }
        let mut remaining = budget.max(1);
        while remaining > 0 && cur.next_seq < self.next_seq {
            let Some(seg) = self.segments.iter().find(|s| s.base == cur.seg_base) else {
                return Err(LogError::Corrupt("replay lost its segment"));
            };
            if cur.offset >= seg.len {
                // This segment is exhausted; records remain, so the
                // next contiguous segment must exist.
                let next_base = seg.last_seq + 1;
                if !self.segments.iter().any(|s| s.base == next_base) {
                    return Err(LogError::Corrupt("segment chain broken during replay"));
                }
                cur.seg_base = next_base;
                cur.offset = SEGMENT_HEADER_LEN as u64;
                continue;
            }
            let path = seg.path.clone();
            let seg_len = seg.len;
            let n = Self::read_segment(&path, seg_len, self.next_seq, cur, remaining, out)?;
            remaining -= n;
            self.stats.replayed_records += n as u64;
        }
        Ok(cur.next_seq < self.next_seq)
    }

    /// Re-positions `cur` after a compaction (or on first use): clamps
    /// to the retention floor, binary-searches the segment's sparse
    /// seq→offset index for the sampled record at or before the target,
    /// and scans at most [`SPARSE_INDEX_EVERY`] record headers forward
    /// from there — instead of scanning from the segment base.
    fn reseek(&self, cur: &mut ReplayCursor) -> Result<(), LogError> {
        let floor = self.floor_seq();
        if cur.next_seq < floor {
            cur.next_seq = floor;
            cur.truncated = true;
        }
        cur.generation = self.generation;
        let Some(seg) = self
            .segments
            .iter()
            .rev()
            .find(|s| s.base <= cur.next_seq && cur.next_seq <= s.last_seq)
        else {
            // Fully caught up (next_seq == high-water + 1) or empty log.
            cur.seg_base = cur.next_seq;
            cur.offset = SEGMENT_HEADER_LEN as u64;
            return Ok(());
        };
        // Start at the closest sampled record at or before the target;
        // an exact hit makes the forward scan a no-op.
        let (mut seq, mut off) = match seg.index.binary_search_by_key(&cur.next_seq, |&(s, _)| s) {
            Ok(i) => seg.index[i],
            Err(0) => (seg.base, SEGMENT_HEADER_LEN as u64),
            Err(i) => seg.index[i - 1],
        };
        let file = File::open(&seg.path)?;
        let mut reader = BufReader::with_capacity(16 << 10, file);
        reader.seek(SeekFrom::Start(off))?;
        while seq < cur.next_seq {
            let mut h = [0u8; RECORD_HEADER_LEN];
            reader.read_exact(&mut h)?;
            let (body_len, _) = parse_header(h);
            if !(BODY_PREFIX_LEN..=MAX_BODY_LEN).contains(&body_len) {
                return Err(LogError::Corrupt("bad record length during seek"));
            }
            reader.seek_relative(body_len as i64)?;
            off += (RECORD_HEADER_LEN + body_len) as u64;
            seq += 1;
        }
        cur.seg_base = seg.base;
        cur.offset = off;
        Ok(())
    }

    /// Sequentially reads up to `max` records from one segment file,
    /// stopping at the segment's valid length or the log's high-water
    /// mark.
    fn read_segment(
        path: &Path,
        seg_len: u64,
        hwm_next: u64,
        cur: &mut ReplayCursor,
        max: usize,
        out: &mut Vec<(Cursor, Vec<u8>)>,
    ) -> Result<usize, LogError> {
        let file = File::open(path)?;
        let mut reader = BufReader::with_capacity(64 << 10, file);
        reader.seek(SeekFrom::Start(cur.offset))?;
        let mut n = 0;
        while n < max && cur.next_seq < hwm_next && cur.offset < seg_len {
            let mut h = [0u8; RECORD_HEADER_LEN];
            reader.read_exact(&mut h)?;
            let (body_len, crc) = parse_header(h);
            if !(BODY_PREFIX_LEN..=MAX_BODY_LEN).contains(&body_len) {
                return Err(LogError::Corrupt("bad record length during replay"));
            }
            let mut body = vec![0u8; body_len];
            reader.read_exact(&mut body)?;
            if crc32(&body) != crc {
                return Err(LogError::Corrupt("CRC mismatch during replay"));
            }
            let Some((epoch, seq, payload)) = parse_body(&body) else {
                return Err(LogError::Corrupt("record body too short during replay"));
            };
            if seq != cur.next_seq {
                return Err(LogError::Corrupt("seq discontinuity during replay"));
            }
            out.push((Cursor { epoch, seq }, payload.to_vec()));
            cur.offset += (RECORD_HEADER_LEN + body_len) as u64;
            cur.next_seq += 1;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("psguard-log-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(i: u64) -> Vec<u8> {
        // Opaque bytes standing in for ciphertext + tokens.
        let mut p = vec![0xC5; 40];
        p.extend_from_slice(&i.to_be_bytes());
        p
    }

    fn drain(log: &mut EventLog, cur: &mut ReplayCursor) -> Vec<(Cursor, Vec<u8>)> {
        let mut out = Vec::new();
        while log.replay_next(cur, 7, &mut out).unwrap() {}
        out
    }

    #[test]
    fn append_replay_roundtrip_and_reopen_continuity() {
        let dir = tmp("roundtrip");
        let (mut log, rep) = EventLog::open(LogConfig::new(&dir)).unwrap();
        assert_eq!(rep.records, 0);
        assert_eq!(log.high_water().seq, 0);
        for i in 1..=20u64 {
            let c = log.append(&payload(i)).unwrap();
            assert_eq!(c.seq, i);
        }
        assert_eq!(log.high_water().seq, 20);

        let mut cur = log.replay_cursor(1);
        let got = drain(&mut log, &mut cur);
        assert_eq!(got.len(), 20);
        for (i, (c, p)) in got.iter().enumerate() {
            assert_eq!(c.seq, i as u64 + 1);
            assert_eq!(p, &payload(i as u64 + 1));
        }

        drop(log);
        let (mut log, rep) = EventLog::open(LogConfig::new(&dir)).unwrap();
        assert_eq!(rep.records, 20);
        assert_eq!(rep.high_water.seq, 20);
        assert_eq!(rep.truncated_bytes, 0);
        let c = log.append(&payload(21)).unwrap();
        assert_eq!(c.seq, 21, "appends resume at recovered high-water + 1");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_and_retention_evicts() {
        let dir = tmp("retention");
        let mut cfg = LogConfig::new(&dir);
        cfg.segment_max_bytes = 200; // a few records per segment
        cfg.max_segments = 3;
        let (mut log, _) = EventLog::open(cfg).unwrap();
        for i in 1..=40u64 {
            log.append(&payload(i)).unwrap();
        }
        let stats = log.stats();
        assert!(stats.segments_created > 3, "{stats:?}");
        assert!(stats.segments_evicted > 0, "{stats:?}");
        assert!(log.floor_seq() > 1, "retention must raise the floor");
        assert_eq!(log.high_water().seq, 40);

        // A cursor before the floor resolves to a truncated-gap resume.
        let (outcome, mut cur) = log.catch_up_from(Cursor {
            epoch: log.epoch(),
            seq: 0,
        });
        assert_eq!(outcome, ResumeOutcome::GapTruncatedByRetention);
        let got = drain(&mut log, &mut cur);
        assert_eq!(got.first().unwrap().0.seq, log.floor_seq());
        assert_eq!(got.last().unwrap().0.seq, 40);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn catch_up_classification() {
        let dir = tmp("classify");
        let (mut log, _) = EventLog::open(LogConfig::new(&dir)).unwrap();
        for i in 1..=5u64 {
            log.append(&payload(i)).unwrap();
        }
        let epoch = log.epoch();
        let (o, cur) = log.catch_up_from(Cursor { epoch, seq: 3 });
        assert_eq!(o, ResumeOutcome::ContinuedAtCursor);
        assert_eq!(cur.next_seq(), 4);
        let (o, _) = log.catch_up_from(Cursor { epoch, seq: 5 });
        assert_eq!(
            o,
            ResumeOutcome::ContinuedAtCursor,
            "caught-up cursor continues"
        );
        let (o, _) = log.catch_up_from(Cursor { epoch, seq: 9 });
        assert_eq!(o, ResumeOutcome::FreshStart, "future cursor cannot resume");
        let (o, _) = log.catch_up_from(Cursor {
            epoch: epoch + 1,
            seq: 2,
        });
        assert_eq!(o, ResumeOutcome::FreshStart, "other epoch cannot resume");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_racing_replay_reseeks_and_reports_truncation() {
        let dir = tmp("race");
        let mut cfg = LogConfig::new(&dir);
        cfg.segment_max_bytes = 200;
        cfg.max_segments = 2;
        let (mut log, _) = EventLog::open(cfg).unwrap();
        for i in 1..=8u64 {
            log.append(&payload(i)).unwrap();
        }
        let floor = log.floor_seq();
        let (_, mut cur) = log.catch_up_from(Cursor {
            epoch: log.epoch(),
            seq: floor - 1,
        });
        let mut out = Vec::new();
        assert!(log.replay_next(&mut cur, 1, &mut out).unwrap());
        // Append enough to evict the segment the cursor sits in.
        for i in 9..=40u64 {
            log.append(&payload(i)).unwrap();
        }
        assert!(log.floor_seq() > cur.next_seq());
        while log.replay_next(&mut cur, 4, &mut out).unwrap() {}
        assert!(cur.truncated(), "cursor must notice its gap grew");
        // Whatever was delivered is contiguous up to the high-water mark.
        let last = out.last().unwrap().0.seq;
        assert_eq!(last, 40);
        for w in out.windows(2) {
            assert!(w[1].0.seq == w[0].0.seq + 1 || w[1].0.seq >= log.floor_seq());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_poisons_and_reopen_truncates() {
        use psguard_net::DiskFaults;
        let dir = tmp("torn");
        let plan = FaultPlan::new(3).with_disk_faults(DiskFaults {
            torn_write_p: 1.0,
            short_read_p: 0.0,
            fsync_fail_p: 0.0,
        });
        let (mut log, _) = EventLog::open(LogConfig::new(&dir)).unwrap();
        for i in 1..=4u64 {
            log.append(&payload(i)).unwrap();
        }
        drop(log);
        let (mut log, _) = EventLog::open_with_faults(LogConfig::new(&dir), plan).unwrap();
        assert!(matches!(log.append(&payload(5)), Err(LogError::TornWrite)));
        assert!(log.is_poisoned());
        assert!(matches!(log.append(&payload(5)), Err(LogError::Poisoned)));
        drop(log);
        let (log, rep) = EventLog::open(LogConfig::new(&dir)).unwrap();
        assert_eq!(rep.high_water.seq, 4, "torn tail truncated, prefix intact");
        assert!(rep.truncated_bytes > 0 || rep.records == 4);
        assert!(!log.is_poisoned());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_reads_are_transient_and_retryable() {
        use psguard_net::DiskFaults;
        let dir = tmp("shortread");
        let (mut log, _) = EventLog::open(LogConfig::new(&dir)).unwrap();
        for i in 1..=10u64 {
            log.append(&payload(i)).unwrap();
        }
        drop(log);
        let plan = FaultPlan::new(5).with_disk_faults(DiskFaults {
            torn_write_p: 0.0,
            short_read_p: 0.5,
            fsync_fail_p: 0.0,
        });
        let (mut log, _) = EventLog::open_with_faults(LogConfig::new(&dir), plan).unwrap();
        let mut cur = log.replay_cursor(1);
        let mut out = Vec::new();
        let mut retries = 0;
        loop {
            match log.replay_next(&mut cur, 3, &mut out) {
                Ok(true) => {}
                Ok(false) => break,
                Err(LogError::ShortRead) => retries += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
            assert!(retries < 1000, "short reads must not livelock");
        }
        assert!(retries > 0, "p=0.5 must fire at least once");
        assert_eq!(out.len(), 10, "retries converge to full replay");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Reference seek: the pre-index algorithm, scanning record headers
    /// from the segment base.
    fn seek_by_scan(log: &EventLog, target: u64) -> (u64, u64) {
        let seg = log
            .segments
            .iter()
            .rev()
            .find(|s| s.base <= target && target <= s.last_seq)
            .expect("target in range");
        let data = fs::read(&seg.path).unwrap();
        let mut off = SEGMENT_HEADER_LEN;
        let mut seq = seg.base;
        while seq < target {
            let mut h = [0u8; RECORD_HEADER_LEN];
            h.copy_from_slice(&data[off..off + RECORD_HEADER_LEN]);
            let (body_len, _) = parse_header(h);
            off += RECORD_HEADER_LEN + body_len;
            seq += 1;
        }
        (seg.base, off as u64)
    }

    #[test]
    fn sparse_index_seek_equals_scan() {
        let dir = tmp("sparseseek");
        let mut cfg = LogConfig::new(&dir);
        cfg.segment_max_bytes = 8 << 10; // several segments, >32 recs each
        let (mut log, _) = EventLog::open(cfg.clone()).unwrap();
        // Variable-length payloads so record offsets are non-uniform.
        for i in 1..=300u64 {
            let mut p = payload(i);
            p.resize(40 + (i as usize * 13) % 90, 0xAB);
            log.append(&p).unwrap();
        }
        assert!(log.segments.len() > 1, "need multiple segments");
        assert!(
            log.segments.iter().all(|s| !s.index.is_empty()),
            "every segment samples its sparse index"
        );
        for target in 1..=300u64 {
            let mut cur = log.replay_cursor(target);
            log.reseek(&mut cur).unwrap();
            let (base, off) = seek_by_scan(&log, target);
            assert_eq!((cur.seg_base, cur.offset), (base, off), "seq {target}");
            // And the seek actually replays the right record first.
            let mut out = Vec::new();
            log.replay_next(&mut cur, 1, &mut out).unwrap();
            assert_eq!(out[0].0.seq, target);
        }

        // Recovery rebuilds the identical sparse index from disk.
        let before: Vec<_> = log
            .segments
            .iter()
            .map(|s| (s.base, s.index.clone()))
            .collect();
        drop(log);
        let (log, _) = EventLog::open(cfg).unwrap();
        let after: Vec<_> = log
            .segments
            .iter()
            .map(|s| (s.base, s.index.clone()))
            .collect();
        assert_eq!(before, after, "scan_and_repair rebuilds the same index");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_log_uses_config_epoch_and_reopen_keeps_disk_epoch() {
        let dir = tmp("epoch");
        let mut cfg = LogConfig::new(&dir);
        cfg.epoch = 7;
        let (mut log, _) = EventLog::open(cfg).unwrap();
        assert_eq!(log.epoch(), 7);
        log.append(&payload(1)).unwrap();
        drop(log);
        let mut cfg = LogConfig::new(&dir);
        cfg.epoch = 9; // ignored: disk already says 7
        let (log, rep) = EventLog::open(cfg).unwrap();
        assert_eq!(log.epoch(), 7);
        assert_eq!(rep.high_water, Cursor { epoch: 7, seq: 1 });
        let _ = fs::remove_dir_all(&dir);
    }
}
