//! On-disk record framing for the durable log.
//!
//! One record is `[u32 BE body_len ‖ u32 BE crc ‖ body]` where the body
//! is `[u32 BE epoch ‖ u64 BE seq ‖ payload]` — the same
//! length-prefixed discipline as the PR5 wire frames, with a CRC so a
//! torn append is detected on reopen instead of being replayed as
//! garbage. The payload is opaque ciphertext-plus-tokens bytes; this
//! module never interprets it.

/// Bytes of `[body_len ‖ crc]` preceding every record body.
pub(crate) const RECORD_HEADER_LEN: usize = 8;

/// Bytes of `[epoch ‖ seq]` at the front of every record body.
pub(crate) const BODY_PREFIX_LEN: usize = 12;

/// Upper bound on one record body: a maximal wire frame plus the
/// epoch/seq prefix. Anything larger read back from disk is corruption.
pub(crate) const MAX_BODY_LEN: usize = crate::wire::MAX_FRAME + BODY_PREFIX_LEN;

/// CRC-32 (IEEE, reflected — the zlib/ethernet polynomial) lookup
/// table, built at compile time so the scan path is a table walk.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32/IEEE over `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((c ^ b as u32) & 0xFF) as usize;
        c = CRC_TABLE[idx] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encodes one record into `buf` (cleared first): header, CRC, body.
pub(crate) fn encode_record(buf: &mut Vec<u8>, epoch: u32, seq: u64, payload: &[u8]) {
    buf.clear();
    let body_len = (BODY_PREFIX_LEN + payload.len()) as u32;
    buf.extend_from_slice(&body_len.to_be_bytes());
    buf.extend_from_slice(&[0u8; 4]); // CRC back-patched below
    buf.extend_from_slice(&epoch.to_be_bytes());
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(buf.get(RECORD_HEADER_LEN..).unwrap_or(&[]));
    if let Some(slot) = buf.get_mut(4..RECORD_HEADER_LEN) {
        slot.copy_from_slice(&crc.to_be_bytes());
    }
}

/// Splits a record header into `(body_len, crc)`.
pub(crate) fn parse_header(h: [u8; RECORD_HEADER_LEN]) -> (usize, u32) {
    let body_len = u32::from_be_bytes([h[0], h[1], h[2], h[3]]) as usize;
    let crc = u32::from_be_bytes([h[4], h[5], h[6], h[7]]);
    (body_len, crc)
}

/// Splits a verified record body into `(epoch, seq, payload)`; `None`
/// when the body is shorter than its fixed prefix.
pub(crate) fn parse_body(body: &[u8]) -> Option<(u32, u64, &[u8])> {
    let e = body.get(..4)?;
    let s = body.get(4..12)?;
    let payload = body.get(BODY_PREFIX_LEN..)?;
    let epoch = u32::from_be_bytes([e[0], e[1], e[2], e[3]]);
    let seq = u64::from_be_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]);
    Some((epoch, seq, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_roundtrips_through_parse() {
        let mut buf = Vec::new();
        encode_record(&mut buf, 7, 42, b"ciphertext-bytes");
        assert_eq!(buf.len(), RECORD_HEADER_LEN + BODY_PREFIX_LEN + 16);
        let mut h = [0u8; RECORD_HEADER_LEN];
        h.copy_from_slice(&buf[..RECORD_HEADER_LEN]);
        let (body_len, crc) = parse_header(h);
        let body = &buf[RECORD_HEADER_LEN..];
        assert_eq!(body_len, body.len());
        assert_eq!(crc, crc32(body));
        let (epoch, seq, payload) = parse_body(body).unwrap();
        assert_eq!((epoch, seq), (7, 42));
        assert_eq!(payload, b"ciphertext-bytes");
    }

    #[test]
    fn flipped_bit_fails_crc() {
        let mut buf = Vec::new();
        encode_record(&mut buf, 1, 1, b"payload");
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let mut h = [0u8; RECORD_HEADER_LEN];
        h.copy_from_slice(&buf[..RECORD_HEADER_LEN]);
        let (_, crc) = parse_header(h);
        assert_ne!(crc, crc32(&buf[RECORD_HEADER_LEN..]));
    }
}
