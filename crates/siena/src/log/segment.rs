//! Segment files: naming, headers, and the reopen-time repair scan.
//!
//! A log directory holds `seg-<base>.psl` files, each beginning with a
//! fixed header (`PSLG`, format version, epoch, base seq) followed by
//! records whose seqs run contiguously from `base`. The repair scan
//! validates a segment byte-by-byte and reports the longest valid
//! prefix, so a crash mid-append costs exactly the torn tail and
//! nothing else.

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

use super::record::{
    crc32, parse_body, parse_header, BODY_PREFIX_LEN, MAX_BODY_LEN, RECORD_HEADER_LEN,
};
use super::LogError;

/// Magic bytes opening every segment file.
pub(crate) const SEGMENT_MAGIC: [u8; 4] = *b"PSLG";

/// On-disk format version.
pub(crate) const SEGMENT_VERSION: u16 = 1;

/// Bytes of the segment header: magic, version, epoch, base seq.
pub(crate) const SEGMENT_HEADER_LEN: usize = 18;

/// Every how many records a segment samples a `(seq, offset)` pair into
/// its sparse seek index. A `catch_up_from` seek lands on the sampled
/// record at or before its target and scans forward at most this many
/// record headers, instead of scanning from the segment base —
/// `O(log samples + EVERY)` instead of `O(records)` per reseek.
pub(crate) const SPARSE_INDEX_EVERY: u64 = 32;

/// In-memory metadata for one on-disk segment.
#[derive(Debug, Clone)]
pub(crate) struct LogSegment {
    /// Seq of the first record in the file.
    pub(crate) base: u64,
    /// Seq of the last valid record.
    pub(crate) last_seq: u64,
    /// Valid bytes (header + records); the file is truncated to this.
    pub(crate) len: u64,
    /// Path of the backing file.
    pub(crate) path: PathBuf,
    /// Sparse seek index: `(seq, byte offset of that record's header)`
    /// for every [`SPARSE_INDEX_EVERY`]-th record, ascending. Maintained
    /// on append and rebuilt by [`scan_and_repair`] at reopen, so it is
    /// always consistent with the validated prefix of the file.
    pub(crate) index: Vec<(u64, u64)>,
}

/// File name for the segment starting at `base`.
pub(crate) fn file_name(base: u64) -> String {
    format!("seg-{base:020}.psl")
}

/// Parses a `seg-<base>.psl` file name back to its base seq.
pub(crate) fn parse_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".psl")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Serializes a segment header.
pub(crate) fn encode_header(epoch: u32, base: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..4].copy_from_slice(&SEGMENT_MAGIC);
    h[4..6].copy_from_slice(&SEGMENT_VERSION.to_be_bytes());
    h[6..10].copy_from_slice(&epoch.to_be_bytes());
    h[10..18].copy_from_slice(&base.to_be_bytes());
    h
}

/// Segment bases present in `dir`, sorted ascending.
pub(crate) fn list_bases(dir: &Path) -> Result<Vec<u64>, LogError> {
    let mut bases = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(base) = entry.file_name().to_str().and_then(parse_file_name) {
            bases.push(base);
        }
    }
    bases.sort_unstable();
    Ok(bases)
}

/// Outcome of scanning (and repairing) one segment at reopen.
#[derive(Debug, Clone)]
pub(crate) struct SegmentScan {
    /// Epoch recorded in the header.
    pub(crate) epoch: u32,
    /// Seq of the last valid record.
    pub(crate) last_seq: u64,
    /// Valid length the file was truncated to.
    pub(crate) len: u64,
    /// Valid records found.
    pub(crate) records: u64,
    /// Bytes cut off the tail (torn or corrupt).
    pub(crate) truncated_bytes: u64,
    /// Sparse seek index over the valid prefix (see
    /// [`LogSegment::index`]).
    pub(crate) index: Vec<(u64, u64)>,
}

/// Validates the segment at `path`, truncating any torn or corrupt
/// tail in place. Returns `Ok(None)` when the segment holds no valid
/// record at all (the caller deletes the file). When `expect_epoch` is
/// set, a header carrying a different epoch also yields `Ok(None)` —
/// segments of mixed epochs cannot belong to one log.
///
/// The scan accepts a record only if its length is in bounds, its CRC
/// matches, its epoch matches the header, and its seq continues the
/// contiguous run — everything from the first violation onward is the
/// torn tail.
pub(crate) fn scan_and_repair(
    path: &Path,
    base: u64,
    expect_epoch: Option<u32>,
) -> Result<Option<SegmentScan>, LogError> {
    let data = fs::read(path)?;
    let Some(header) = data.get(..SEGMENT_HEADER_LEN) else {
        return Ok(None); // crash before the header finished
    };
    if header[..4] != SEGMENT_MAGIC {
        return Ok(None);
    }
    let version = u16::from_be_bytes([header[4], header[5]]);
    if version != SEGMENT_VERSION {
        return Ok(None);
    }
    let epoch = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
    let header_base = u64::from_be_bytes([
        header[10], header[11], header[12], header[13], header[14], header[15], header[16],
        header[17],
    ]);
    if header_base != base || expect_epoch.is_some_and(|e| e != epoch) {
        return Ok(None);
    }

    let mut off = SEGMENT_HEADER_LEN;
    let mut next = base;
    let mut last_seq = None;
    let mut index = Vec::new();
    // Ends at the clean end of data or at a torn mid-header tail.
    while let Some(h) = data.get(off..off + RECORD_HEADER_LEN) {
        let mut harr = [0u8; RECORD_HEADER_LEN];
        harr.copy_from_slice(h);
        let (body_len, crc) = parse_header(harr);
        if !(BODY_PREFIX_LEN..=MAX_BODY_LEN).contains(&body_len) {
            break; // corrupt length
        }
        let body_start = off + RECORD_HEADER_LEN;
        let Some(body) = data.get(body_start..body_start + body_len) else {
            break; // torn mid-body
        };
        if crc32(body) != crc {
            break;
        }
        let Some((rec_epoch, seq, _)) = parse_body(body) else {
            break;
        };
        if rec_epoch != epoch || seq != next {
            break;
        }
        if (seq - base).is_multiple_of(SPARSE_INDEX_EVERY) {
            index.push((seq, off as u64));
        }
        last_seq = Some(seq);
        next += 1;
        off = body_start + body_len;
    }

    let Some(last_seq) = last_seq else {
        return Ok(None); // header only / nothing valid: delete the file
    };
    let truncated_bytes = (data.len() - off) as u64;
    if truncated_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(off as u64)?;
        file.sync_data()?;
    }
    Ok(Some(SegmentScan {
        epoch,
        last_seq,
        len: off as u64,
        records: next - base,
        truncated_bytes,
        index,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_and_sort_lexicographically() {
        for base in [1u64, 9, 10, 4096, u64::MAX] {
            assert_eq!(parse_file_name(&file_name(base)), Some(base));
        }
        assert!(file_name(9) < file_name(10), "zero padding keeps order");
        assert_eq!(parse_file_name("seg-1.psl"), None, "unpadded rejected");
        assert_eq!(parse_file_name("other.txt"), None);
    }

    #[test]
    fn header_encodes_magic_version_epoch_base() {
        let h = encode_header(3, 77);
        assert_eq!(&h[..4], b"PSLG");
        assert_eq!(u16::from_be_bytes([h[4], h[5]]), SEGMENT_VERSION);
        assert_eq!(u32::from_be_bytes([h[6], h[7], h[8], h[9]]), 3);
        assert_eq!(h[10..18], 77u64.to_be_bytes());
    }
}
