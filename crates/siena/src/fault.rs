//! Failure recovery for the overlay engine: the [`Engine`] run under a
//! seeded [`FaultPlan`], with per-hop ack/retransmit, sequence-number
//! dedup, heartbeat-based failure detection, and subscription-state
//! re-propagation when a crashed broker restarts.
//!
//! The paper's resilience argument (§4.2) is made for the abstract
//! multi-path tree; this module gives the *overlay engine* the same
//! machinery so delivery under faults can be measured on the simulated
//! broker tree (and compared against the analytic curves — see
//! `psguard_routing::overlay`). Design notes in DESIGN.md §11.
//!
//! Recovery semantics, layer by layer:
//!
//! * **Link loss / duplication / jitter** — every inter-node send goes
//!   through [`Simulator::send_faulty`]; with [`RecoveryConfig`] enabled,
//!   each data hop is acked by the receiver and retransmitted by the
//!   sender with exponential backoff until acked or abandoned.
//! * **Duplicates** (link-level or retransmit-induced) — every node keeps
//!   a bounded [`SeqDedup`] window over event sequence numbers; duplicate
//!   copies are re-acked but not re-forwarded or re-delivered.
//! * **Crashes** — a node inside a crash window silently discards
//!   arrivals (no acks, so senders keep retrying). At the restart instant
//!   the broker's subscription table is rebuilt from the engine's
//!   registration ground truth (modeling the children's re-announcement,
//!   collapsed to an atomic replay).
//! * **Heartbeats** — brokers exchange heartbeats with their tree
//!   neighbors; a parent that misses `heartbeat_miss_limit` intervals
//!   from a child evicts the child's subscriptions (graceful
//!   degradation), and reinstalls them when the child is heard again.

use std::collections::{HashMap, HashSet, VecDeque};

use psguard_net::{FaultPlan, FaultStats, NodeId, SimTime, Simulator};

use crate::broker::{Action, Broker};
use crate::engine::{CostModel, Engine};
use crate::index::IndexableFilter;
use crate::table::Peer;

/// Ack/retransmit, dedup, and heartbeat parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Extra wait beyond the round-trip before the first retransmission.
    pub ack_timeout_us: u64,
    /// Retransmissions attempted before a hop is abandoned.
    pub max_retries: u32,
    /// Cap on the exponentially backed-off retransmit interval.
    pub backoff_cap_us: u64,
    /// Sequence-number window remembered per node for duplicate
    /// suppression (0 disables dedup).
    pub dedup_window: usize,
    /// Interval between broker heartbeats (0 disables heartbeats and
    /// eviction).
    pub heartbeat_interval_us: u64,
    /// Missed intervals before a silent child broker is evicted.
    pub heartbeat_miss_limit: u32,
    /// Model brokers as keeping a durable event log (the TCP transport's
    /// `EventLog`): a crash no longer wipes the node's dedup window (at
    /// restart it is re-seeded from the recovered log's high-water mark,
    /// so post-restart duplicates are *counted*, not re-delivered), the
    /// node's unacked outbound hops survive the window (replayed from
    /// the log), and retries at a crashed sender wait out the outage
    /// instead of burning their budget.
    pub durable_log: bool,
}

impl RecoveryConfig {
    /// Defaults sized for the paper's wide-area latency regime (one-way
    /// 12–92 ms): first retransmit ≈ RTT + 400 ms, doubling to a 6.4 s
    /// cap, 12 retries, 1 s heartbeats with eviction after 3 misses.
    pub fn overlay_default() -> Self {
        RecoveryConfig {
            ack_timeout_us: 400_000,
            max_retries: 12,
            backoff_cap_us: 6_400_000,
            dedup_window: 4096,
            heartbeat_interval_us: 1_000_000,
            heartbeat_miss_limit: 3,
            durable_log: false,
        }
    }

    /// The overlay defaults with heartbeats (and eviction) disabled —
    /// retransmission and dedup only.
    pub fn no_heartbeats() -> Self {
        RecoveryConfig {
            heartbeat_interval_us: 0,
            ..Self::overlay_default()
        }
    }

    /// The overlay defaults with durable broker logs — crash windows
    /// preserve dedup state and unacked outbound hops.
    pub fn durable() -> Self {
        RecoveryConfig {
            durable_log: true,
            ..Self::overlay_default()
        }
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self::overlay_default()
    }
}

/// A scheduled mid-run unsubscription of every filter a client holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Revocation {
    /// The subscriber client to revoke.
    pub client: u32,
    /// When the revocation takes effect at the client's attach broker.
    pub at_us: SimTime,
}

/// Everything a faulty run needs besides the workload.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// The seeded fault model.
    pub plan: FaultPlan,
    /// Recovery machinery; `None` observes raw loss (no acks, no dedup).
    pub recovery: Option<RecoveryConfig>,
    /// Mid-run revocations.
    pub revocations: Vec<Revocation>,
    /// Whether to keep a per-delivery record (used by the chaos suite's
    /// invariant checks; off by default to keep the zero-fault path lean).
    pub record_deliveries: bool,
}

impl FaultConfig {
    /// A fault-free plan with recovery disabled: the pay-for-what-you-use
    /// baseline, behaviorally identical to [`Engine::run`].
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            plan: FaultPlan::none(seed),
            recovery: None,
            revocations: Vec::new(),
            record_deliveries: false,
        }
    }

    /// A plan with default recovery enabled.
    pub fn with_recovery(plan: FaultPlan) -> Self {
        FaultConfig {
            plan,
            recovery: Some(RecoveryConfig::default()),
            revocations: Vec::new(),
            record_deliveries: false,
        }
    }
}

/// One event copy delivered to a subscriber (after dedup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// The receiving client.
    pub client: u32,
    /// The event's publication sequence number.
    pub event_seq: u64,
    /// Publication time (µs).
    pub sent_at: SimTime,
    /// Delivery (post-processing) time (µs).
    pub delivered_at: SimTime,
}

/// Result of one faulty run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRunReport {
    /// Events published.
    pub published: u64,
    /// Event copies delivered to subscribers (after dedup).
    pub delivered: u64,
    /// Duplicate copies suppressed by receiver dedup windows.
    pub duplicates_suppressed: u64,
    /// Hop retransmissions performed.
    pub retransmissions: u64,
    /// Hops abandoned after exhausting retries.
    pub abandoned: u64,
    /// Messages discarded because the receiving node was crashed.
    pub lost_to_dead_node: u64,
    /// Child-broker evictions after missed heartbeats.
    pub evictions: u64,
    /// Subscription reinstalls (broker restarts + evicted peers heard
    /// again).
    pub reinstalls: u64,
    /// Mean publish→deliver latency (ms) over delivered copies.
    pub mean_latency_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_latency_ms: f64,
    /// Maximum node utilization.
    pub max_utilization: f64,
    /// Whether some node saturated.
    pub saturated: bool,
    /// What the fault plan did to the traffic.
    pub fault_stats: FaultStats,
    /// Revocations applied, with their effective times.
    pub revoked: Vec<(u32, SimTime)>,
    /// Per-delivery records (only when `record_deliveries` was set).
    pub deliveries: Vec<DeliveryRecord>,
}

impl FaultRunReport {
    /// Fraction of published events delivered, normalized by the expected
    /// copy count (`published × subscribers` for all-matching workloads).
    pub fn delivery_fraction(&self, expected_copies: u64) -> f64 {
        if expected_copies == 0 {
            return 1.0;
        }
        self.delivered as f64 / expected_copies as f64
    }
}

/// A bounded first-seen window over event sequence numbers — the
/// engine-side counterpart of `psguard_routing::DedupWindow` (that crate
/// sits above this one, so the sliding-window design is restated here for
/// `u64` keys rather than imported).
#[derive(Debug, Clone, Default)]
pub struct SeqDedup {
    capacity: usize,
    seen: HashSet<u64>,
    order: VecDeque<u64>,
}

impl SeqDedup {
    /// A window remembering up to `capacity` sequence numbers
    /// (`capacity == 0` disables suppression).
    pub fn new(capacity: usize) -> Self {
        SeqDedup {
            capacity,
            seen: HashSet::new(),
            order: VecDeque::new(),
        }
    }

    /// Whether `seq` is new; records it if so.
    pub fn first_seen(&mut self, seq: u64) -> bool {
        if self.capacity == 0 {
            return true;
        }
        if self.seen.contains(&seq) {
            return false;
        }
        if self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.seen.insert(seq);
        self.order.push_back(seq);
        true
    }

    /// Forgets everything (a crashed node loses its window).
    pub fn clear(&mut self) {
        self.seen.clear();
        self.order.clear();
    }

    /// Sequence numbers currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum FMsg<E> {
    /// An event copy arriving at a broker node.
    Data {
        seq: u64,
        sent_at: SimTime,
        event: E,
        from: Peer,
        hop: u64,
    },
    /// Final delivery to a subscriber node.
    Local {
        seq: u64,
        sent_at: SimTime,
        event: E,
        from_node: u32,
        hop: u64,
    },
    /// Hop acknowledgement, addressed to the sending node.
    Ack { hop: u64 },
    /// Retransmit timer at the sending node.
    Retry { hop: u64 },
    /// Periodic heartbeat timer at a broker node.
    HbTick,
    /// A heartbeat received from a neighbor broker.
    Heartbeat { from_node: u32 },
    /// Node enters its crash window (state is lost).
    Crash,
    /// Node restarts (subscription state is rebuilt).
    Restart,
    /// Revocation control event at the client's attach broker.
    Revoke { client: u32 },
}

struct PendingHop<E> {
    src: usize,
    dst: usize,
    latency: u64,
    attempts: u32,
    msg: FMsg<E>,
}

/// Sentinel hop id meaning "not acked" (publisher-local arrivals).
const NO_HOP: u64 = 0;

impl<F: IndexableFilter> Engine<F>
where
    F::Event: Eq,
{
    /// One-way latency (µs) of the overlay link between adjacent engine
    /// nodes `a` and `b` (parent/child brokers, or broker/subscriber).
    fn hop_latency(&self, a: usize, b: usize) -> u64 {
        let brokers = self.subscriber_base;
        if a >= brokers {
            return self.access_latency[a - brokers];
        }
        if b >= brokers {
            return self.access_latency[b - brokers];
        }
        if self.parent_of[a] == Some(b) {
            self.link_up[a]
        } else {
            debug_assert_eq!(self.parent_of[b], Some(a), "not an overlay edge");
            self.link_up[b]
        }
    }

    /// The peer through which `client`'s subscription reaches broker `b`,
    /// or `None` when `b` is not on the path from the client's attach
    /// broker to the root.
    fn peer_into(&self, b: usize, client: u32) -> Option<Peer> {
        let mut node = self.attach[client as usize];
        if node == b {
            return Some(Peer::Local(client));
        }
        while let Some(parent) = self.parent_of[node] {
            if parent == b {
                return Some(Peer::Child(node as u32));
            }
            node = parent;
        }
        None
    }

    /// Rebuilds broker `b`'s subscription table from the registration
    /// ground truth (restart recovery).
    fn rebuild_broker(&mut self, b: usize) {
        self.brokers[b] = Broker::new(b == 0);
        let regs: Vec<(u32, F)> = self.registered.clone();
        for (client, filter) in regs {
            if let Some(from) = self.peer_into(b, client) {
                self.brokers[b].subscribe(from, filter);
            }
        }
    }

    /// Reinstalls at broker `n` the subscriptions arriving through child
    /// broker `c` (post-eviction recovery).
    fn reinstall_child(&mut self, n: usize, c: u32) {
        let regs: Vec<(u32, F)> = self.registered.clone();
        for (client, filter) in regs {
            if self.peer_into(n, client) == Some(Peer::Child(c)) {
                self.brokers[n].subscribe(Peer::Child(c), filter);
            }
        }
    }

    /// Runs a fixed-rate workload under a [`FaultPlan`] with the given
    /// recovery semantics. With [`FaultConfig::none`] this is behaviorally
    /// identical to [`Engine::run`] — the fault layer is pay-for-what-you-
    /// use. Control traffic (acks, heartbeats, timers) is not charged
    /// node service time; the queueing model prices data copies exactly
    /// as [`Engine::run`] does.
    ///
    /// # Panics
    ///
    /// Panics when `events` is empty or `rate_eps` is not positive
    /// (matching [`Engine::run`]).
    pub fn run_faulty(
        &mut self,
        events: &[F::Event],
        rate_eps: f64,
        duration_s: f64,
        cost: &CostModel,
        fault: &mut FaultConfig,
    ) -> FaultRunReport {
        assert!(!events.is_empty(), "workload must contain events");
        assert!(rate_eps > 0.0, "rate must be positive");
        let duration_us = (duration_s * 1e6) as u64;
        let interarrival = (1e6 / rate_eps).max(1.0);
        let recovery = fault.recovery;
        let plan = &mut fault.plan;

        let total_brokers = self.subscriber_base;
        let n_nodes = total_brokers + self.config.subscribers as usize;
        let mut busy_until = vec![0u64; n_nodes];
        let mut busy_acc = vec![0u64; n_nodes];
        let mut latencies: Vec<u64> = Vec::new();
        let mut deliveries: Vec<DeliveryRecord> = Vec::new();
        let mut delivered = 0u64;
        let mut duplicates_suppressed = 0u64;
        let mut retransmissions = 0u64;
        let mut abandoned = 0u64;
        let mut lost_to_dead_node = 0u64;
        let mut evictions = 0u64;
        let mut reinstalls = 0u64;
        let mut revoked: Vec<(u32, SimTime)> = Vec::new();

        let dedup_cap = recovery.map(|r| r.dedup_window).unwrap_or(0);
        let mut dedup: Vec<SeqDedup> = (0..n_nodes).map(|_| SeqDedup::new(dedup_cap)).collect();
        let mut pending: HashMap<u64, PendingHop<F::Event>> = HashMap::new();
        let mut hop_counter: u64 = NO_HOP;
        // Liveness bookkeeping for heartbeats: (listener, speaker) → last
        // heard time. Time 0 counts as "just heard" (startup grace).
        let mut last_heard: HashMap<(usize, usize), SimTime> = HashMap::new();
        let mut evicted: HashSet<(usize, usize)> = HashSet::new();

        let mut sim: Simulator<FMsg<F::Event>> = Simulator::new();

        // Retry budget bounds how long after the last publication the
        // overlay can still be working; heartbeats stop past this horizon
        // so the simulation drains.
        let retry_budget = recovery
            .map(|r| r.max_retries as u64 * r.backoff_cap_us + 8 * r.ack_timeout_us)
            .unwrap_or(0);
        let hb_horizon = duration_us + retry_budget + 2_000_000;

        // Pre-scheduled control events get the smallest sequence numbers,
        // so at equal timestamps Crash/Restart/Revoke are processed before
        // any data arriving at the same instant.
        for &(node, window) in plan.crash_windows() {
            let n = node.0 as usize;
            if n < n_nodes {
                sim.schedule_at(window.from, node, FMsg::Crash);
                sim.schedule_at(window.until, node, FMsg::Restart);
            }
        }
        for r in &fault.revocations {
            let broker = self.attach[r.client as usize];
            sim.schedule_at(
                r.at_us,
                NodeId(broker as u32),
                FMsg::Revoke { client: r.client },
            );
        }
        if let Some(rec) = recovery {
            if rec.heartbeat_interval_us > 0 {
                for b in 0..total_brokers {
                    sim.schedule_at(rec.heartbeat_interval_us, NodeId(b as u32), FMsg::HbTick);
                }
            }
        }

        // Publication arrivals at the publisher (node 0), fixed-interval.
        let mut t = 0.0f64;
        let mut seq = 0u64;
        while (t as u64) < duration_us {
            sim.schedule_at(
                t as u64,
                NodeId(0),
                FMsg::Data {
                    seq,
                    sent_at: t as u64,
                    event: events[(seq as usize) % events.len()].clone(),
                    from: Peer::Local(u32::MAX),
                    hop: NO_HOP,
                },
            );
            seq += 1;
            t += interarrival;
        }
        let published = seq;

        let hb_budget = recovery
            .filter(|r| r.heartbeat_interval_us > 0)
            .map(|r| (hb_horizon / r.heartbeat_interval_us + 2) * total_brokers as u64 * 5)
            .unwrap_or(0);
        let retries = recovery.map(|r| r.max_retries as u64).unwrap_or(0);
        let max_events = published * (n_nodes as u64 + 4) * (4 + retries) + hb_budget + 100_000;

        let mut processed = 0u64;
        while let Some(d) = sim.next() {
            processed += 1;
            if processed > max_events {
                break;
            }
            let node = d.dst.0 as usize;
            let at = d.at;
            match d.msg {
                FMsg::Data {
                    seq,
                    sent_at,
                    event,
                    from,
                    hop,
                } => {
                    if !plan.is_up(d.dst, at) {
                        lost_to_dead_node += 1;
                        continue;
                    }
                    let sender = match from {
                        Peer::Child(c) => Some(c as usize),
                        Peer::Parent => self.parent_of[node],
                        Peer::Local(_) => None,
                    };
                    if let (Some(rec), Some(src)) = (recovery, sender) {
                        if hop != NO_HOP {
                            let lat = self.hop_latency(node, src);
                            sim.send_faulty(
                                plan,
                                d.dst,
                                NodeId(src as u32),
                                lat,
                                FMsg::Ack { hop },
                            );
                        }
                        if rec.heartbeat_interval_us > 0 && src < total_brokers {
                            last_heard.insert((node, src), at);
                        }
                    }
                    if dedup_cap > 0 && !dedup[node].first_seen(seq) {
                        duplicates_suppressed += 1;
                        continue;
                    }

                    let start = at.max(busy_until[node]);
                    let actions = self.brokers[node].publish(from, event);
                    let match_cost = cost.broker_match_us * self.brokers[node].last_match_work();
                    let fixed = if node == 0 {
                        cost.publisher_us + match_cost
                    } else {
                        match_cost
                    };
                    let mut finish = start + fixed.max(1);
                    let mut departures = Vec::with_capacity(actions.len());
                    for _ in 0..actions.len() {
                        finish += cost.broker_forward_us;
                        departures.push(finish);
                    }
                    busy_until[node] = finish;
                    busy_acc[node] += finish - start;
                    for (action, depart) in actions.into_iter().zip(departures) {
                        let (dst, latency, msg) = match action {
                            Action::Deliver(Peer::Child(c), e) => {
                                let child = c as usize;
                                hop_counter += 1;
                                (
                                    child,
                                    self.link_up[child],
                                    FMsg::Data {
                                        seq,
                                        sent_at,
                                        event: e,
                                        from: Peer::Parent,
                                        hop: hop_counter,
                                    },
                                )
                            }
                            Action::Deliver(Peer::Parent, e) => {
                                let Some(parent) = self.parent_of[node] else {
                                    continue;
                                };
                                hop_counter += 1;
                                (
                                    parent,
                                    self.link_up[node],
                                    FMsg::Data {
                                        seq,
                                        sent_at,
                                        event: e,
                                        from: Peer::Child(node as u32),
                                        hop: hop_counter,
                                    },
                                )
                            }
                            Action::Deliver(Peer::Local(client), e) => {
                                hop_counter += 1;
                                (
                                    self.subscriber_base + client as usize,
                                    self.access_latency[client as usize],
                                    FMsg::Local {
                                        seq,
                                        sent_at,
                                        event: e,
                                        from_node: node as u32,
                                        hop: hop_counter,
                                    },
                                )
                            }
                            Action::ForwardSubscribe(_) | Action::ForwardUnsubscribe(_) => {
                                continue;
                            }
                        };
                        let base = (depart - at) + latency;
                        if let Some(rec) = recovery {
                            sim.send_faulty(plan, d.dst, NodeId(dst as u32), base, msg.clone());
                            pending.insert(
                                hop_counter,
                                PendingHop {
                                    src: node,
                                    dst,
                                    latency,
                                    attempts: 0,
                                    msg,
                                },
                            );
                            let timeout = base + latency + rec.ack_timeout_us;
                            sim.schedule_in(timeout, d.dst, FMsg::Retry { hop: hop_counter });
                        } else {
                            sim.send_faulty(plan, d.dst, NodeId(dst as u32), base, msg);
                        }
                    }
                }
                FMsg::Local {
                    seq,
                    sent_at,
                    event: _,
                    from_node,
                    hop,
                } => {
                    if !plan.is_up(d.dst, at) {
                        lost_to_dead_node += 1;
                        continue;
                    }
                    if recovery.is_some() && hop != NO_HOP {
                        let lat = self.hop_latency(node, from_node as usize);
                        sim.send_faulty(plan, d.dst, NodeId(from_node), lat, FMsg::Ack { hop });
                    }
                    if dedup_cap > 0 && !dedup[node].first_seen(seq) {
                        duplicates_suppressed += 1;
                        continue;
                    }
                    let start = at.max(busy_until[node]);
                    let finish = start + cost.subscriber_us.max(1);
                    busy_until[node] = finish;
                    busy_acc[node] += cost.subscriber_us.max(1);
                    latencies.push(finish - sent_at);
                    delivered += 1;
                    if fault.record_deliveries {
                        deliveries.push(DeliveryRecord {
                            client: (node - self.subscriber_base) as u32,
                            event_seq: seq,
                            sent_at,
                            delivered_at: finish,
                        });
                    }
                }
                FMsg::Ack { hop } => {
                    if plan.is_up(d.dst, at) {
                        pending.remove(&hop);
                    }
                }
                FMsg::Retry { hop } => {
                    let Some(rec) = recovery else { continue };
                    let Some(p) = pending.get_mut(&hop) else {
                        continue;
                    };
                    if rec.durable_log && !plan.is_up(NodeId(p.src as u32), at) {
                        // The sender is inside a crash window but its log
                        // is durable: the hop resumes from the log after
                        // restart instead of burning its retry budget
                        // while the node is down.
                        if at + rec.ack_timeout_us <= hb_horizon {
                            sim.schedule_in(
                                rec.ack_timeout_us,
                                NodeId(p.src as u32),
                                FMsg::Retry { hop },
                            );
                        } else {
                            pending.remove(&hop);
                            abandoned += 1;
                        }
                        continue;
                    }
                    p.attempts += 1;
                    if p.attempts > rec.max_retries {
                        pending.remove(&hop);
                        abandoned += 1;
                        continue;
                    }
                    retransmissions += 1;
                    let (src, dst, latency) = (p.src, p.dst, p.latency);
                    let msg = p.msg.clone();
                    let backoff =
                        (rec.ack_timeout_us << p.attempts.min(24)).min(rec.backoff_cap_us);
                    sim.send_faulty(plan, NodeId(src as u32), NodeId(dst as u32), latency, msg);
                    sim.schedule_in(
                        2 * latency + backoff,
                        NodeId(src as u32),
                        FMsg::Retry { hop },
                    );
                }
                FMsg::HbTick => {
                    let Some(rec) = recovery else { continue };
                    let interval = rec.heartbeat_interval_us;
                    if plan.is_up(d.dst, at) {
                        let parent = self.parent_of[node];
                        let children: Vec<usize> = [2 * node + 1, 2 * node + 2]
                            .into_iter()
                            .filter(|&c| c < total_brokers)
                            .collect();
                        for nb in parent.into_iter().chain(children.iter().copied()) {
                            let lat = self.hop_latency(node, nb);
                            sim.send_faulty(
                                plan,
                                d.dst,
                                NodeId(nb as u32),
                                lat,
                                FMsg::Heartbeat {
                                    from_node: node as u32,
                                },
                            );
                        }
                        let deadline = interval * rec.heartbeat_miss_limit as u64;
                        for c in children {
                            let last = last_heard.get(&(node, c)).copied().unwrap_or(0);
                            if at > deadline && at - last > deadline && evicted.insert((node, c)) {
                                self.brokers[node].peer_down(Peer::Child(c as u32));
                                evictions += 1;
                            }
                        }
                    }
                    if at + interval <= hb_horizon {
                        sim.schedule_in(interval, d.dst, FMsg::HbTick);
                    }
                }
                FMsg::Heartbeat { from_node } => {
                    if !plan.is_up(d.dst, at) {
                        continue;
                    }
                    let speaker = from_node as usize;
                    last_heard.insert((node, speaker), at);
                    if evicted.remove(&(node, speaker)) {
                        self.reinstall_child(node, from_node);
                        reinstalls += 1;
                    }
                }
                FMsg::Crash => {
                    if recovery.is_some_and(|r| r.durable_log) {
                        // Durable log: the restart re-seeds the dedup
                        // window from the recovered high-water mark and
                        // replays unacked hops, so both survive the
                        // window — post-restart duplicates get counted
                        // (suppressed), never re-delivered.
                    } else {
                        // Sender-side reliability state at the crashed
                        // node is gone; in-flight copies stay on the
                        // wire.
                        pending.retain(|_, p| p.src != node);
                        dedup[node].clear();
                    }
                    if node < total_brokers {
                        self.brokers[node] = Broker::new(node == 0);
                    }
                }
                FMsg::Restart => {
                    if node < total_brokers {
                        self.rebuild_broker(node);
                        reinstalls += 1;
                    }
                }
                FMsg::Revoke { client } => {
                    let filters: Vec<F> = self
                        .registered
                        .iter()
                        .filter(|(c, _)| *c == client)
                        .map(|(_, f)| f.clone())
                        .collect();
                    self.registered.retain(|(c, _)| *c != client);
                    if plan.is_up(d.dst, at) {
                        for f in filters {
                            let mut n = node;
                            let mut actions = self.brokers[n].unsubscribe(Peer::Local(client), &f);
                            while let Some(Action::ForwardUnsubscribe(uf)) = actions.pop() {
                                let Some(parent) = self.parent_of[n] else {
                                    break;
                                };
                                let from = Peer::Child(n as u32);
                                n = parent;
                                actions = self.brokers[n].unsubscribe(from, &uf);
                            }
                        }
                    }
                    revoked.push((client, at));
                }
            }
        }

        let denom = duration_us.max(1) as f64;
        let max_utilization = busy_acc
            .iter()
            .map(|&b| b as f64 / denom)
            .fold(0.0, f64::max);
        latencies.sort_unstable();
        let mean_latency_ms = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1000.0
        };
        let p99_latency_ms = latencies
            .get((latencies.len().saturating_sub(1)) * 99 / 100)
            .map(|&v| v as f64 / 1000.0)
            .unwrap_or(0.0);

        FaultRunReport {
            published,
            delivered,
            duplicates_suppressed,
            retransmissions,
            abandoned,
            lost_to_dead_node,
            evictions,
            reinstalls,
            mean_latency_ms,
            p99_latency_ms,
            max_utilization,
            saturated: max_utilization >= 0.98,
            fault_stats: plan.stats(),
            revoked,
            deliveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use psguard_model::{Event, Filter};
    use psguard_net::{LinkFaults, Window};

    fn mk_engine(brokers: u32, subs: u32) -> Engine<Filter> {
        Engine::new(EngineConfig {
            broker_nodes: brokers,
            subscribers: subs,
            seed: 42,
        })
    }

    fn workload() -> Vec<Event> {
        (0..16)
            .map(|i| Event::builder("t").attr("x", i as i64 * 10).build())
            .collect()
    }

    #[test]
    fn seq_dedup_window_behaves_like_routing_dedup() {
        let mut w = SeqDedup::new(2);
        assert!(w.first_seen(1));
        assert!(!w.first_seen(1));
        assert!(w.first_seen(2));
        assert!(w.first_seen(3)); // evicts 1
        assert!(w.first_seen(1));
        assert_eq!(w.len(), 2);
        w.clear();
        assert!(w.is_empty());
        let mut off = SeqDedup::new(0);
        assert!(off.first_seen(7));
        assert!(off.first_seen(7));
    }

    #[test]
    fn zero_fault_plan_matches_plain_run() {
        let events = workload();
        let mut a = mk_engine(6, 8);
        let mut b = mk_engine(6, 8);
        for c in 0..8 {
            a.subscribe(c, Filter::for_topic("t"));
            b.subscribe(c, Filter::for_topic("t"));
        }
        let plain = a.run(&events, 50.0, 1.0, &CostModel::plain());
        let mut cfg = FaultConfig::none(1);
        let faulty = b.run_faulty(&events, 50.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(faulty.published, plain.published);
        assert_eq!(faulty.delivered, plain.delivered);
        assert!((faulty.mean_latency_ms - plain.mean_latency_ms).abs() < 1e-9);
        assert_eq!(faulty.retransmissions, 0);
        assert_eq!(faulty.fault_stats.dropped, 0);
    }

    #[test]
    fn drops_without_recovery_lose_events() {
        let events = workload();
        let mut eng = mk_engine(6, 8);
        for c in 0..8 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let plan = FaultPlan::new(3).with_default_link_faults(LinkFaults::drops(0.3));
        let mut cfg = FaultConfig {
            plan,
            recovery: None,
            revocations: Vec::new(),
            record_deliveries: false,
        };
        let r = eng.run_faulty(&events, 50.0, 1.0, &CostModel::plain(), &mut cfg);
        assert!(r.delivered < r.published * 8, "drops must lose copies");
        assert!(r.fault_stats.dropped > 0);
    }

    #[test]
    fn retransmit_recovers_exactly_once_under_drops() {
        let events = workload();
        let mut eng = mk_engine(6, 8);
        for c in 0..8 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let plan = FaultPlan::new(5).with_default_link_faults(LinkFaults {
            drop_p: 0.25,
            dup_p: 0.1,
            jitter_us: 10_000,
        });
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(r.delivered, r.published * 8, "exactly-once: {r:?}");
        assert!(r.retransmissions > 0);
        // Every (client, seq) pair appears exactly once.
        let mut seen = HashSet::new();
        for d in &r.deliveries {
            assert!(seen.insert((d.client, d.event_seq)), "duplicate {d:?}");
        }
    }

    #[test]
    fn crashed_broker_recovers_after_restart() {
        let events = workload();
        let mut eng = mk_engine(2, 4);
        for c in 0..4 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        // Broker 1 is down for the middle of the run; retransmission must
        // carry every event over the outage.
        let mut plan = FaultPlan::new(9);
        plan.add_crash(NodeId(1), Window::new(300_000, 1_200_000));
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        let r = eng.run_faulty(&events, 30.0, 1.0, &CostModel::plain(), &mut cfg);
        assert!(r.lost_to_dead_node > 0, "crash window must bite: {r:?}");
        assert_eq!(
            r.delivered,
            r.published * 4,
            "retransmit over outage: {r:?}"
        );
    }

    #[test]
    fn durable_log_crash_counts_duplicates_instead_of_redelivering() {
        let events = workload();
        let mut eng = mk_engine(2, 4);
        for c in 0..4 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        // Duplicating links plus a mid-run crash: without the durable
        // log the restarted broker forgets its dedup window and would
        // re-forward late copies; with it, they are suppressed.
        let mut plan = FaultPlan::new(17).with_default_link_faults(LinkFaults {
            drop_p: 0.1,
            dup_p: 0.25,
            jitter_us: 10_000,
        });
        plan.add_crash(NodeId(1), Window::new(300_000, 900_000));
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig {
            heartbeat_interval_us: 0,
            durable_log: true,
            ..RecoveryConfig::overlay_default()
        });
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(r.delivered, r.published * 4, "exactly-once: {r:?}");
        assert!(r.duplicates_suppressed > 0, "dups must be counted: {r:?}");
        let mut seen = HashSet::new();
        for d in &r.deliveries {
            assert!(seen.insert((d.client, d.event_seq)), "duplicate {d:?}");
        }
    }

    #[test]
    fn durable_log_survives_outage_longer_than_retry_budget() {
        let events = workload();
        // A retry budget far shorter than the outage: only the durable
        // log's wait-out-the-window behaviour can carry the crashed
        // sender's unacked hops across it.
        let short_budget = RecoveryConfig {
            max_retries: 2,
            ack_timeout_us: 50_000,
            backoff_cap_us: 100_000,
            heartbeat_interval_us: 0,
            ..RecoveryConfig::overlay_default()
        };
        let run = |durable: bool| {
            let mut eng = mk_engine(2, 4);
            for c in 0..4 {
                eng.subscribe(c, Filter::for_topic("t"));
            }
            let mut plan = FaultPlan::new(23).with_default_link_faults(LinkFaults {
                drop_p: 0.4,
                dup_p: 0.0,
                jitter_us: 5_000,
            });
            plan.add_crash(NodeId(1), Window::new(200_000, 1_500_000));
            let mut cfg = FaultConfig::with_recovery(plan);
            cfg.recovery = Some(RecoveryConfig {
                durable_log: durable,
                ..short_budget
            });
            eng.run_faulty(&events, 30.0, 1.0, &CostModel::plain(), &mut cfg)
        };
        let flaky = run(false);
        let durable = run(true);
        // The non-durable crash silently discards the dead sender's
        // unacked hops; the durable log carries them over the window, so
        // for this seed it strictly recovers copies the baseline loses.
        assert!(
            durable.delivered > flaky.delivered,
            "durable log must recover copies: {durable:?} vs {flaky:?}"
        );
    }

    #[test]
    fn revocation_stops_future_deliveries() {
        let events = workload();
        let mut eng = mk_engine(6, 8);
        for c in 0..8 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let revoke_at = 500_000;
        let mut cfg = FaultConfig::none(2);
        cfg.revocations = vec![Revocation {
            client: 3,
            at_us: revoke_at,
        }];
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 50.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(r.revoked, vec![(3, revoke_at)]);
        for d in r.deliveries.iter().filter(|d| d.client == 3) {
            assert!(
                d.sent_at < revoke_at,
                "event published at {} delivered to revoked client",
                d.sent_at
            );
        }
        // The other clients still get everything.
        let others = r.deliveries.iter().filter(|d| d.client != 3).count() as u64;
        assert_eq!(others, r.published * 7);
    }

    #[test]
    fn heartbeat_eviction_and_reinstall() {
        let events = workload();
        let mut eng = mk_engine(2, 4);
        for c in 0..4 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        // Partition broker 1 from the root long enough to miss heartbeats,
        // then heal; eviction must fire and delivery must resume.
        let mut plan = FaultPlan::new(11);
        plan.add_partition(NodeId(0), NodeId(1), Window::new(100_000, 1_600_000));
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig {
            ack_timeout_us: 100_000,
            max_retries: 2,
            backoff_cap_us: 200_000,
            heartbeat_interval_us: 200_000,
            ..RecoveryConfig::overlay_default()
        });
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 20.0, 3.0, &CostModel::plain(), &mut cfg);
        assert!(r.evictions >= 1, "partition must trigger eviction: {r:?}");
        assert!(r.reinstalls >= 1, "heal must reinstall: {r:?}");
        // Clients under broker 1 receive events published well after heal.
        let healed_clients: Vec<u32> = (0..4u32)
            .filter(|&c| {
                let mut n = eng.attachments()[c as usize];
                loop {
                    if n == 1 {
                        return true;
                    }
                    match if n > 0 { Some((n - 1) / 2) } else { None } {
                        Some(p) => n = p,
                        None => return false,
                    }
                }
            })
            .collect();
        assert!(!healed_clients.is_empty());
        for &c in &healed_clients {
            let late = r
                .deliveries
                .iter()
                .any(|d| d.client == c && d.sent_at > 2_200_000);
            assert!(late, "client {c} must receive post-heal events: {r:?}");
        }
    }
}
