//! The in-process overlay engine: runs a complete-binary-tree broker
//! overlay on the discrete-event simulator, with a queueing model per
//! node, to measure throughput and latency (Figures 9–11 of the paper).
//!
//! The experimental shape follows §5.2: one publisher at the root, broker
//! trees of {0, 2, 6, 14, 30} nodes, 32 subscribers uniformly attached to
//! the leaf brokers, and wide-area link latencies drawn from a GT-ITM
//! transit-stub topology. Per-message service times come from a
//! [`CostModel`], so the same engine measures baseline Siena (zero crypto
//! cost) and PSGuard (measured crypto costs) under identical conditions.

use std::collections::HashMap;

use psguard_net::{NodeId, SimTime, Simulator, Topology, TransitStubConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::broker::{Action, Broker};
use crate::index::IndexableFilter;
use crate::table::Peer;

/// Per-message-type service times in microseconds.
///
/// Baseline Siena sets the crypto fields to zero; PSGuard variants fill
/// them with measured key-derivation/encryption costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Publisher-side work per event before it leaves (serialization +,
    /// for PSGuard, key derivation and payload encryption).
    pub publisher_us: u64,
    /// Broker work per filter evaluation while matching.
    pub broker_match_us: u64,
    /// Broker work per forwarded event copy.
    pub broker_forward_us: u64,
    /// Subscriber-side work per delivered event (deserialization +, for
    /// PSGuard, key derivation and payload decryption).
    pub subscriber_us: u64,
}

impl CostModel {
    /// A cost model with zero crypto overhead: plain Siena.
    ///
    /// The baseline magnitudes are calibrated to the paper's testbed
    /// (Java Siena over kernel TCP on 550 MHz Xeons, saturating at a few
    /// hundred events/s): per-copy I/O around a millisecond dominates,
    /// matching costs a few microseconds per filter. Crypto overheads are
    /// *added* to these, so PSGuard's relative overhead comes out at the
    /// paper's scale.
    pub fn plain() -> Self {
        CostModel {
            publisher_us: 300,
            broker_match_us: 8,
            broker_forward_us: 800,
            subscriber_us: 1000,
        }
    }
}

/// Configuration of one overlay run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of broker nodes: must be `2^(d+1) − 2` for some depth
    /// `d ≥ 0` (0, 2, 6, 14, 30, …), matching the paper's full binary
    /// trees.
    pub broker_nodes: u32,
    /// Number of subscriber clients.
    pub subscribers: u32,
    /// RNG seed (topology mapping and subscriber placement).
    pub seed: u64,
}

impl EngineConfig {
    /// The paper's setup: 32 subscribers, the given broker-tree size.
    pub fn paper(broker_nodes: u32, seed: u64) -> Self {
        EngineConfig {
            broker_nodes,
            subscribers: 32,
            seed,
        }
    }
}

/// Result of one run at a fixed publication rate.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Events published.
    pub published: u64,
    /// Event copies delivered to subscribers.
    pub delivered: u64,
    /// Mean publish→decrypt latency in milliseconds.
    pub mean_latency_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Maximum node utilization (busy time / run duration).
    pub max_utilization: f64,
    /// Whether some node was saturated (utilization ≥ 0.98).
    pub saturated: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Envelope<E> {
    seq: u64,
    sent_at: SimTime,
    event: E,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Msg<E> {
    /// An event arriving at an overlay node.
    Publish { env: Envelope<E>, from: Peer },
    /// Final delivery to a subscriber client node.
    Local { env: Envelope<E> },
}

/// The overlay engine. Build once (subscriptions included), then run one
/// or more workloads.
pub struct Engine<F: IndexableFilter> {
    pub(crate) config: EngineConfig,
    pub(crate) brokers: Vec<Broker<F>>,
    /// Engine-node index of each broker's parent (brokers[0] = publisher).
    pub(crate) parent_of: Vec<Option<usize>>,
    /// Engine-node for `Peer::Child(i)` / `Peer::Local(c)` resolution.
    pub(crate) subscriber_base: usize,
    /// One-way latency (µs) between adjacent overlay nodes.
    pub(crate) link_up: Vec<u64>,
    /// Which broker each subscriber attaches to.
    pub(crate) attach: Vec<usize>,
    /// Latency (µs) of each subscriber's access link.
    pub(crate) access_latency: Vec<u64>,
    /// Every `(client, filter)` registration, in subscription order — the
    /// ground truth replayed when a crashed broker restarts or an evicted
    /// peer re-announces itself (see [`crate::fault`]).
    pub(crate) registered: Vec<(u32, F)>,
}

impl<F: IndexableFilter> Engine<F>
where
    F::Event: Eq,
{
    /// Builds the overlay: a full binary broker tree under the publisher,
    /// subscribers attached round-robin to the leaves, link latencies
    /// drawn from a GT-ITM transit-stub topology.
    ///
    /// # Panics
    ///
    /// Panics when `broker_nodes` is not `2^(d+1) − 2`.
    pub fn new(config: EngineConfig) -> Self {
        let b = config.broker_nodes;
        assert!(
            (b + 2).is_power_of_two(),
            "broker_nodes must be 2^(d+1)-2 (0, 2, 6, 14, 30, …), got {b}"
        );
        let total_brokers = b as usize + 1; // + publisher (root, index 0)

        // Map overlay nodes onto a transit-stub topology for latencies.
        let needed = total_brokers as u32 + config.subscribers;
        let ts = if needed <= 63 {
            TransitStubConfig::default()
        } else {
            TransitStubConfig {
                stubs_per_transit: (needed / 15 + 1).max(4),
                ..Default::default()
            }
        };
        let topo: Topology = ts.generate(config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);

        // Overlay neighbors are placed adjacent in the underlay: each
        // overlay edge takes the one-way latency of a (randomly drawn)
        // underlay link, reproducing the paper's link-latency regime
        // (one-way 12–92 ms, mean ≈ 37 ms) per overlay hop.
        let links = topo.links().to_vec();
        let mut link_rng = StdRng::seed_from_u64(config.seed ^ 0x11ac);
        let mut latency_between = move |_a: usize, _b: usize| -> u64 {
            let link = &links[link_rng.gen_range(0..links.len())];
            (link.latency_ms as u64).max(1) * 1000
        };

        // Broker tree: overlay node 0 is the publisher/root; broker i has
        // children 2i+1, 2i+2 while within range.
        let mut brokers = Vec::with_capacity(total_brokers);
        let parent_of: Vec<Option<usize>> = (0..total_brokers)
            .map(|i| {
                brokers.push(Broker::new(i == 0));
                (i > 0).then(|| (i - 1) / 2)
            })
            .collect();
        let link_up: Vec<u64> = (0..total_brokers)
            .map(|i| match parent_of[i] {
                Some(p) => latency_between(i, p),
                None => 0,
            })
            .collect();

        // Leaf brokers: no children inside the broker array.
        let leaves: Vec<usize> = (0..total_brokers)
            .filter(|&i| 2 * i + 1 >= total_brokers)
            .collect();
        let subscriber_base = total_brokers;
        // Uniform random placement over the leaves, balanced by drawing
        // from shuffled copies of the leaf list. (Deterministic modular
        // assignment would align topics with subtrees and distort the
        // covering tables.)
        let mut attach = Vec::with_capacity(config.subscribers as usize);
        let mut pool: Vec<usize> = Vec::new();
        for _ in 0..config.subscribers {
            if pool.is_empty() {
                pool = leaves.clone();
                pool.shuffle(&mut rng);
            }
            if let Some(leaf) = pool.pop() {
                attach.push(leaf);
            }
        }
        let access_latency: Vec<u64> = (0..config.subscribers as usize)
            .map(|c| latency_between(subscriber_base + c, attach[c]))
            .collect();

        Engine {
            config,
            brokers,
            parent_of,
            subscriber_base,
            link_up,
            attach,
            access_latency,
            registered: Vec::new(),
        }
    }

    /// Registers a subscriber's filter, propagating it up the tree with
    /// the covering optimization (exactly Siena's subscribe path).
    pub fn subscribe(&mut self, client: u32, filter: F) {
        self.registered.push((client, filter.clone()));
        self.propagate_subscribe(client, filter);
    }

    /// The subscribe path without recording: used both by [`subscribe`]
    /// (Self::subscribe) and by the fault layer when replaying state into
    /// a restarted broker (insertion is covering-aware and idempotent).
    pub(crate) fn propagate_subscribe(&mut self, client: u32, filter: F) {
        let mut node = self.attach[client as usize];
        let mut actions = self.brokers[node].subscribe(Peer::Local(client), filter);
        while let Some(Action::ForwardSubscribe(f)) = actions.pop() {
            let Some(parent) = self.parent_of[node] else {
                break;
            };
            let from = Peer::Child(node as u32);
            node = parent;
            actions = self.brokers[node].subscribe(from, f);
        }
    }

    /// Total subscriptions registered across all brokers (covering tables).
    pub fn table_sizes(&self) -> Vec<usize> {
        self.brokers.iter().map(|b| b.table().len()).collect()
    }

    /// Runs a workload with deterministic (fixed-interval) arrivals:
    /// `events` are published round-robin at `rate_eps` events/second for
    /// `duration_s` simulated seconds, then the overlay drains. Use this
    /// for capacity (saturation) measurements.
    pub fn run(
        &mut self,
        events: &[F::Event],
        rate_eps: f64,
        duration_s: f64,
        cost: &CostModel,
    ) -> RunReport {
        self.run_impl(events, rate_eps, duration_s, cost, false)
    }

    /// Runs a workload with Poisson arrivals (the paper's open-loop
    /// publication load): queueing delays at near-saturated nodes become
    /// visible, so use this for latency measurements.
    pub fn run_poisson(
        &mut self,
        events: &[F::Event],
        rate_eps: f64,
        duration_s: f64,
        cost: &CostModel,
    ) -> RunReport {
        self.run_impl(events, rate_eps, duration_s, cost, true)
    }

    fn run_impl(
        &mut self,
        events: &[F::Event],
        rate_eps: f64,
        duration_s: f64,
        cost: &CostModel,
        poisson: bool,
    ) -> RunReport {
        assert!(!events.is_empty(), "workload must contain events");
        assert!(rate_eps > 0.0, "rate must be positive");
        let duration_us = (duration_s * 1e6) as u64;
        let interarrival = (1e6 / rate_eps).max(1.0);

        let n_nodes = self.subscriber_base + self.config.subscribers as usize;
        let mut busy_until = vec![0u64; n_nodes];
        let mut busy_acc = vec![0u64; n_nodes];
        let mut latencies: Vec<u64> = Vec::new();
        let mut delivered = 0u64;

        // Pre-size the queue for the whole publication schedule (plus
        // slack for in-flight forwards) so pushes never regrow the heap.
        let expected = (duration_us as f64 / interarrival).ceil() as usize + 64;
        let mut sim: Simulator<Msg<F::Event>> = Simulator::with_capacity(expected);
        // Pre-schedule the publication arrivals at the publisher (node 0).
        let mut arr_rng = StdRng::seed_from_u64(self.config.seed ^ rate_eps.to_bits());
        let mut t = 0.0f64;
        let mut seq = 0u64;
        while (t as u64) < duration_us {
            let env = Envelope {
                seq,
                sent_at: t as u64,
                event: events[(seq as usize) % events.len()].clone(),
            };
            sim.schedule_at(
                t as u64,
                NodeId(0),
                Msg::Publish {
                    env,
                    from: Peer::Local(u32::MAX),
                },
            );
            seq += 1;
            if poisson {
                let u: f64 = arr_rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() * interarrival;
            } else {
                t += interarrival;
            }
        }
        let published = seq;

        // Hard cap so a pathological configuration cannot spin forever.
        let max_events = published * (n_nodes as u64 + 4) * 4 + 1000;
        let mut processed = 0u64;
        while let Some(d) = sim.next() {
            processed += 1;
            if processed > max_events {
                break;
            }
            let node = d.dst.0 as usize;
            match d.msg {
                Msg::Publish { env, from } => {
                    let start = d.at.max(busy_until[node]);
                    // The envelope is consumed here: move the event into
                    // the broker instead of cloning it (the broker clones
                    // per-recipient itself; this saves one clone per hop).
                    let Envelope {
                        seq: env_seq,
                        sent_at: env_sent_at,
                        event,
                    } = env;
                    let actions = self.brokers[node].publish(from, event);
                    // Fixed per-event work (encryption at the publisher,
                    // matching everywhere), then store-and-forward
                    // serialization: each outgoing copy departs
                    // `broker_forward_us` after the previous one. The
                    // matching term prices the work the index actually
                    // performed — key probes plus distinct-predicate
                    // evaluations — not the table size.
                    let match_cost = cost.broker_match_us * self.brokers[node].last_match_work();
                    let fixed = if node == 0 {
                        cost.publisher_us + match_cost
                    } else {
                        match_cost
                    };
                    let mut finish = start + fixed.max(1);
                    let mut departures = Vec::with_capacity(actions.len());
                    for _ in 0..actions.len() {
                        finish += cost.broker_forward_us;
                        departures.push(finish);
                    }
                    busy_until[node] = finish;
                    busy_acc[node] += finish - start;
                    for (action, finish) in actions.into_iter().zip(departures) {
                        match action {
                            Action::Deliver(Peer::Child(c), event) => {
                                let child = c as usize;
                                let lat = self.link_up[child];
                                sim.schedule_at(
                                    finish + lat,
                                    NodeId(child as u32),
                                    Msg::Publish {
                                        env: Envelope {
                                            seq: env_seq,
                                            sent_at: env_sent_at,
                                            event,
                                        },
                                        from: Peer::Parent,
                                    },
                                );
                            }
                            Action::Deliver(Peer::Local(client), event) => {
                                let lat = self.access_latency[client as usize];
                                let dst = self.subscriber_base + client as usize;
                                sim.schedule_at(
                                    finish + lat,
                                    NodeId(dst as u32),
                                    Msg::Local {
                                        env: Envelope {
                                            seq: env_seq,
                                            sent_at: env_sent_at,
                                            event,
                                        },
                                    },
                                );
                            }
                            Action::Deliver(Peer::Parent, event) => {
                                if let Some(p) = self.parent_of[node] {
                                    let lat = self.link_up[node];
                                    sim.schedule_at(
                                        finish + lat,
                                        NodeId(p as u32),
                                        Msg::Publish {
                                            env: Envelope {
                                                seq: env_seq,
                                                sent_at: env_sent_at,
                                                event,
                                            },
                                            from: Peer::Child(node as u32),
                                        },
                                    );
                                }
                            }
                            Action::ForwardSubscribe(_) | Action::ForwardUnsubscribe(_) => {
                                // Subscriptions are installed before runs.
                            }
                        }
                    }
                }
                Msg::Local { env } => {
                    let start = d.at.max(busy_until[node]);
                    let finish = start + cost.subscriber_us.max(1);
                    busy_until[node] = finish;
                    busy_acc[node] += cost.subscriber_us.max(1);
                    latencies.push(finish - env.sent_at);
                    delivered += 1;
                }
            }
        }

        let denom = duration_us.max(1) as f64;
        let max_utilization = busy_acc
            .iter()
            .map(|&b| b as f64 / denom)
            .fold(0.0, f64::max);
        latencies.sort_unstable();
        let mean_latency_ms = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1000.0
        };
        let p99_latency_ms = latencies
            .get((latencies.len().saturating_sub(1)) * 99 / 100)
            .map(|&v| v as f64 / 1000.0)
            .unwrap_or(0.0);

        RunReport {
            published,
            delivered,
            mean_latency_ms,
            p99_latency_ms,
            max_utilization,
            saturated: max_utilization >= 0.98,
        }
    }

    /// Binary-searches the saturation throughput `q_min` (events/second):
    /// the highest rate at which no node saturates — the paper's
    /// methodology for Figure 9.
    pub fn find_max_throughput(
        &mut self,
        events: &[F::Event],
        duration_s: f64,
        cost: &CostModel,
    ) -> f64 {
        let (mut lo, mut hi) = (1.0f64, 8.0f64);
        // Grow until saturated.
        while !self.run(events, hi, duration_s, cost).saturated && hi < 4_000_000.0 {
            lo = hi;
            hi *= 2.0;
        }
        for _ in 0..12 {
            let mid = (lo + hi) / 2.0;
            if self.run(events, mid, duration_s, cost).saturated {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    }

    /// Per-broker routing statistics collected so far.
    pub fn broker_stats(&self) -> Vec<crate::broker::BrokerStats> {
        self.brokers.iter().map(|b| b.stats()).collect()
    }

    /// The broker index each subscriber attaches to (leaf assignment).
    pub fn attachments(&self) -> &[usize] {
        &self.attach
    }

    /// Histogram of leaf attachment counts, for sanity checks.
    pub fn attachment_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for &a in &self.attach {
            *h.entry(a).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Constraint, Event, Filter, Op};

    fn mk_engine(brokers: u32) -> Engine<Filter> {
        Engine::new(EngineConfig {
            broker_nodes: brokers,
            subscribers: 8,
            seed: 42,
        })
    }

    fn workload() -> Vec<Event> {
        (0..16)
            .map(|i| Event::builder("t").attr("x", i as i64 * 10).build())
            .collect()
    }

    #[test]
    fn all_subscribers_receive_matching_events() {
        for brokers in [0u32, 2, 6, 14] {
            let mut eng = mk_engine(brokers);
            for c in 0..8 {
                eng.subscribe(c, Filter::for_topic("t"));
            }
            let events = workload();
            let report = eng.run(&events, 50.0, 1.0, &CostModel::plain());
            assert!(report.published > 10, "poisson draw too small");
            assert_eq!(
                report.delivered,
                report.published * 8,
                "brokers={brokers}: every subscriber gets every event"
            );
            assert!(!report.saturated);
            assert!(report.mean_latency_ms > 0.0);
        }
    }

    #[test]
    fn selective_filters_limit_delivery() {
        let mut eng = mk_engine(6);
        // Half the subscribers want x >= 80 (2 of 16 workload events).
        for c in 0..4 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        for c in 4..8 {
            eng.subscribe(
                c,
                Filter::for_topic("t").with(Constraint::new("x", Op::Ge(140))),
            );
        }
        let events = workload();
        let report = eng.run(&events, 16.0, 1.0, &CostModel::plain());
        // 4 subscribers get every event; 4 get only the two events with
        // x >= 140 per 16-event cycle.
        let n = report.published;
        let selective = (n / 16) * 2 + ((n % 16).saturating_sub(14).min(2));
        assert_eq!(report.delivered, n * 4 + selective * 4);
    }

    #[test]
    fn covering_keeps_upstream_tables_small() {
        let mut eng = mk_engine(6);
        for c in 0..8 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let sizes = eng.table_sizes();
        // The root sees at most one forwarded filter per child, not one
        // per subscriber.
        assert!(sizes[0] <= 2, "root table: {sizes:?}");
    }

    #[test]
    fn saturation_detected_at_absurd_rates() {
        let mut eng = mk_engine(2);
        for c in 0..8 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let events = workload();
        let report = eng.run(&events, 1_000_000.0, 0.05, &CostModel::plain());
        assert!(report.saturated);
    }

    #[test]
    fn max_throughput_is_positive_and_finite() {
        let mut eng = mk_engine(2);
        for c in 0..8 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let events = workload();
        let q = eng.find_max_throughput(&events, 0.3, &CostModel::plain());
        assert!(q > 10.0, "q={q}");
        assert!(q < 4_000_000.0);
    }

    #[test]
    fn higher_costs_lower_throughput() {
        let events = workload();
        let mut eng1 = mk_engine(2);
        let mut eng2 = mk_engine(2);
        for c in 0..8 {
            eng1.subscribe(c, Filter::for_topic("t"));
            eng2.subscribe(c, Filter::for_topic("t"));
        }
        let cheap = eng1.find_max_throughput(&events, 0.3, &CostModel::plain());
        let expensive_model = CostModel {
            publisher_us: CostModel::plain().publisher_us * 4,
            subscriber_us: CostModel::plain().subscriber_us * 4,
            ..CostModel::plain()
        };
        let expensive = eng2.find_max_throughput(&events, 0.3, &expensive_model);
        assert!(
            expensive < cheap,
            "expensive ({expensive}) should be below cheap ({cheap})"
        );
    }

    #[test]
    #[should_panic(expected = "broker_nodes")]
    fn invalid_tree_size_rejected() {
        mk_engine(5);
    }

    #[test]
    fn subscribers_spread_over_leaves() {
        let eng = mk_engine(6);
        let hist = eng.attachment_histogram();
        // 6 brokers → leaves are nodes 3..=6 (4 leaves), 8 subscribers → 2 each.
        assert_eq!(hist.len(), 4);
        assert!(hist.values().all(|&c| c == 2), "{hist:?}");
    }

    #[test]
    fn poisson_arrivals_still_deliver_everything() {
        let mut eng = mk_engine(6);
        for c in 0..8 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let events = workload();
        let report = eng.run_poisson(&events, 40.0, 1.0, &CostModel::plain());
        assert!(report.published > 10);
        assert_eq!(report.delivered, report.published * 8);
        // Same seed, same rate → identical Poisson draw.
        let mut eng2 = mk_engine(6);
        for c in 0..8 {
            eng2.subscribe(c, Filter::for_topic("t"));
        }
        let again = eng2.run_poisson(&events, 40.0, 1.0, &CostModel::plain());
        assert_eq!(report.published, again.published);
    }

    #[test]
    fn poisson_queueing_raises_latency_near_saturation() {
        let events = workload();
        let model = CostModel::plain();
        let mut probe = mk_engine(2);
        for c in 0..8 {
            probe.subscribe(c, Filter::for_topic("t"));
        }
        let q = probe.find_max_throughput(&events, 0.3, &model);

        let mut light_eng = mk_engine(2);
        let mut heavy_eng = mk_engine(2);
        for c in 0..8 {
            light_eng.subscribe(c, Filter::for_topic("t"));
            heavy_eng.subscribe(c, Filter::for_topic("t"));
        }
        let light = light_eng.run_poisson(&events, q * 0.2, 2.0, &model);
        let heavy = heavy_eng.run_poisson(&events, q * 0.97, 2.0, &model);
        assert!(
            heavy.mean_latency_ms > light.mean_latency_ms,
            "queueing must show near saturation: light={} heavy={}",
            light.mean_latency_ms,
            heavy.mean_latency_ms
        );
    }

    #[test]
    fn p99_at_least_mean() {
        let mut eng = mk_engine(2);
        for c in 0..8 {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let events = workload();
        let report = eng.run_poisson(&events, 100.0, 1.0, &CostModel::plain());
        assert!(report.p99_latency_ms >= report.mean_latency_ms * 0.99);
        assert!(report.max_utilization > 0.0);
    }
}
