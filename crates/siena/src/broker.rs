//! The content-based broker: pure routing logic, transport-agnostic.
//!
//! A broker reacts to inputs (subscribe / unsubscribe / publish) by
//! emitting a list of [`Action`]s — messages to forward to peers or
//! deliveries to local clients. Keeping the logic pure lets the same
//! broker run on the discrete-event engine (for the paper's figures), over
//! TCP, or in unit tests.

use crate::index::IndexableFilter;
use crate::semantics::FilterSemantics;
use crate::table::{Peer, SubscriptionTable};

/// An output of the broker state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<F: FilterSemantics> {
    /// Forward a subscription to the parent.
    ForwardSubscribe(F),
    /// Forward an unsubscription to the parent.
    ForwardUnsubscribe(F),
    /// Send the event to a peer (child broker or local client).
    Deliver(Peer, F::Event),
}

/// Routing statistics for one broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Subscriptions received.
    pub subscribes: u64,
    /// Subscriptions forwarded upstream (not covered).
    pub forwarded_subscribes: u64,
    /// Events received.
    pub events_in: u64,
    /// Event copies sent to peers.
    pub events_out: u64,
    /// Matching work performed: bucket-key probes (topic lookups / PRF
    /// token tests) plus distinct-predicate evaluations, as counted by
    /// the [`MatchIndex`](crate::MatchIndex) fast path. The old linear
    /// scan's equivalent was `table.len()` per event.
    pub match_evaluations: u64,
}

/// A content-based broker node.
///
/// # Example
///
/// ```
/// use psguard_model::{Constraint, Event, Filter, Op};
/// use psguard_siena::{Action, Broker, Peer};
///
/// let mut b: Broker<Filter> = Broker::new(true); // root broker
/// let f = Filter::for_topic("t").with(Constraint::new("x", Op::Ge(10)));
/// let actions = b.subscribe(Peer::Local(1), f);
/// assert!(actions.is_empty()); // root has no parent to forward to
///
/// let e = Event::builder("t").attr("x", 42i64).build();
/// let actions = b.publish(Peer::Local(9), e.clone());
/// assert_eq!(actions, vec![Action::Deliver(Peer::Local(1), e)]);
/// ```
#[derive(Debug, Clone)]
pub struct Broker<F: IndexableFilter> {
    is_root: bool,
    table: SubscriptionTable<F>,
    stats: BrokerStats,
    last_match_work: u64,
    /// Matched-peer buffer reused across publishes.
    peer_scratch: Vec<Peer>,
}

impl<F: IndexableFilter> Broker<F> {
    /// Creates a broker; `is_root` brokers never forward upstream.
    pub fn new(is_root: bool) -> Self {
        Broker {
            is_root,
            table: SubscriptionTable::new(),
            stats: BrokerStats::default(),
            last_match_work: 0,
            peer_scratch: Vec::new(),
        }
    }

    /// The subscription table (for inspection).
    pub fn table(&self) -> &SubscriptionTable<F> {
        &self.table
    }

    /// Routing statistics.
    pub fn stats(&self) -> BrokerStats {
        self.stats
    }

    /// Matching work performed by the most recent [`publish`](Self::publish)
    /// call — the per-event cost input for the performance model.
    pub fn last_match_work(&self) -> u64 {
        self.last_match_work
    }

    /// Handles a subscription from `from`. May emit
    /// [`Action::ForwardSubscribe`] when the filter is not covered.
    pub fn subscribe(&mut self, from: Peer, filter: F) -> Vec<Action<F>> {
        self.stats.subscribes += 1;
        let forward = self.table.insert(from, filter.clone());
        if forward && !self.is_root {
            self.stats.forwarded_subscribes += 1;
            vec![Action::ForwardSubscribe(filter)]
        } else {
            Vec::new()
        }
    }

    /// Handles an unsubscription from `from`. Forwards upstream when no
    /// other registration still needs the filter. (A conservative policy:
    /// forwards only when the exact filter disappears entirely.)
    pub fn unsubscribe(&mut self, from: Peer, filter: &F) -> Vec<Action<F>> {
        let removed = self.table.remove(from, filter);
        if !removed || self.is_root {
            return Vec::new();
        }
        let still_needed = self.table.entries().iter().any(|(_, f)| f == filter);
        if still_needed {
            Vec::new()
        } else {
            vec![Action::ForwardUnsubscribe(filter.clone())]
        }
    }

    /// Handles an event arriving from `from`. Implements the paper's §2.1
    /// rule: forward to every peer with a matching subscription (except
    /// the sender); non-root brokers that received the event from below
    /// also push it to the parent so it reaches the rest of the tree.
    pub fn publish(&mut self, from: Peer, event: F::Event) -> Vec<Action<F>> {
        self.stats.events_in += 1;
        let mut peers = std::mem::take(&mut self.peer_scratch);
        self.table.matching_peers_into(&event, &mut peers);
        self.last_match_work = self.table.last_match_work();
        self.stats.match_evaluations += self.last_match_work;
        let mut actions = Vec::new();
        if from != Peer::Parent && !self.is_root {
            actions.push(Action::Deliver(Peer::Parent, event.clone()));
        }
        for &peer in &peers {
            if peer != from && peer != Peer::Parent {
                actions.push(Action::Deliver(peer, event.clone()));
            }
        }
        self.peer_scratch = peers;
        self.stats.events_out += actions.len() as u64;
        actions
    }

    /// Drops all state for a departed peer.
    pub fn peer_down(&mut self, peer: Peer) -> usize {
        self.table.remove_peer(peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Constraint, Event, Filter, Op};

    fn f(min: i64) -> Filter {
        Filter::for_topic("t").with(Constraint::new("x", Op::Ge(min)))
    }

    fn e(x: i64) -> Event {
        Event::builder("t").attr("x", x).build()
    }

    #[test]
    fn non_root_forwards_uncovered_subscription() {
        let mut b: Broker<Filter> = Broker::new(false);
        assert_eq!(
            b.subscribe(Peer::Local(1), f(10)),
            vec![Action::ForwardSubscribe(f(10))]
        );
        // Covered: silent.
        assert!(b.subscribe(Peer::Local(2), f(20)).is_empty());
        assert_eq!(b.stats().forwarded_subscribes, 1);
    }

    #[test]
    fn event_from_parent_goes_only_down() {
        let mut b: Broker<Filter> = Broker::new(false);
        b.subscribe(Peer::Child(1), f(10));
        b.subscribe(Peer::Child(2), f(100));
        let actions = b.publish(Peer::Parent, e(50));
        assert_eq!(actions, vec![Action::Deliver(Peer::Child(1), e(50))]);
    }

    #[test]
    fn event_from_below_also_goes_up() {
        let mut b: Broker<Filter> = Broker::new(false);
        b.subscribe(Peer::Child(1), f(10));
        let actions = b.publish(Peer::Child(9), e(50));
        assert_eq!(
            actions,
            vec![
                Action::Deliver(Peer::Parent, e(50)),
                Action::Deliver(Peer::Child(1), e(50)),
            ]
        );
    }

    #[test]
    fn sender_never_gets_its_own_event() {
        let mut b: Broker<Filter> = Broker::new(true);
        b.subscribe(Peer::Child(1), f(10));
        let actions = b.publish(Peer::Child(1), e(50));
        assert!(actions.is_empty());
    }

    #[test]
    fn unsubscribe_forwards_only_when_last() {
        let mut b: Broker<Filter> = Broker::new(false);
        b.subscribe(Peer::Child(1), f(10));
        b.subscribe(Peer::Child(2), f(10));
        assert!(b.unsubscribe(Peer::Child(1), &f(10)).is_empty());
        assert_eq!(
            b.unsubscribe(Peer::Child(2), &f(10)),
            vec![Action::ForwardUnsubscribe(f(10))]
        );
        // Unknown unsubscription: no-op.
        assert!(b.unsubscribe(Peer::Child(3), &f(10)).is_empty());
    }

    #[test]
    fn peer_down_clears_registrations() {
        let mut b: Broker<Filter> = Broker::new(true);
        b.subscribe(Peer::Child(1), f(10));
        b.subscribe(Peer::Child(1), f(20));
        assert_eq!(b.peer_down(Peer::Child(1)), 2);
        assert!(b.publish(Peer::Parent, e(50)).is_empty());
    }

    #[test]
    fn stats_track_matching_work() {
        let mut b: Broker<Filter> = Broker::new(true);
        b.subscribe(Peer::Child(1), f(10));
        b.subscribe(Peer::Child(2), f(20));
        b.publish(Peer::Parent, e(15));
        assert_eq!(b.stats().events_in, 1);
        // One topic-bucket probe + one predicate inspected: the sorted
        // boundary list never looks at Ge(20) for x = 15.
        assert_eq!(b.stats().match_evaluations, 2);
        assert_eq!(b.last_match_work(), 2);
        assert_eq!(b.stats().events_out, 1);
    }

    #[test]
    fn match_work_ignores_foreign_topics() {
        let mut b: Broker<Filter> = Broker::new(true);
        for i in 0..50u32 {
            b.subscribe(Peer::Child(i), Filter::for_topic(format!("other{i}")));
        }
        b.subscribe(Peer::Child(99), f(10));
        b.publish(Peer::Parent, e(15));
        // Only the "t" bucket is touched; 50 foreign topics cost nothing.
        assert_eq!(b.last_match_work(), 2);
    }
}
