//! The pre-arena matching index, kept as a measured baseline.
//!
//! This is the PR1-era [`MatchIndex`](crate::MatchIndex) layout verbatim:
//! per-bucket `Vec` sprawl (`preds`, `pred_of: HashMap<Constraint, u32>`,
//! per-attribute boundary `Vec`s), SipHash maps, a filter-sized entry
//! struct read on every counter bump, and `u64` generation stamps in
//! arrays separate from the counters. The reworked index in
//! [`crate::index`] replaces all of that with arena-backed storage and a
//! hot/cold entry split; this module exists so the `e2e_scaling` bench
//! can measure the rework against the exact pre-rework data layout at
//! 1M entries (BENCH_e2e.json `index_rework` section) and so the
//! property tests have a second, structurally independent oracle.
//!
//! Do not grow this module: it is frozen at the old layout on purpose.
//! Algorithmic semantics (counting matches, first-seen order, probe
//! memo, covering scans) are identical to [`crate::MatchIndex`], which
//! `tests/match_index_props.rs` pins by running both against the linear
//! scan.

use std::collections::{HashMap, HashSet, VecDeque};

use psguard_model::{AttrName, AttrValue, Constraint, Op};

use crate::index::{EntryId, IndexableFilter, KeyQuery, MatchStats};
use crate::table::Peer;

/// One interned predicate and the entries that require it.
#[derive(Debug, Clone)]
struct Pred {
    constraint: Constraint,
    /// Entries needing this predicate, with multiplicity (a filter that
    /// repeats a constraint appears repeatedly, keeping its counter
    /// target consistent).
    entries: Vec<EntryId>,
}

/// Per-attribute predicate layout inside one bucket.
#[derive(Debug, Clone, Default)]
struct AttrIndex {
    /// Numeric predicates as `(lower bound, pred)` sorted by lower
    /// bound (`i64::MIN` for unbounded-below).
    numeric: Vec<(i64, u32)>,
    /// Non-numeric equality predicates, hashed by expected value.
    eq: HashMap<AttrValue, Vec<u32>>,
    /// Everything else (prefix / suffix / category), evaluated one by
    /// one — still at most once per distinct predicate.
    other: Vec<u32>,
}

impl AttrIndex {
    fn is_empty(&self) -> bool {
        self.numeric.is_empty() && self.eq.is_empty() && self.other.is_empty()
    }
}

/// All filters sharing one routing key.
#[derive(Debug, Clone)]
struct Bucket<K> {
    key: K,
    /// Live entries (kept strictly in sync by insert/remove).
    entry_ids: Vec<EntryId>,
    /// Live entries with zero constraints: they match any event that
    /// reaches this bucket.
    unconstrained: Vec<EntryId>,
    attrs: Vec<(AttrName, AttrIndex)>,
    preds: Vec<Pred>,
    free_preds: Vec<u32>,
    pred_of: HashMap<Constraint, u32>,
}

impl<K> Bucket<K> {
    fn new(key: K) -> Self {
        Bucket {
            key,
            entry_ids: Vec::new(),
            unconstrained: Vec::new(),
            attrs: Vec::new(),
            preds: Vec::new(),
            free_preds: Vec::new(),
            pred_of: HashMap::new(),
        }
    }

    fn attr_index_mut(&mut self, name: &AttrName) -> &mut AttrIndex {
        let pos = match self.attrs.iter().position(|(n, _)| n == name) {
            Some(pos) => pos,
            None => {
                self.attrs.push((name.clone(), AttrIndex::default()));
                self.attrs.len() - 1
            }
        };
        &mut self.attrs[pos].1
    }

    fn add_entry(&mut self, id: EntryId, constraints: &[Constraint]) {
        self.entry_ids.push(id);
        if constraints.is_empty() {
            self.unconstrained.push(id);
            return;
        }
        for c in constraints {
            let pid = match self.pred_of.get(c) {
                Some(&p) => p,
                None => self.intern_pred(c),
            };
            self.preds[pid as usize].entries.push(id);
        }
    }

    fn intern_pred(&mut self, c: &Constraint) -> u32 {
        let pid = match self.free_preds.pop() {
            Some(p) => {
                self.preds[p as usize] = Pred {
                    constraint: c.clone(),
                    entries: Vec::new(),
                };
                p
            }
            None => {
                self.preds.push(Pred {
                    constraint: c.clone(),
                    entries: Vec::new(),
                });
                (self.preds.len() - 1) as u32
            }
        };
        self.pred_of.insert(c.clone(), pid);
        let slot = self.attr_index_mut(c.name());
        if let Some(iv) = c.interval() {
            let lo = iv.lo().unwrap_or(i64::MIN);
            let at = slot.numeric.partition_point(|&(l, _)| l < lo);
            slot.numeric.insert(at, (lo, pid));
        } else if let Op::Eq(v) = c.op() {
            slot.eq.entry(v.clone()).or_default().push(pid);
        } else {
            slot.other.push(pid);
        }
        pid
    }

    fn remove_entry(&mut self, id: EntryId, constraints: &[Constraint]) {
        if let Some(pos) = self.entry_ids.iter().position(|&e| e == id) {
            self.entry_ids.swap_remove(pos);
        }
        if constraints.is_empty() {
            if let Some(pos) = self.unconstrained.iter().position(|&e| e == id) {
                self.unconstrained.swap_remove(pos);
            }
            return;
        }
        for c in constraints {
            let Some(&pid) = self.pred_of.get(c) else {
                continue;
            };
            let entries = &mut self.preds[pid as usize].entries;
            if let Some(pos) = entries.iter().position(|&e| e == id) {
                entries.swap_remove(pos);
            }
            if entries.is_empty() {
                self.drop_pred(pid, c);
            }
        }
    }

    fn drop_pred(&mut self, pid: u32, c: &Constraint) {
        self.pred_of.remove(c);
        self.free_preds.push(pid);
        let Some(pos) = self.attrs.iter().position(|(n, _)| n == c.name()) else {
            return;
        };
        let slot = &mut self.attrs[pos].1;
        if c.interval().is_some() {
            slot.numeric.retain(|&(_, p)| p != pid);
        } else if let Op::Eq(v) = c.op() {
            if let Some(pids) = slot.eq.get_mut(v) {
                pids.retain(|&p| p != pid);
                if pids.is_empty() {
                    slot.eq.remove(v);
                }
            }
        } else {
            slot.other.retain(|&p| p != pid);
        }
        if slot.is_empty() {
            self.attrs.swap_remove(pos);
        }
    }
}

#[derive(Debug, Clone)]
struct Entry<F> {
    peer: Peer,
    filter: F,
    /// Global insertion sequence — queries report matches in first-seen
    /// order so the fast path is observationally identical to the old
    /// linear scan.
    seq: u64,
    bucket: u32,
    required: u32,
    live: bool,
}

/// Bounded FIFO memo of probe results keyed on per-event nonces.
const PROBE_MEMO_CAP: usize = 1024;

/// The pre-rework counting index (see the module docs). API mirrors
/// [`crate::MatchIndex`] so benches and tests can drive both
/// interchangeably.
#[derive(Debug, Clone)]
pub struct LegacyMatchIndex<F: IndexableFilter> {
    keys: HashMap<F::Key, u32>,
    buckets: Vec<Bucket<F::Key>>,
    entries: Vec<Entry<F>>,
    free_entries: Vec<EntryId>,
    live: usize,
    next_seq: u64,
    /// Generation-stamped counters (no per-query clearing).
    counts: Vec<u32>,
    stamps: Vec<u64>,
    generation: u64,
    memo: HashMap<u128, Vec<u32>>,
    memo_order: VecDeque<u128>,
    last_stats: MatchStats,
    /// Whether buckets carry prepared probe contexts
    /// ([`IndexableFilter::probe_context`]).
    prepared: bool,
    /// Per-bucket prepared probe context (parallel to `buckets`); `None`
    /// when unprepared or the family has no context.
    probe_ctxs: Vec<Option<F::ProbeContext>>,
    /// Matched entry ids of the query in flight, reused across queries.
    matched_scratch: Vec<EntryId>,
    /// Candidate bucket ids of the query in flight, reused across queries.
    cand_scratch: Vec<u32>,
    /// Peer-dedup set, reused across queries.
    seen_scratch: HashSet<Peer>,
}

impl<F: IndexableFilter> Default for LegacyMatchIndex<F> {
    fn default() -> Self {
        LegacyMatchIndex {
            keys: HashMap::new(),
            buckets: Vec::new(),
            entries: Vec::new(),
            free_entries: Vec::new(),
            live: 0,
            next_seq: 0,
            counts: Vec::new(),
            stamps: Vec::new(),
            generation: 0,
            memo: HashMap::new(),
            memo_order: VecDeque::new(),
            last_stats: MatchStats::default(),
            prepared: false,
            probe_ctxs: Vec::new(),
            matched_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            seen_scratch: HashSet::new(),
        }
    }
}

impl<F: IndexableFilter> LegacyMatchIndex<F> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty index that builds a reusable probe context per bucket.
    pub fn with_prepared_probes() -> Self {
        LegacyMatchIndex {
            prepared: true,
            ..Self::default()
        }
    }

    /// Live registrations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no registration is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Distinct routing keys ever interned.
    pub fn distinct_keys(&self) -> usize {
        self.keys.len()
    }

    /// Work performed by the most recent [`query`](Self::query).
    pub fn last_stats(&self) -> MatchStats {
        self.last_stats
    }

    /// Registers `filter` for `peer`; returns the entry id to pass to
    /// [`remove`](Self::remove).
    pub fn insert(&mut self, peer: Peer, filter: F) -> EntryId {
        let seq = self.next_seq;
        self.insert_with_seq(peer, filter, seq)
    }

    /// Registers `filter` for `peer` under a caller-assigned sequence
    /// number (see [`crate::MatchIndex::insert_with_seq`]).
    pub fn insert_with_seq(&mut self, peer: Peer, filter: F, seq: u64) -> EntryId {
        self.invalidate_memo();
        let key = filter.routing_key();
        let bid = match self.keys.get(&key) {
            Some(&b) => b,
            None => {
                let b = self.buckets.len() as u32;
                self.probe_ctxs.push(if self.prepared {
                    F::probe_context(&key)
                } else {
                    None
                });
                self.buckets.push(Bucket::new(key.clone()));
                self.keys.insert(key, b);
                b
            }
        };
        let required = filter.indexed_constraints().len() as u32;
        self.next_seq = self.next_seq.max(seq.saturating_add(1));
        let entry = Entry {
            peer,
            filter,
            seq,
            bucket: bid,
            required,
            live: true,
        };
        let id = match self.free_entries.pop() {
            Some(id) => {
                self.entries[id as usize] = entry;
                id
            }
            None => {
                self.entries.push(entry);
                self.counts.push(0);
                self.stamps.push(0);
                (self.entries.len() - 1) as EntryId
            }
        };
        self.live += 1;
        let constraints = self.entries[id as usize]
            .filter
            .indexed_constraints()
            .to_vec();
        self.buckets[bid as usize].add_entry(id, &constraints);
        id
    }

    /// Unregisters an entry previously returned by
    /// [`insert`](Self::insert).
    pub fn remove(&mut self, id: EntryId) {
        let idx = id as usize;
        assert!(self.entries[idx].live, "double remove of entry {id}");
        self.invalidate_memo();
        let bid = self.entries[idx].bucket;
        let constraints = self.entries[idx].filter.indexed_constraints().to_vec();
        self.buckets[bid as usize].remove_entry(id, &constraints);
        self.entries[idx].live = false;
        self.free_entries.push(id);
        self.live -= 1;
    }

    /// Whether an identical `(peer, filter)` registration is live.
    pub fn contains(&self, peer: Peer, filter: &F) -> bool {
        let Some(&bid) = self.keys.get(&filter.routing_key()) else {
            return false;
        };
        self.buckets[bid as usize].entry_ids.iter().any(|&id| {
            let e = &self.entries[id as usize];
            e.peer == peer && e.filter == *filter
        })
    }

    /// Whether any live filter covers `filter`.
    pub fn covered_by_any(&self, filter: &F) -> bool {
        filter.covering_candidate_keys().iter().any(|key| {
            self.keys.get(key).is_some_and(|&bid| {
                self.buckets[bid as usize]
                    .entry_ids
                    .iter()
                    .any(|&id| self.entries[id as usize].filter.covers(filter))
            })
        })
    }

    /// The distinct peers whose filters match `event`, in first-seen
    /// registration order.
    pub fn query(&mut self, event: &F::Event) -> Vec<Peer> {
        let mut peers = Vec::new();
        self.query_into(event, &mut peers);
        peers
    }

    /// [`query`](Self::query) into a caller-provided buffer.
    pub fn query_into(&mut self, event: &F::Event, peers: &mut Vec<Peer>) {
        peers.clear();
        self.run_match(event);
        let mut seen = std::mem::take(&mut self.seen_scratch);
        seen.clear();
        for &id in &self.matched_scratch {
            let peer = self.entries[id as usize].peer;
            if seen.insert(peer) {
                peers.push(peer);
            }
        }
        self.seen_scratch = seen;
    }

    /// Raw matches for `event` as `(seq, peer)` pairs sorted by
    /// registration sequence, **without** peer dedup.
    pub fn query_matches_into(&mut self, event: &F::Event, out: &mut Vec<(u64, Peer)>) {
        out.clear();
        self.run_match(event);
        for &id in &self.matched_scratch {
            let e = &self.entries[id as usize];
            out.push((e.seq, e.peer));
        }
    }

    /// The shared matching pass: fills `matched_scratch` with matched
    /// entry ids sorted by registration sequence and records the stats.
    fn run_match(&mut self, event: &F::Event) {
        self.generation += 1;
        let mut stats = MatchStats::default();
        let mut matched = std::mem::take(&mut self.matched_scratch);
        let mut cands = std::mem::take(&mut self.cand_scratch);
        matched.clear();
        cands.clear();

        match F::candidate_keys(event) {
            KeyQuery::Direct(keys) => {
                for k in &keys {
                    let Some(&b) = self.keys.get(k) else {
                        continue;
                    };
                    if !self.buckets[b as usize].entry_ids.is_empty() {
                        stats.key_probes += 1;
                        cands.push(b);
                    }
                }
            }
            KeyQuery::Probe => self.probe_buckets(event, &mut stats, &mut cands),
        }

        for &bid in &cands {
            self.match_bucket(bid, event, &mut stats, &mut matched);
        }

        matched.sort_unstable_by_key(|&id| self.entries[id as usize].seq);
        self.matched_scratch = matched;
        self.cand_scratch = cands;
        self.last_stats = stats;
    }

    /// Probe mode: one key test per live bucket, memoized per event
    /// nonce. Matching bucket ids are appended to `out`.
    fn probe_buckets(&mut self, event: &F::Event, stats: &mut MatchStats, out: &mut Vec<u32>) {
        let memo_key = F::probe_memo_key(event);
        if let Some(k) = memo_key {
            if let Some(bids) = self.memo.get(&k) {
                stats.memo_hits += 1;
                out.extend_from_slice(bids);
                return;
            }
        }
        let start = out.len();
        for (bid, bucket) in self.buckets.iter().enumerate() {
            if bucket.entry_ids.is_empty() {
                continue;
            }
            stats.key_probes += 1;
            let hit = match self.probe_ctxs.get(bid).and_then(Option::as_ref) {
                Some(ctx) => F::context_matches(ctx, event),
                None => F::key_matches(&bucket.key, event),
            };
            if hit {
                out.push(bid as u32);
            }
        }
        if let Some(k) = memo_key {
            if self.memo_order.len() >= PROBE_MEMO_CAP {
                if let Some(old) = self.memo_order.pop_front() {
                    self.memo.remove(&old);
                }
            }
            self.memo.insert(k, out[start..].to_vec());
            self.memo_order.push_back(k);
        }
    }

    /// The counting pass over one bucket.
    fn match_bucket(
        &mut self,
        bid: u32,
        event: &F::Event,
        stats: &mut MatchStats,
        matched: &mut Vec<EntryId>,
    ) {
        let bucket = &self.buckets[bid as usize];
        let entries = &self.entries;
        let counts = &mut self.counts;
        let stamps = &mut self.stamps;
        let generation = self.generation;

        matched.extend_from_slice(&bucket.unconstrained);

        let mut bump = |id: EntryId| {
            let idx = id as usize;
            if stamps[idx] != generation {
                stamps[idx] = generation;
                counts[idx] = 0;
            }
            counts[idx] += 1;
            if counts[idx] == entries[idx].required {
                matched.push(id);
            }
        };

        for (name, slot) in &bucket.attrs {
            let Some(value) = F::event_attr(event, name) else {
                continue;
            };
            match value {
                AttrValue::Int(v) => {
                    // Prefix of predicates whose lower bound admits `v`;
                    // the real operator re-check keeps exotic operators
                    // (and `Lt(i64::MIN)`-style empty ranges) faithful.
                    let end = slot.numeric.partition_point(|&(lo, _)| lo <= *v);
                    for &(_, pid) in &slot.numeric[..end] {
                        stats.predicate_evals += 1;
                        let pred = &bucket.preds[pid as usize];
                        if pred.constraint.matches_value(value) {
                            for &id in &pred.entries {
                                bump(id);
                            }
                        }
                    }
                }
                _ => {
                    if let Some(pids) = slot.eq.get(value) {
                        for &pid in pids {
                            stats.predicate_evals += 1;
                            for &id in &bucket.preds[pid as usize].entries {
                                bump(id);
                            }
                        }
                    }
                    for &pid in &slot.other {
                        stats.predicate_evals += 1;
                        let pred = &bucket.preds[pid as usize];
                        if pred.constraint.matches_value(value) {
                            for &id in &pred.entries {
                                bump(id);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Structural mutations invalidate memoized probe results (a new
    /// token bucket could match an already-memoized nonce).
    fn invalidate_memo(&mut self) {
        self.memo.clear();
        self.memo_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Event, Filter, Op};

    fn f(topic: &str, min: i64) -> Filter {
        Filter::for_topic(topic).with(Constraint::new("x", Op::Ge(min)))
    }

    fn e(topic: &str, x: i64) -> Event {
        Event::builder(topic).attr("x", x).build()
    }

    #[test]
    fn legacy_matches_and_removes() {
        let mut idx: LegacyMatchIndex<Filter> = LegacyMatchIndex::new();
        let a = idx.insert(Peer::Child(1), f("a", 10));
        idx.insert(Peer::Child(2), f("a", 50));
        assert_eq!(idx.query(&e("a", 60)), vec![Peer::Child(1), Peer::Child(2)]);
        idx.remove(a);
        assert_eq!(idx.query(&e("a", 60)), vec![Peer::Child(2)]);
        let stats = idx.last_stats();
        assert_eq!(stats.key_probes, 1);
    }
}
