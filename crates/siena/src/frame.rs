//! Pooled, reference-counted wire frames: the zero-copy dissemination
//! fast path.
//!
//! The classic per-recipient send path serializes an event once *per
//! connection* (`msg.to_bytes()` in a fan-out loop) and writes each frame
//! with two syscalls (length prefix, then payload). At broker fan-out
//! degree N that is N serializations, N heap allocations, and 2N
//! syscalls per published event. This module removes all three costs:
//!
//! * **Encode-once fan-out** — [`FramePool::encode`] serializes a message
//!   exactly once into a [`SharedFrame`] (`Arc<Frame>`); every
//!   per-connection writer queue holds a clone of the `Arc`, not a copy
//!   of the bytes.
//! * **Pooled buffers** — the backing `Vec<u8>` is checked out of a
//!   [`FramePool`] free list and returned when the last `Arc` drops, so
//!   steady-state dissemination performs no buffer allocation (the one
//!   remaining allocation is the `Arc` control block itself).
//! * **Coalesced I/O** — the 4-byte length prefix is written into the
//!   same buffer as the payload, so a frame goes out in one write; and
//!   [`write_frames`] drains a whole batch of frames through
//!   `write_vectored`, amortizing one syscall over every frame queued
//!   since the writer last woke up.
//!
//! The bytes on the socket are identical to the classic
//! [`write_frame`](crate::wire::write_frame) path — only the copy count
//! changes. Ownership rule: a buffer belongs to exactly one of (a) the
//! pool's free list, (b) a live [`Frame`]; `Frame::drop` moves it from
//! (b) back to (a) unless the buffer outgrew the retention cap, in which
//! case it is simply freed.

use std::io::{IoSlice, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::wire::Wire;

/// How many buffers a pool retains on its free list before extra
/// returned buffers are dropped (bounds idle memory).
const DEFAULT_MAX_POOLED: usize = 128;

/// Buffers whose capacity grew beyond this are not retained: one
/// pathological jumbo frame must not pin megabytes on the free list.
const DEFAULT_MAX_RETAINED_CAPACITY: usize = 64 << 10;

/// Counters describing a pool's behaviour; see [`FramePool::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FramePoolStats {
    /// Frames encoded through the pool (one per [`FramePool::encode`]).
    pub frames_encoded: u64,
    /// Checkouts that had to allocate a fresh buffer (pool miss).
    pub fresh_buffers: u64,
    /// Checkouts served from the free list (steady-state hits).
    pub reused_buffers: u64,
}

#[derive(Debug)]
struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
    max_retained_capacity: usize,
    frames_encoded: AtomicU64,
    fresh_buffers: AtomicU64,
    reused_buffers: AtomicU64,
}

impl PoolInner {
    fn give_back(&self, mut buf: Vec<u8>) {
        if buf.capacity() > self.max_retained_capacity {
            return;
        }
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }
}

/// A shared pool of reusable frame buffers. Cloning is cheap (`Arc`);
/// clones check buffers in and out of the same free list, so encoders on
/// different threads (dispatcher, client API callers) share one pool per
/// transport endpoint.
#[derive(Debug, Clone)]
pub struct FramePool {
    inner: Arc<PoolInner>,
}

impl Default for FramePool {
    fn default() -> Self {
        Self::new()
    }
}

impl FramePool {
    /// A pool with the default retention limits (128 buffers, 64 KiB
    /// retained capacity each).
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_MAX_POOLED, DEFAULT_MAX_RETAINED_CAPACITY)
    }

    /// A pool retaining at most `max_pooled` free buffers, dropping any
    /// returned buffer whose capacity exceeds `max_retained_capacity`.
    pub fn with_limits(max_pooled: usize, max_retained_capacity: usize) -> Self {
        FramePool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                max_pooled,
                max_retained_capacity,
                frames_encoded: AtomicU64::new(0),
                fresh_buffers: AtomicU64::new(0),
                reused_buffers: AtomicU64::new(0),
            }),
        }
    }

    fn checkout(&self) -> Vec<u8> {
        let hit = self.inner.free.lock().pop();
        match hit {
            Some(buf) => {
                self.inner.reused_buffers.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.fresh_buffers.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Serializes `msg` exactly once into a pooled, shareable frame whose
    /// buffer holds `[u32 BE length ‖ payload]` — ready for a single
    /// write, shareable across any number of writer queues by cloning the
    /// returned `Arc`.
    pub fn encode<T: Wire>(&self, msg: &T) -> SharedFrame {
        let mut buf = self.checkout();
        buf.extend_from_slice(&[0u8; 4]);
        msg.encode(&mut buf);
        let len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&len.to_be_bytes());
        self.inner.frames_encoded.fetch_add(1, Ordering::Relaxed);
        Arc::new(Frame {
            buf,
            pool: Some(self.inner.clone()),
        })
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> FramePoolStats {
        FramePoolStats {
            frames_encoded: self.inner.frames_encoded.load(Ordering::Relaxed),
            fresh_buffers: self.inner.fresh_buffers.load(Ordering::Relaxed),
            reused_buffers: self.inner.reused_buffers.load(Ordering::Relaxed),
        }
    }

    /// Buffers currently idle on the free list.
    pub fn idle_buffers(&self) -> usize {
        self.inner.free.lock().len()
    }
}

/// One encoded wire frame: `[u32 BE length ‖ payload]` in a single
/// buffer. Created by [`FramePool::encode`]; the buffer returns to its
/// pool when the frame drops.
#[derive(Debug)]
pub struct Frame {
    buf: Vec<u8>,
    pool: Option<Arc<PoolInner>>,
}

/// A reference-counted frame shared across per-connection writer queues:
/// the unit of encode-once fan-out.
pub type SharedFrame = Arc<Frame>;

impl Frame {
    /// The zero-length sentinel used by writer queues to request
    /// shutdown; carries no bytes and belongs to no pool.
    pub fn sentinel() -> SharedFrame {
        Arc::new(Frame {
            buf: Vec::new(),
            pool: None,
        })
    }

    /// True for the shutdown sentinel (no wire bytes at all — a real
    /// frame always carries at least its 4-byte prefix).
    pub fn is_sentinel(&self) -> bool {
        self.buf.is_empty()
    }

    /// The full on-socket bytes: length prefix followed by payload.
    pub fn wire_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// The frame payload (without the length prefix).
    pub fn payload(&self) -> &[u8] {
        self.buf.get(4..).unwrap_or(&[])
    }

    /// Writes the frame with a single `write_all` (prefix and payload
    /// live in the same buffer) and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.buf)?;
        w.flush()
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.give_back(std::mem::take(&mut self.buf));
        }
    }
}

/// Upper bound on `IoSlice`s handed to one `write_vectored` call (stack
/// array in [`FrameWriteCursor::write_step`]; also conveniently at or
/// above common OS `IOV_MAX`-friendly batch sizes for this workload).
const MAX_BATCH_SLICES: usize = 64;

/// Resumable progress through a batch of frames being written as
/// coalesced vectored I/O.
///
/// The cursor records which frame is next (`idx`) and how many of its
/// bytes already went out (`off`), so a partial write — including a
/// nonblocking socket returning `WouldBlock` mid-batch — can be resumed
/// on the *next* readiness event without re-sending anything. This is
/// what lets the reactor drive the PR5 coalesced write path without
/// parking a thread per connection: blocking writers loop
/// [`write_step`](Self::write_step) to completion ([`write_frames`]),
/// nonblocking writers call it once per readiness event and keep the
/// cursor in their per-connection state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameWriteCursor {
    /// First frame not yet fully written.
    idx: usize,
    /// Bytes of `frames[idx]` already written.
    off: usize,
}

impl FrameWriteCursor {
    /// A cursor at the start of a batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once every byte of `frames` has been written through this
    /// cursor.
    pub fn done(&self, frames: &[SharedFrame]) -> bool {
        self.idx >= frames.len()
    }

    /// Number of frames fully written so far.
    pub fn frames_done(&self) -> usize {
        self.idx
    }

    /// Performs *one* `write_vectored` attempt over the unwritten suffix
    /// of `frames` (up to `MAX_BATCH_SLICES` slices) and advances the
    /// cursor by however many bytes the writer accepted. Returns the
    /// byte count of that single attempt; callers decide whether to loop
    /// (blocking writers) or yield until the next readiness event
    /// (`WouldBlock` from a nonblocking socket propagates unchanged).
    ///
    /// Zero-length frames (queue sentinels) are skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns `WriteZero` if the writer accepts
    /// zero bytes for a non-empty frame.
    pub fn write_step<W: Write>(
        &mut self,
        w: &mut W,
        frames: &[SharedFrame],
    ) -> std::io::Result<usize> {
        // Skip sentinels / already-consumed frames so the slice window
        // below always starts at real bytes.
        while frames
            .get(self.idx)
            .is_some_and(|f| f.wire_bytes().len() <= self.off)
        {
            self.idx += 1;
            self.off = 0;
        }
        if self.idx >= frames.len() {
            return Ok(0);
        }
        let mut bufs = [IoSlice::new(&[]); MAX_BATCH_SLICES];
        let window = (frames.len() - self.idx).min(MAX_BATCH_SLICES);
        for (slot, frame) in bufs.iter_mut().zip(&frames[self.idx..self.idx + window]) {
            *slot = IoSlice::new(frame.wire_bytes());
        }
        if let Some(first) = frames.get(self.idx) {
            bufs[0] = IoSlice::new(first.wire_bytes().get(self.off..).unwrap_or(&[]));
        }
        let mut n = w.write_vectored(&bufs[..window])?;
        if n == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        let written = n;
        while n > 0 {
            let Some(frame) = frames.get(self.idx) else {
                break;
            };
            let remaining = frame.wire_bytes().len().saturating_sub(self.off);
            if n >= remaining {
                n -= remaining;
                self.idx += 1;
                self.off = 0;
            } else {
                self.off += n;
                n = 0;
            }
        }
        Ok(written)
    }
}

/// Writes a batch of frames as coalesced vectored I/O: one
/// `write_vectored` call per up-to-`MAX_BATCH_SLICES` frames (one
/// syscall on sockets), with partial writes resumed mid-frame. A single
/// flush follows the whole batch — this is how heartbeats and acks
/// piggyback on pending event flushes instead of paying their own
/// syscall.
///
/// This is the blocking-writer convenience over [`FrameWriteCursor`]:
/// it loops [`FrameWriteCursor::write_step`] until the batch is out.
///
/// # Errors
///
/// Propagates I/O errors; returns `WriteZero` if the writer stops
/// accepting bytes.
pub fn write_frames<W: Write>(w: &mut W, frames: &[SharedFrame]) -> std::io::Result<()> {
    let mut cursor = FrameWriteCursor::new();
    while !cursor.done(frames) {
        if cursor.write_step(w, frames)? == 0 {
            break; // only sentinels remained
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, write_frame, Message, Wire};
    use psguard_model::{Event, Filter};

    type Msg = Message<Filter, Event>;

    fn publish(payload: Vec<u8>) -> Msg {
        Message::Publish(Event::builder("t").payload(payload).build())
    }

    /// A writer that counts invocations and implements `write_vectored`
    /// natively (consuming every slice), like a socket does.
    #[derive(Default)]
    struct CountingWriter {
        bytes: Vec<u8>,
        writes: usize,
        vectored_writes: usize,
    }

    impl Write for CountingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.writes += 1;
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            self.vectored_writes += 1;
            let mut n = 0;
            for b in bufs {
                self.bytes.extend_from_slice(b);
                n += b.len();
            }
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn pooled_frame_matches_classic_encoding() {
        let pool = FramePool::new();
        let msg = publish(vec![7u8; 33]);
        let frame = pool.encode(&msg);

        let mut classic = Vec::new();
        write_frame(&mut classic, &msg.to_bytes()).unwrap();
        assert_eq!(frame.wire_bytes(), &classic[..], "on-socket bytes differ");
        assert_eq!(frame.payload(), &msg.to_bytes()[..]);

        let mut cursor = std::io::Cursor::new(frame.wire_bytes().to_vec());
        let decoded = Msg::from_bytes(&read_frame(&mut cursor).unwrap()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn buffers_are_reused_after_drop() {
        let pool = FramePool::new();
        for _ in 0..10 {
            let f = pool.encode(&publish(vec![1u8; 100]));
            drop(f);
        }
        let stats = pool.stats();
        assert_eq!(stats.frames_encoded, 10);
        assert_eq!(stats.fresh_buffers, 1, "{stats:?}");
        assert_eq!(stats.reused_buffers, 9, "{stats:?}");
        assert_eq!(pool.idle_buffers(), 1);
    }

    #[test]
    fn shared_fanout_returns_buffer_after_last_clone() {
        let pool = FramePool::new();
        let frame = pool.encode(&publish(vec![2u8; 50]));
        let clones: Vec<SharedFrame> = (0..64).map(|_| frame.clone()).collect();
        drop(frame);
        assert_eq!(pool.idle_buffers(), 0, "clones still hold the buffer");
        drop(clones);
        assert_eq!(pool.idle_buffers(), 1, "last drop returns the buffer");
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = FramePool::with_limits(8, 128);
        drop(pool.encode(&publish(vec![0u8; 4096])));
        assert_eq!(pool.idle_buffers(), 0);
        drop(pool.encode(&publish(vec![0u8; 16])));
        assert_eq!(pool.idle_buffers(), 1);
    }

    #[test]
    fn frame_write_is_one_write_call() {
        let pool = FramePool::new();
        let frame = pool.encode(&publish(vec![3u8; 10]));
        let mut w = CountingWriter::default();
        frame.write_to(&mut w).unwrap();
        assert_eq!(w.writes, 1, "prefix+payload must go out together");
        assert_eq!(w.bytes, frame.wire_bytes());
    }

    #[test]
    fn write_frame_is_one_vectored_write() {
        let mut w = CountingWriter::default();
        write_frame(&mut w, b"hello").unwrap();
        assert_eq!(w.vectored_writes, 1);
        assert_eq!(w.writes, 0);
        let mut cursor = std::io::Cursor::new(w.bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
    }

    #[test]
    fn multi_frame_batch_coalesces_into_one_vectored_write() {
        let pool = FramePool::new();
        let frames: Vec<SharedFrame> = (0..5)
            .map(|i| pool.encode(&publish(vec![i as u8; 20])))
            .collect();
        let mut w = CountingWriter::default();
        write_frames(&mut w, &frames).unwrap();
        assert_eq!(w.vectored_writes, 1, "5 frames, one coalesced write");
        let mut cursor = std::io::Cursor::new(w.bytes);
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap(), f.payload());
        }
    }

    /// A writer that accepts at most `cap` bytes per call, forcing
    /// partial-write resumption both mid-prefix and mid-payload.
    struct Trickle {
        bytes: Vec<u8>,
        cap: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.bytes.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            let mut left = self.cap;
            let mut n = 0;
            for b in bufs {
                let take = b.len().min(left);
                self.bytes.extend_from_slice(&b[..take]);
                n += take;
                left -= take;
                if left == 0 {
                    break;
                }
            }
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_writes_resume_correctly() {
        for cap in [1usize, 2, 3, 7] {
            let pool = FramePool::new();
            let frames: Vec<SharedFrame> = (0..4)
                .map(|i| pool.encode(&publish(vec![i as u8; 11])))
                .collect();
            let mut w = Trickle {
                bytes: Vec::new(),
                cap,
            };
            write_frames(&mut w, &frames).unwrap();
            let mut cursor = std::io::Cursor::new(w.bytes);
            for f in &frames {
                assert_eq!(read_frame(&mut cursor).unwrap(), f.payload(), "cap={cap}");
            }

            let mut w = Trickle {
                bytes: Vec::new(),
                cap,
            };
            write_frame(&mut w, b"trickled-payload").unwrap();
            let mut cursor = std::io::Cursor::new(w.bytes);
            assert_eq!(read_frame(&mut cursor).unwrap(), b"trickled-payload");
        }
    }

    #[test]
    fn batches_larger_than_slice_window_still_roundtrip() {
        let pool = FramePool::new();
        let frames: Vec<SharedFrame> = (0..(MAX_BATCH_SLICES + 9))
            .map(|i| pool.encode(&publish(vec![(i % 251) as u8; 5])))
            .collect();
        let mut w = CountingWriter::default();
        write_frames(&mut w, &frames).unwrap();
        assert_eq!(w.vectored_writes, 2, "64-slice window → two writes");
        let mut cursor = std::io::Cursor::new(w.bytes);
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap(), f.payload());
        }
    }

    /// A writer that alternates between accepting a few bytes and
    /// returning `WouldBlock`, like a nonblocking socket under pressure.
    struct Choppy {
        bytes: Vec<u8>,
        cap: usize,
        blocked: bool,
    }

    impl Write for Choppy {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.blocked = !self.blocked;
            if self.blocked {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.cap);
            self.bytes.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            self.blocked = !self.blocked;
            if self.blocked {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let mut left = self.cap;
            let mut n = 0;
            for b in bufs {
                let take = b.len().min(left);
                self.bytes.extend_from_slice(&b[..take]);
                n += take;
                left -= take;
                if left == 0 {
                    break;
                }
            }
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn cursor_resumes_across_would_block() {
        for cap in [1usize, 3, 9, 1024] {
            let pool = FramePool::new();
            let frames: Vec<SharedFrame> =
                (0..70) // spans two slice windows
                    .map(|i| pool.encode(&publish(vec![(i % 251) as u8; 13])))
                    .collect();
            let mut w = Choppy {
                bytes: Vec::new(),
                cap,
                blocked: false,
            };
            let mut cursor = FrameWriteCursor::new();
            let mut yields = 0usize;
            while !cursor.done(&frames) {
                match cursor.write_step(&mut w, &frames) {
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // Simulates waiting for the next readiness event.
                        yields += 1;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            assert!(yields > 0, "cap={cap}: writer never pushed back");
            assert_eq!(cursor.frames_done(), frames.len());
            let mut cursor_bytes = std::io::Cursor::new(w.bytes);
            for f in &frames {
                assert_eq!(read_frame(&mut cursor_bytes).unwrap(), f.payload());
            }
        }
    }

    #[test]
    fn cursor_skips_sentinels_and_reports_done() {
        let pool = FramePool::new();
        let frames = vec![
            Frame::sentinel(),
            pool.encode(&publish(vec![1u8; 8])),
            Frame::sentinel(),
        ];
        let mut w = CountingWriter::default();
        let mut cursor = FrameWriteCursor::new();
        while !cursor.done(&frames) {
            if cursor.write_step(&mut w, &frames).unwrap() == 0 {
                break;
            }
        }
        let mut c = std::io::Cursor::new(w.bytes);
        assert_eq!(read_frame(&mut c).unwrap(), frames[1].payload());
        // An all-sentinel batch writes nothing and terminates.
        let sentinels = vec![Frame::sentinel(), Frame::sentinel()];
        let mut w = CountingWriter::default();
        write_frames(&mut w, &sentinels).unwrap();
        assert!(w.bytes.is_empty());
    }

    #[test]
    fn sentinel_is_empty_and_poolless() {
        let s = Frame::sentinel();
        assert!(s.is_sentinel());
        assert!(s.wire_bytes().is_empty());
        assert!(s.payload().is_empty());
    }
}
