//! Fault injection on the TCP transport: protocol violations, abrupt
//! disconnects, and oversized frames must not take a broker down.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use psguard_model::{Event, Filter};
use psguard_siena::wire::{write_frame, Message, Wire, MAX_FRAME};
use psguard_siena::{spawn_broker, TcpClient};

const ACK_WAIT: Duration = Duration::from_secs(5);

fn sleep_ms(ms: u64) {
    std::thread::sleep(Duration::from_millis(ms));
}

#[test]
fn garbage_frames_do_not_kill_the_broker() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");

    // A hostile peer sends a well-framed but undecodable payload…
    {
        let mut s = TcpStream::connect(broker.addr()).expect("connect");
        write_frame(&mut s, &[0xff, 0xfe, 0xfd]).expect("write");
        sleep_ms(100);
    }
    // …and another sends raw garbage that is not even a frame.
    {
        let mut s = TcpStream::connect(broker.addr()).expect("connect");
        s.write_all(&[0u8; 3]).expect("write");
        // Dropping mid-frame simulates a crash.
    }

    // The broker still serves well-behaved clients.
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    let e = Event::builder("t").payload(vec![1]).build();
    publisher.publish(e.clone()).expect("publish");
    assert_eq!(sub.recv_timeout(Duration::from_secs(5)), Some(e));
    broker.shutdown();
}

#[test]
fn oversized_frame_drops_only_the_offender() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    {
        let mut s = TcpStream::connect(broker.addr()).expect("connect");
        // Declare a frame bigger than MAX_FRAME; the reader must bail out.
        s.write_all(&((MAX_FRAME as u32 + 1).to_be_bytes()))
            .expect("write");
        s.write_all(&[0u8; 64]).expect("write");
        sleep_ms(150);
    }
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    publisher
        .publish(Event::builder("t").build())
        .expect("publish");
    assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());
    broker.shutdown();
}

#[test]
fn subscriber_disconnect_cleans_registrations() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    {
        let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
        sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
            .expect("acked");
        // Dropped here: the broker must clear the peer's table entries.
    }
    sleep_ms(300);
    // Publishing now must not panic or wedge the broker; there is nobody
    // to deliver to.
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    publisher
        .publish(Event::builder("t").build())
        .expect("publish");
    // Same-connection barrier: frames on one connection are processed in
    // order, so this ack proves the broker consumed the publish above
    // before the fresh subscriber below can register.
    publisher
        .subscribe_acked(Filter::for_topic("barrier"), ACK_WAIT)
        .expect("acked");
    // A fresh subscriber works as usual.
    let sub2: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub2.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    let e = Event::builder("t").payload(vec![9]).build();
    publisher.publish(e.clone()).expect("publish");
    assert_eq!(sub2.recv_timeout(Duration::from_secs(5)), Some(e));
    broker.shutdown();
}

#[test]
fn foreign_unsubscribe_is_a_tolerated_noop() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");

    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    publisher
        .publish(Event::builder("t").payload(vec![1]).build())
        .expect("publish");
    assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());

    // An unrelated connection sends an unsubscribe for a filter it never
    // registered: the broker must shrug it off.
    let msg: Message<Filter, Event> = Message::Unsubscribe(Filter::for_topic("t"));
    let mut raw = TcpStream::connect(broker.addr()).expect("connect");
    write_frame(&mut raw, &msg.to_bytes()).expect("write");
    sleep_ms(100);

    // The real subscriber still receives events.
    publisher
        .publish(Event::builder("t").payload(vec![2]).build())
        .expect("publish");
    assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());
    broker.shutdown();
}
