//! Fault injection on the TCP transport: protocol violations, abrupt
//! disconnects, and oversized frames must not take a broker down.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use psguard_model::{Event, Filter};
use psguard_siena::wire::{write_frame, Message, Wire, MAX_FRAME};
use psguard_siena::{spawn_broker, TcpClient};

fn sleep_ms(ms: u64) {
    std::thread::sleep(Duration::from_millis(ms));
}

#[test]
fn garbage_frames_do_not_kill_the_broker() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");

    // A hostile peer sends a well-framed but undecodable payload…
    {
        let mut s = TcpStream::connect(broker.addr()).expect("connect");
        write_frame(&mut s, &[0xff, 0xfe, 0xfd]).expect("write");
        sleep_ms(100);
    }
    // …and another sends raw garbage that is not even a frame.
    {
        let mut s = TcpStream::connect(broker.addr()).expect("connect");
        s.write_all(&[0u8; 3]).expect("write");
        // Dropping mid-frame simulates a crash.
    }
    sleep_ms(150);

    // The broker still serves well-behaved clients.
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub.subscribe(Filter::for_topic("t"));
    sleep_ms(150);
    let e = Event::builder("t").payload(vec![1]).build();
    publisher.publish(e.clone());
    assert_eq!(sub.recv_timeout(Duration::from_secs(5)), Some(e));
    broker.shutdown();
}

#[test]
fn oversized_frame_drops_only_the_offender() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    {
        let mut s = TcpStream::connect(broker.addr()).expect("connect");
        // Declare a frame bigger than MAX_FRAME; the reader must bail out.
        s.write_all(&((MAX_FRAME as u32 + 1).to_be_bytes()))
            .expect("write");
        s.write_all(&[0u8; 64]).expect("write");
        sleep_ms(150);
    }
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub.subscribe(Filter::for_topic("t"));
    sleep_ms(150);
    publisher.publish(Event::builder("t").build());
    assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());
    broker.shutdown();
}

#[test]
fn subscriber_disconnect_cleans_registrations() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    {
        let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
        sub.subscribe(Filter::for_topic("t"));
        sleep_ms(150);
        // Dropped here: the broker must clear the peer's table entries.
    }
    sleep_ms(300);
    // Publishing now must not panic or wedge the broker; there is nobody
    // to deliver to.
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    publisher.publish(Event::builder("t").build());
    sleep_ms(150);
    // A fresh subscriber works as usual.
    let sub2: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub2.subscribe(Filter::for_topic("t"));
    sleep_ms(150);
    let e = Event::builder("t").payload(vec![9]).build();
    publisher.publish(e.clone());
    assert_eq!(sub2.recv_timeout(Duration::from_secs(5)), Some(e));
    broker.shutdown();
}

#[test]
fn unsubscribe_stops_delivery() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");

    sub.subscribe(Filter::for_topic("t"));
    sleep_ms(150);
    publisher.publish(Event::builder("t").payload(vec![1]).build());
    assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());

    // Unsubscribe via a raw frame (the client API has subscribe/publish;
    // unsubscription is part of the wire protocol).
    let msg: Message<Filter, Event> = Message::Unsubscribe(Filter::for_topic("t"));
    let mut raw = TcpStream::connect(broker.addr()).expect("connect");
    // This new connection has no registration, so the real unsubscribe
    // must come from the subscribed client instead — exercise the broker's
    // tolerance of a no-op unsubscribe first:
    write_frame(&mut raw, &msg.to_bytes()).expect("write");
    sleep_ms(100);

    // Now a publish still reaches the (still subscribed) client.
    publisher.publish(Event::builder("t").payload(vec![2]).build());
    assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());
    broker.shutdown();
}
