//! TCP transport integration tests, synchronized by the subscribe-ack
//! readiness handshake (no sleep-based races): basic routing, the
//! ack chain across broker levels, client reconnection with subscription
//! replay, heartbeat-based eviction, and bounded-queue backpressure.

use std::time::Duration;

use psguard_model::{Constraint, Event, Filter, Op};
use psguard_siena::{
    spawn_broker, spawn_broker_with, OverflowPolicy, TcpClient, TcpConfig, TcpError,
};

const ACK_WAIT: Duration = Duration::from_secs(5);

#[test]
fn single_broker_pubsub_roundtrip() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");

    sub.subscribe_acked(
        Filter::for_topic("t").with(Constraint::new("x", Op::Ge(10))),
        ACK_WAIT,
    )
    .expect("acked");

    let hit = Event::builder("t")
        .attr("x", 42i64)
        .payload(vec![1])
        .build();
    let miss = Event::builder("t").attr("x", 1i64).build();
    publisher.publish(miss.clone()).expect("publish");
    publisher.publish(hit.clone()).expect("publish");

    let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery");
    assert_eq!(got, hit);
    // The non-matching event must not arrive.
    assert!(sub.recv_timeout(Duration::from_millis(200)).is_none());
    broker.shutdown();
}

#[test]
fn two_level_tree_routes_through_root() {
    let root = spawn_broker::<Filter>("127.0.0.1:0", None).expect("root");
    let left = spawn_broker::<Filter>("127.0.0.1:0", Some(root.addr())).expect("left");
    let right = spawn_broker::<Filter>("127.0.0.1:0", Some(root.addr())).expect("right");

    let sub: TcpClient<Filter> = TcpClient::connect(left.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(right.addr()).expect("connect");

    // The ack arrives only after left has forwarded to the root and the
    // root confirmed — so the publish below cannot outrun the
    // subscription.
    sub.subscribe_acked(Filter::for_topic("news"), ACK_WAIT)
        .expect("acked across two levels");

    let e = Event::builder("news").payload(b"flash".to_vec()).build();
    publisher.publish(e.clone()).expect("publish");
    let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery");
    assert_eq!(got, e);

    drop(sub);
    drop(publisher);
    left.shutdown();
    right.shutdown();
    root.shutdown();
}

#[test]
fn unsubscribe_stops_replay_and_delivery() {
    let broker = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");

    let f = Filter::for_topic("t");
    sub.subscribe_acked(f.clone(), ACK_WAIT).expect("acked");
    publisher
        .publish(Event::builder("t").payload(vec![1]).build())
        .expect("publish");
    assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());

    sub.unsubscribe(&f).expect("unsubscribe");
    // Re-subscribing on a second topic and waiting for its ack gives the
    // unsubscribe time to take effect (frames are ordered per connection).
    sub.subscribe_acked(Filter::for_topic("other"), ACK_WAIT)
        .expect("acked");
    publisher
        .publish(Event::builder("t").payload(vec![2]).build())
        .expect("publish");
    assert!(
        sub.recv_timeout(Duration::from_millis(300)).is_none(),
        "unsubscribed topic must stop arriving"
    );
    broker.shutdown();
}

#[test]
fn client_reconnects_and_replays_subscriptions() {
    let cfg = TcpConfig {
        heartbeat_interval: Duration::from_millis(50),
        read_timeout: Duration::from_millis(50),
        reconnect_initial: Duration::from_millis(25),
        reconnect_max: Duration::from_millis(100),
        max_reconnect_attempts: 200,
        ..TcpConfig::default()
    };
    let broker = spawn_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");
    let addr = broker.addr();

    let sub: TcpClient<Filter> = TcpClient::connect_with(addr, cfg).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");

    // Kill the broker, then bring a new one up on the same port.
    broker.shutdown();
    let broker2 =
        spawn_broker_with::<Filter>(&addr.to_string(), None, cfg).expect("respawn on same port");

    // The client must reconnect and replay its subscription; poll with a
    // fresh subscribe_acked as the readiness barrier for the new epoch.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match sub.subscribe_acked(Filter::for_topic("t2"), Duration::from_millis(500)) {
            Ok(()) => break,
            Err(_) if std::time::Instant::now() < deadline => continue,
            Err(e) => panic!("client never reconnected: {e}"),
        }
    }
    assert!(sub.stats().reconnects >= 1, "{:?}", sub.stats());

    let publisher: TcpClient<Filter> = TcpClient::connect_with(addr, cfg).expect("connect");
    let e = Event::builder("t").payload(vec![7]).build();
    publisher.publish(e.clone()).expect("publish");
    assert_eq!(
        sub.recv_timeout(Duration::from_secs(5)),
        Some(e),
        "replayed subscription must deliver on the new broker"
    );
    broker2.shutdown();
}

#[test]
fn silent_peer_is_evicted_after_missed_heartbeats() {
    let cfg = TcpConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_miss_limit: 3,
        read_timeout: Duration::from_millis(50),
        ..TcpConfig::default()
    };
    let broker = spawn_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");

    // A raw socket that subscribes, then never speaks again (no
    // heartbeats): the broker must evict it and drop its subscription.
    use psguard_siena::wire::{write_frame, Message, Wire};
    let mut silent = std::net::TcpStream::connect(broker.addr()).expect("connect");
    let hello: Message<Filter, Event> = Message::Hello { kind: 1 };
    write_frame(&mut silent, &hello.to_bytes()).expect("hello");
    let sub_msg: Message<Filter, Event> = Message::Subscribe(Filter::for_topic("t"));
    write_frame(&mut silent, &sub_msg.to_bytes()).expect("subscribe");

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while broker.stats().evicted_peers == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no eviction after 10 s: {:?}",
            broker.stats()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // A live client still works (its own heartbeats keep it admitted).
    let sub: TcpClient<Filter> = TcpClient::connect_with(broker.addr(), cfg).expect("connect");
    let publisher: TcpClient<Filter> =
        TcpClient::connect_with(broker.addr(), cfg).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    std::thread::sleep(Duration::from_millis(300)); // > miss deadline
    let e = Event::builder("t").build();
    publisher.publish(e.clone()).expect("publish");
    assert_eq!(sub.recv_timeout(Duration::from_secs(5)), Some(e));
    broker.shutdown();
}

#[test]
fn evicted_stalled_peer_is_hard_closed() {
    // Eviction must actually release the socket even when the peer has
    // stopped reading: a flush-then-close can never finish against a
    // full kernel buffer, so the broker hard-closes instead. Observable
    // from outside as EOF (or a reset, if data was still unread) on the
    // evicted peer's socket within the eviction window.
    use std::io::Read;
    let cfg = TcpConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_miss_limit: 3,
        queue_capacity: 8,
        ..TcpConfig::default()
    };
    let broker = spawn_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");

    // The stalled peer: subscribes via raw socket, then neither reads
    // nor writes again.
    use psguard_siena::wire::{write_frame, Message, Wire};
    let mut stalled = std::net::TcpStream::connect(broker.addr()).expect("connect");
    let hello: Message<Filter, Event> = Message::Hello { kind: 1 };
    write_frame(&mut stalled, &hello.to_bytes()).expect("hello");
    let sub_msg: Message<Filter, Event> = Message::Subscribe(Filter::for_topic("t"));
    write_frame(&mut stalled, &sub_msg.to_bytes()).expect("subscribe");

    // Publish large events while waiting for the eviction so the
    // peer's kernel buffer fills and its queue is non-empty at
    // eviction time — the case a flush-then-close would hang on.
    let publisher: TcpClient<Filter> =
        TcpClient::connect_with(broker.addr(), cfg).expect("connect");
    let e = Event::builder("t").payload(vec![0u8; 64 * 1024]).build();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while broker.stats().evicted_peers == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no eviction after 10 s: {:?}",
            broker.stats()
        );
        publisher.publish(e.clone()).expect("publish");
        std::thread::sleep(Duration::from_millis(1));
    }

    // The broker must drop the connection promptly; a socket still open
    // past the deadline means the old flush-then-close leak is back.
    stalled
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("set timeout");
    let close_deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 4096];
    let closed = loop {
        match stalled.read(&mut buf) {
            Ok(0) => break true, // EOF: orderly close
            Ok(_) => {}          // draining frames queued before the close
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if std::time::Instant::now() >= close_deadline {
                    break false;
                }
            }
            Err(_) => break true, // reset: hard close with unread data
        }
    };
    assert!(
        closed,
        "evicted peer's socket must be hard-closed, not left to a flush that cannot finish"
    );
    drop(publisher);
    broker.shutdown();
}

#[test]
fn drop_newest_backpressure_is_reported() {
    let cfg = TcpConfig {
        queue_capacity: 2,
        overflow: OverflowPolicy::DropNewest,
        heartbeat_interval: Duration::ZERO,
        write_timeout: Duration::from_millis(200),
        ..TcpConfig::default()
    };
    // A bare listener whose accepted socket is never read: client frames
    // fill the kernel buffer, the supervisor blocks in write, and the
    // tiny command queue overflows.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let _keep = std::thread::spawn(move || {
        // Accept and hold the socket open without reading.
        let conn = listener.accept();
        std::thread::sleep(Duration::from_secs(10));
        drop(conn);
    });

    let client: TcpClient<Filter> = TcpClient::connect_with(addr, cfg).expect("connect");
    // A large payload saturates the kernel buffer quickly.
    let big = Event::builder("t").payload(vec![0u8; 512 * 1024]).build();
    let mut saw_backpressure = false;
    for _ in 0..64 {
        match client.publish(big.clone()) {
            Ok(()) => continue,
            Err(TcpError::Backpressure) => {
                saw_backpressure = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(saw_backpressure, "full bounded queue must report drops");
    assert!(client.stats().dropped_frames >= 1);
}

#[test]
fn fanout_serializes_event_exactly_once() {
    // Heartbeats off so the broker pool's encode counter moves only for
    // the traffic this test generates.
    let cfg = TcpConfig {
        heartbeat_interval: Duration::ZERO,
        ..TcpConfig::default()
    };
    let broker = spawn_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");

    let subs: Vec<TcpClient<Filter>> = (0..3)
        .map(|_| TcpClient::connect_with(broker.addr(), cfg).expect("connect"))
        .collect();
    for s in &subs {
        s.subscribe_acked(Filter::for_topic("fan"), ACK_WAIT)
            .expect("acked");
    }
    let publisher: TcpClient<Filter> =
        TcpClient::connect_with(broker.addr(), cfg).expect("connect");
    // An acked subscribe fences the publisher's connection startup
    // (hello + pre-encoded heartbeat) so the snapshots below only see
    // the publish itself.
    publisher
        .subscribe_acked(Filter::for_topic("sync-only"), ACK_WAIT)
        .expect("acked");

    // All subscription/ack traffic is settled; snapshot the encode counts.
    let broker_before = broker.pool_stats().frames_encoded;
    let pub_before = publisher.pool_stats().frames_encoded;

    let e = Event::builder("fan").payload(vec![42; 64]).build();
    publisher.publish(e.clone()).expect("publish");
    for s in &subs {
        let got = s.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(got, e);
    }

    // Three recipients, one serialization: the fan-out shared one frame.
    assert_eq!(
        broker.pool_stats().frames_encoded - broker_before,
        1,
        "a publish fanned out to 3 peers must encode exactly once"
    );
    // The publisher client also encoded its Publish exactly once.
    assert_eq!(publisher.pool_stats().frames_encoded - pub_before, 1);

    drop(publisher);
    drop(subs);
    broker.shutdown();
}
