//! Reactor soak: hold 1000+ concurrent loopback subscriber connections
//! on one broker, assert the worker-thread count never moves, fan an
//! event out to all of them, and check that a stalled consumer degrades
//! gracefully (bounded-queue drops, not broker stalls).
//!
//! Subscribers are hosted on a handful of shared [`ClientReactor`]s —
//! the point of the reactor client is precisely that N connections do
//! not cost N threads on either side of the socket.

use std::time::{Duration, Instant};

use psguard_model::{Event, Filter};
use psguard_siena::{spawn_broker_with, ClientReactor, ReactorClient, TcpConfig};

const SOAK_CONNS: usize = 1000;
const ACK_WAIT: Duration = Duration::from_secs(30);

/// OS threads of the current process (Linux: /proc/self/status).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[test]
fn thousand_connections_fixed_threads_and_fanout() {
    // Heartbeats off: a 1k-conn soak under the scan poller on a small CI
    // box can starve individual connection heartbeats long enough to
    // trip eviction; liveness is not what this test measures.
    let cfg = TcpConfig {
        heartbeat_interval: Duration::ZERO,
        worker_threads: 2,
        queue_capacity: 64,
        ..TcpConfig::default()
    };
    let broker = spawn_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");
    assert_eq!(broker.worker_threads(), 2, "explicit pool size respected");
    let broker_threads = broker.thread_count();
    let before = process_threads();

    // 8 client reactors host all subscriber connections: thread cost is
    // 8 + broker's fixed pool, independent of SOAK_CONNS.
    let reactors: Vec<ClientReactor<Filter>> =
        (0..8).map(|_| ClientReactor::with_config(cfg)).collect();
    let mut subs: Vec<ReactorClient<Filter>> = Vec::with_capacity(SOAK_CONNS);
    for i in 0..SOAK_CONNS {
        let r = &reactors[i % reactors.len()];
        let c = r.connect(broker.addr()).expect("connect");
        c.subscribe(Filter::for_topic("soak")).expect("subscribe");
        subs.push(c);
    }
    // One ack fence per connection confirms every subscription is
    // installed (frames are ordered per connection, so the second
    // subscribe acking implies the first is live).
    for c in &subs {
        c.subscribe_acked(Filter::for_topic("fence"), ACK_WAIT)
            .expect("acked under soak load");
    }

    // Thread count stayed flat: broker handle reports the same fixed
    // pool, and the process as a whole grew only by the 8 reactors (give
    // a small allowance for test-harness threads).
    assert_eq!(
        broker.thread_count(),
        broker_threads,
        "broker thread count must not grow with connections"
    );
    if let (Some(b), Some(a)) = (before, process_threads()) {
        let grown = a.saturating_sub(b);
        assert!(
            grown <= reactors.len() + 4,
            "process grew {grown} threads for {SOAK_CONNS} connections — \
             not a fixed-pool reactor"
        );
    }

    // Fan one publish out to all 1000 subscribers.
    let publisher = reactors[0].connect(broker.addr()).expect("connect");
    let e = Event::builder("soak").payload(vec![7u8; 32]).build();
    publisher.publish(e.clone()).expect("publish");
    let deadline = Instant::now() + Duration::from_secs(60);
    for (i, c) in subs.iter().enumerate() {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(
            c.recv_timeout(left.max(Duration::from_millis(1))) == Some(e.clone()),
            "subscriber {i}/{SOAK_CONNS} missed the fan-out"
        );
    }

    drop(publisher);
    drop(subs);
    drop(reactors);
    broker.shutdown();
}

#[test]
fn stalled_consumer_degrades_gracefully() {
    // A subscriber that never drains its socket must not stall the
    // broker: its bounded queue fills, overflow is counted as drops, and
    // other subscribers keep receiving.
    let cfg = TcpConfig {
        heartbeat_interval: Duration::ZERO,
        worker_threads: 1,
        queue_capacity: 8,
        ..TcpConfig::default()
    };
    let broker = spawn_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");

    // The stalled consumer: subscribes via raw socket, then never reads.
    use psguard_siena::wire::{write_frame, Message, Wire};
    let mut stalled = std::net::TcpStream::connect(broker.addr()).expect("connect");
    let hello: Message<Filter, Event> = Message::Hello { kind: 1 };
    write_frame(&mut stalled, &hello.to_bytes()).expect("hello");
    let sub: Message<Filter, Event> = Message::Subscribe(Filter::for_topic("t"));
    write_frame(&mut stalled, &sub.to_bytes()).expect("subscribe");

    let reactor: ClientReactor<Filter> = ClientReactor::with_config(cfg);
    let healthy = reactor.connect(broker.addr()).expect("connect");
    healthy
        .subscribe_acked(Filter::for_topic("t"), Duration::from_secs(5))
        .expect("acked");
    let publisher = reactor.connect(broker.addr()).expect("connect");

    // Enough large events to fill the stalled peer's kernel buffer and
    // then its 8-frame queue.
    let e = Event::builder("t").payload(vec![0u8; 64 * 1024]).build();
    let mut healthy_got = 0u32;
    for _ in 0..200 {
        publisher.publish(e.clone()).expect("publish");
        if healthy.recv_timeout(Duration::from_secs(10)).is_some() {
            healthy_got += 1;
        }
    }
    assert_eq!(
        healthy_got, 200,
        "healthy subscriber must keep receiving past a stalled peer"
    );
    let drops = broker.stats().dropped_frames;
    assert!(
        drops > 0,
        "stalled peer's overflow must surface as counted drops: {:?}",
        broker.stats()
    );

    drop(stalled);
    drop(publisher);
    drop(healthy);
    drop(reactor);
    broker.shutdown();
}

#[test]
fn stalled_app_consumer_does_not_stall_client_reactor() {
    // The client-side mirror of the broker test above: an application
    // that stops draining recv on one connection must not block the
    // reactor's I/O thread — other connections hosted by the same
    // reactor keep receiving, and the stalled connection's overflow is
    // counted as dropped deliveries rather than deadlocking a
    // push_blocking publisher against a stuck reactor.
    let cfg = TcpConfig {
        heartbeat_interval: Duration::ZERO,
        worker_threads: 1,
        ..TcpConfig::default()
    };
    let broker = spawn_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");

    // One reactor hosts all three connections, so a blocked reactor
    // thread would starve the healthy subscriber and the publisher too.
    let reactor: ClientReactor<Filter> = ClientReactor::with_config(cfg);
    let stalled = reactor.connect(broker.addr()).expect("connect");
    let healthy = reactor.connect(broker.addr()).expect("connect");
    let publisher = reactor.connect(broker.addr()).expect("connect");
    stalled
        .subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    healthy
        .subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");

    // More events than the per-connection delivery channel holds
    // (4096): the stalled handle never calls recv, so its channel must
    // fill and overflow without wedging anything else.
    const EVENTS: usize = 4400;
    let e = Event::builder("t").payload(vec![3u8; 16]).build();
    for i in 0..EVENTS {
        publisher.publish(e.clone()).expect("publish");
        assert!(
            healthy.recv_timeout(Duration::from_secs(10)) == Some(e.clone()),
            "healthy connection starved at event {i}/{EVENTS} — reactor stalled on the stalled consumer"
        );
    }
    let dropped = stalled.stats().dropped_deliveries;
    assert!(
        dropped > 0,
        "stalled consumer's overflow must surface as dropped deliveries: {:?}",
        stalled.stats()
    );

    drop(publisher);
    drop(healthy);
    drop(stalled);
    drop(reactor);
    broker.shutdown();
}
