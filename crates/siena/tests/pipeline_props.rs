//! Property tests pinning the sharded pipeline to the serial broker: for
//! any subscription table, batch, sender, and shard count in {1, 2, 4, 8},
//! `ShardedPipeline::publish_batch` must deliver exactly the (peer, event)
//! pairs the serial `Broker::publish` loop delivers, in the same order.

use proptest::prelude::*;
use psguard_model::{AttrValue, Constraint, Event, Filter, IntRange, Op};
use psguard_siena::{Action, Broker, Peer, ShardedPipeline};

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (-20i64..60).prop_map(Op::Ge),
        (-20i64..60).prop_map(Op::Le),
        (-20i64..60).prop_map(Op::Gt),
        (-20i64..60).prop_map(Op::Lt),
        (-20i64..60).prop_map(|v| Op::Eq(AttrValue::Int(v))),
        (-20i64..40, 0i64..25)
            .prop_map(|(lo, w)| Op::InRange(IntRange::new(lo, lo + w).expect("lo <= hi"))),
        "[ab]{0,3}".prop_map(Op::StrPrefix),
        "[ab]{0,3}".prop_map(|s| Op::Eq(AttrValue::Str(s))),
    ]
    .boxed()
}

/// Topics t0..t3 plus the wildcard; few attribute names so filters and
/// events collide often.
fn filter_strategy() -> BoxedStrategy<Filter> {
    (0u8..5, prop::collection::vec(("[ab]", op_strategy()), 0..4))
        .prop_map(|(topic, constraints)| {
            let mut f = if topic < 4 {
                Filter::for_topic(format!("t{topic}"))
            } else {
                Filter::any()
            };
            for (name, op) in constraints {
                f = f.with(Constraint::new(name, op));
            }
            f
        })
        .boxed()
}

fn event_strategy() -> BoxedStrategy<Event> {
    (
        0u8..5,
        prop::collection::vec(
            (
                "[ab]",
                prop_oneof![
                    (-25i64..65).prop_map(AttrValue::Int),
                    "[ab]{0,3}".prop_map(AttrValue::Str),
                ],
            ),
            0..3,
        ),
    )
        .prop_map(|(topic, attrs)| {
            let mut b = Event::builder(format!("t{topic}"));
            for (name, value) in attrs {
                b = b.attr(name, value);
            }
            b.build()
        })
        .boxed()
}

fn sender(sel: u8) -> Peer {
    match sel % 3 {
        0 => Peer::Parent,
        1 => Peer::Child(0),
        _ => Peer::Local(7),
    }
}

/// Per-event serial reference: the peers `Broker::publish` delivers to,
/// in delivery order.
fn serial_reference(broker: &mut Broker<Filter>, from: Peer, events: &[Event]) -> Vec<Vec<Peer>> {
    events
        .iter()
        .map(|e| {
            broker
                .publish(from, e.clone())
                .into_iter()
                .map(|a| match a {
                    Action::Deliver(p, ev) => {
                        assert_eq!(&ev, e, "broker must deliver the published event");
                        p
                    }
                    other => panic!("publish emitted a non-delivery action {other:?}"),
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pipeline_agrees_with_serial_broker(
        subs in prop::collection::vec((0u32..6, filter_strategy()), 0..40),
        events in prop::collection::vec(event_strategy(), 1..12),
        is_root in any::<bool>(),
        from_sel in 0u8..3,
    ) {
        let from = sender(from_sel);
        let mut broker: Broker<Filter> = Broker::new(is_root);
        for (peer, filter) in &subs {
            broker.subscribe(Peer::Child(*peer), filter.clone());
        }
        let reference = serial_reference(&mut broker, from, &events);
        // The serial (event, peer) delivery multiset, for the explicit
        // multiset half of the equivalence claim.
        let mut ref_multiset: Vec<(usize, Peer)> = reference
            .iter()
            .enumerate()
            .flat_map(|(i, peers)| peers.iter().map(move |&p| (i, p)))
            .collect();
        ref_multiset.sort();

        for shards in [1usize, 2, 4, 8] {
            let mut pipeline: ShardedPipeline<Filter> = ShardedPipeline::new(is_root, shards);
            for (peer, filter) in &subs {
                pipeline.subscribe(Peer::Child(*peer), filter.clone());
            }
            let deliveries = pipeline.publish_batch(from, &events);
            prop_assert_eq!(deliveries.len(), events.len());
            let mut multiset: Vec<(usize, Peer)> = Vec::new();
            for (i, reference_peers) in reference.iter().enumerate() {
                prop_assert_eq!(
                    deliveries.for_event(i),
                    &reference_peers[..],
                    "shards={} event={}",
                    shards,
                    i
                );
                multiset.extend(deliveries.for_event(i).iter().map(|&p| (i, p)));
            }
            multiset.sort();
            prop_assert_eq!(&multiset, &ref_multiset, "shards={}", shards);
        }
    }

    #[test]
    fn pipeline_agrees_with_serial_broker_after_churn(
        subs in prop::collection::vec((0u32..5, filter_strategy()), 1..30),
        removal_mask in any::<u64>(),
        events in prop::collection::vec(event_strategy(), 1..8),
        from_sel in 0u8..3,
    ) {
        let from = sender(from_sel);
        let mut broker: Broker<Filter> = Broker::new(true);
        let mut pipelines: Vec<ShardedPipeline<Filter>> =
            [1usize, 2, 4, 8].iter().map(|&n| ShardedPipeline::new(true, n)).collect();
        // The broker's table is idempotent per (peer, filter) while the
        // pipeline registers duplicates; dedup here so a later
        // unsubscribe means the same thing to both.
        let mut inserted: Vec<(u32, Filter)> = Vec::new();
        for (peer, filter) in &subs {
            if inserted.iter().any(|(p, f)| p == peer && f == filter) {
                continue;
            }
            inserted.push((*peer, filter.clone()));
            broker.subscribe(Peer::Child(*peer), filter.clone());
            for p in &mut pipelines {
                p.subscribe(Peer::Child(*peer), filter.clone());
            }
        }
        for (i, (peer, filter)) in inserted.iter().enumerate() {
            if removal_mask >> (i % 64) & 1 == 1 {
                broker.unsubscribe(Peer::Child(*peer), filter);
                for p in &mut pipelines {
                    p.unsubscribe(Peer::Child(*peer), filter);
                }
            }
        }
        broker.peer_down(Peer::Child(0));
        for p in &mut pipelines {
            p.peer_down(Peer::Child(0));
        }

        let reference = serial_reference(&mut broker, from, &events);
        for p in &mut pipelines {
            let shards = p.shard_count();
            let deliveries = p.publish_batch(from, &events);
            for (i, reference_peers) in reference.iter().enumerate() {
                prop_assert_eq!(
                    deliveries.for_event(i),
                    &reference_peers[..],
                    "shards={} event={}",
                    shards,
                    i
                );
            }
        }
    }
}
