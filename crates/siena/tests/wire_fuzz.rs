//! Decoder robustness: arbitrary and mutated byte strings must never
//! panic the wire codec — malformed input from a hostile peer yields
//! `Err`, not a crash (the TCP reader drops such peers).

use proptest::prelude::*;
use psguard_model::{AttrValue, Constraint, Event, Filter, IntRange, Op};
use psguard_siena::wire::{read_frame, read_frame_into, write_frame, MAX_FRAME};
use psguard_siena::{FramePool, Message, Wire};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totally random bytes: decode returns, never panics.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Filter::from_bytes(&bytes);
        let _ = Event::from_bytes(&bytes);
        let _ = <Message<Filter, Event>>::from_bytes(&bytes);
    }

    /// Truncations of valid encodings: every prefix decodes to Err (or,
    /// for the full length, Ok with the original value).
    #[test]
    fn truncated_encodings_error_cleanly(
        lo in -50i64..50,
        w in 1i64..50,
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let msg: Message<Filter, Event> = Message::Publish(
            Event::builder("t")
                .attr("x", lo)
                .attr("r", psguard_model::AttrValue::Int(lo + w))
                .payload(payload)
                .build(),
        );
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(<Message<Filter, Event>>::from_bytes(&bytes[..cut]).is_err());
        }
        prop_assert_eq!(<Message<Filter, Event>>::from_bytes(&bytes).expect("full"), msg);
    }

    /// Single-byte mutations: decode returns (Ok-with-different-value or
    /// Err are both fine; panicking or looping is not).
    #[test]
    fn mutated_encodings_never_panic(
        flip_at in 0usize..512,
        xor in 1u8..=255,
    ) {
        let f = Filter::for_topic("stocks")
            .with(Constraint::new("price", Op::InRange(IntRange::new(5, 90).expect("valid"))))
            .with(Constraint::new("sym", Op::StrPrefix("GO".into())));
        let msg: Message<Filter, Event> = Message::Subscribe(f);
        let mut bytes = msg.to_bytes();
        let i = flip_at % bytes.len();
        bytes[i] ^= xor;
        let _ = <Message<Filter, Event>>::from_bytes(&bytes);
    }

    /// Framed transport inputs — truncated streams, oversized length
    /// prefixes, and bit-flipped frames — must surface as `Err` from the
    /// frame reader (never a panic or a huge allocation), and a frame
    /// that survives intact must round-trip.
    #[test]
    fn frame_reader_survives_hostile_streams(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        cut in 0usize..512,
        flip_at in 0usize..512,
        xor in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();

        // Truncation: every strict prefix errors cleanly.
        let cut = cut % wire.len();
        let mut buf = Vec::new();
        prop_assert!(read_frame_into(&mut std::io::Cursor::new(&wire[..cut]), &mut buf).is_err());

        // Bit flip: Err or a different payload, never a panic; a flipped
        // length prefix may demand more bytes than exist, which is Err.
        let mut flipped = wire.clone();
        let i = flip_at % flipped.len();
        flipped[i] ^= xor;
        let mut buf = Vec::new();
        let _ = read_frame_into(&mut std::io::Cursor::new(&flipped[..]), &mut buf);

        // Intact: round-trips through both reader entry points.
        let mut buf = Vec::new();
        read_frame_into(&mut std::io::Cursor::new(&wire[..]), &mut buf).unwrap();
        prop_assert_eq!(&buf, &payload);
        prop_assert_eq!(read_frame(&mut std::io::Cursor::new(&wire[..])).unwrap(), payload);
    }

    /// Oversized length prefixes (any value above MAX_FRAME) are rejected
    /// before allocation, regardless of how much body follows.
    #[test]
    fn oversized_prefix_always_rejected(
        over in (MAX_FRAME as u64 + 1)..=u64::from(u32::MAX),
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut wire = (over as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&body);
        let mut buf = Vec::new();
        prop_assert!(read_frame_into(&mut std::io::Cursor::new(&wire[..]), &mut buf).is_err());
        prop_assert_eq!(buf.capacity(), 0);
    }

    /// The pooled encode path is byte-identical to the classic
    /// to_bytes + write_frame path for arbitrary messages, and decoding
    /// the pooled frame returns the original message.
    #[test]
    fn pooled_encode_matches_classic_and_roundtrips(
        topic in "[a-z]{1,8}",
        lo in -100i64..100,
        w in 1i64..100,
        s in "[ -~]{0,12}",
        payload in prop::collection::vec(any::<u8>(), 0..96),
        which in 0u8..3,
    ) {
        let msg: Message<Filter, Event> = match which {
            0 => Message::Subscribe(
                Filter::for_topic(&topic)
                    .with(Constraint::new("x", Op::InRange(IntRange::new(lo, lo + w).unwrap())))
                    .with(Constraint::new("s", Op::StrPrefix(s.clone()))),
            ),
            1 => Message::Publish(
                Event::builder(&topic)
                    .attr("x", lo)
                    .attr("s", AttrValue::Str(s.clone()))
                    .payload(payload.clone())
                    .build(),
            ),
            _ => Message::SubAck { crc: lo as u32 },
        };

        let pool = FramePool::new();
        let frame = pool.encode(&msg);
        let mut classic = Vec::new();
        write_frame(&mut classic, &msg.to_bytes()).unwrap();
        prop_assert_eq!(frame.wire_bytes(), &classic[..]);

        let mut buf = Vec::new();
        read_frame_into(&mut std::io::Cursor::new(frame.wire_bytes()), &mut buf).unwrap();
        prop_assert_eq!(<Message<Filter, Event>>::from_bytes(&buf).unwrap(), msg);
    }
}
