//! Decoder robustness: arbitrary and mutated byte strings must never
//! panic the wire codec — malformed input from a hostile peer yields
//! `Err`, not a crash (the TCP reader drops such peers).

use proptest::prelude::*;
use psguard_model::{Constraint, Event, Filter, IntRange, Op};
use psguard_siena::{Message, Wire};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totally random bytes: decode returns, never panics.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Filter::from_bytes(&bytes);
        let _ = Event::from_bytes(&bytes);
        let _ = <Message<Filter, Event>>::from_bytes(&bytes);
    }

    /// Truncations of valid encodings: every prefix decodes to Err (or,
    /// for the full length, Ok with the original value).
    #[test]
    fn truncated_encodings_error_cleanly(
        lo in -50i64..50,
        w in 1i64..50,
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let msg: Message<Filter, Event> = Message::Publish(
            Event::builder("t")
                .attr("x", lo)
                .attr("r", psguard_model::AttrValue::Int(lo + w))
                .payload(payload)
                .build(),
        );
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(<Message<Filter, Event>>::from_bytes(&bytes[..cut]).is_err());
        }
        prop_assert_eq!(<Message<Filter, Event>>::from_bytes(&bytes).expect("full"), msg);
    }

    /// Single-byte mutations: decode returns (Ok-with-different-value or
    /// Err are both fine; panicking or looping is not).
    #[test]
    fn mutated_encodings_never_panic(
        flip_at in 0usize..512,
        xor in 1u8..=255,
    ) {
        let f = Filter::for_topic("stocks")
            .with(Constraint::new("price", Op::InRange(IntRange::new(5, 90).expect("valid"))))
            .with(Constraint::new("sym", Op::StrPrefix("GO".into())));
        let msg: Message<Filter, Event> = Message::Subscribe(f);
        let mut bytes = msg.to_bytes();
        let i = flip_at % bytes.len();
        bytes[i] ^= xor;
        let _ = <Message<Filter, Event>>::from_bytes(&bytes);
    }
}
