//! The chaos harness: the overlay engine run under seeded fault plans,
//! with the delivery invariants the recovery machinery must uphold.
//!
//! Invariants checked here:
//!
//! 1. **Zero-fault equivalence** — `run_faulty` with a fault-free plan is
//!    behaviorally identical to `run`, across topologies.
//! 2. **Exactly-once eventual delivery** — with retransmission and dedup
//!    enabled, lossy/duplicating/jittery links never lose or double a
//!    copy (checked over 20+ explicit seeds and property-sampled plans).
//! 3. **Crash recovery** — a broker outage mid-run delays, but does not
//!    lose or duplicate, deliveries.
//! 4. **Revocation safety** — once a client is revoked, no event
//!    published after the revocation instant reaches it, faults or not.
//! 5. **Non-matching silence** — fault machinery (retransmits, dups,
//!    restarts) never leaks an event to a client whose filter does not
//!    match it.
//! 6. **Eviction + heal** — a partitioned child broker is evicted after
//!    missed heartbeats and its subtree resumes delivery after healing.

use std::collections::HashSet;

use proptest::prelude::*;
use psguard_model::{Event, Filter};
use psguard_net::{FaultPlan, LinkFaults, NodeId, Window};
use psguard_siena::{
    CostModel, Engine, EngineConfig, FaultConfig, FaultRunReport, RecoveryConfig, Revocation,
};

fn engine(brokers: u32, subs: u32) -> Engine<Filter> {
    Engine::new(EngineConfig {
        broker_nodes: brokers,
        subscribers: subs,
        seed: 42,
    })
}

fn workload() -> Vec<Event> {
    (0..8)
        .map(|i| Event::builder("t").attr("x", i as i64).build())
        .collect()
}

/// Asserts the exactly-once contract: every published event reaches every
/// matching client exactly once.
fn assert_exactly_once(r: &FaultRunReport, clients: &[u32], label: &str) {
    assert_eq!(
        r.delivered,
        r.published * clients.len() as u64,
        "{label}: delivered != published × subscribers: {r:?}"
    );
    let mut seen = HashSet::new();
    for d in &r.deliveries {
        assert!(
            seen.insert((d.client, d.event_seq)),
            "{label}: duplicate delivery of seq {} to client {}",
            d.event_seq,
            d.client
        );
    }
    for &c in clients {
        for seq in 0..r.published {
            assert!(
                seen.contains(&(c, seq)),
                "{label}: client {c} missed seq {seq}"
            );
        }
    }
}

#[test]
fn zero_fault_equivalence_across_topologies() {
    let events = workload();
    for brokers in [2u32, 6, 14] {
        let subs = 6u32;
        let mut a = engine(brokers, subs);
        let mut b = engine(brokers, subs);
        for c in 0..subs {
            a.subscribe(c, Filter::for_topic("t"));
            b.subscribe(c, Filter::for_topic("t"));
        }
        let plain = a.run(&events, 40.0, 1.0, &CostModel::plain());
        let mut cfg = FaultConfig::none(7);
        let faulty = b.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(faulty.published, plain.published, "brokers={brokers}");
        assert_eq!(faulty.delivered, plain.delivered, "brokers={brokers}");
        assert!(
            (faulty.mean_latency_ms - plain.mean_latency_ms).abs() < 1e-9,
            "brokers={brokers}: {} vs {}",
            faulty.mean_latency_ms,
            plain.mean_latency_ms
        );
        assert!(
            (faulty.p99_latency_ms - plain.p99_latency_ms).abs() < 1e-9,
            "brokers={brokers}"
        );
        assert_eq!(faulty.retransmissions, 0);
        assert_eq!(faulty.duplicates_suppressed, 0);
        assert_eq!(faulty.fault_stats.dropped, 0);
    }
}

#[test]
fn exactly_once_holds_for_twenty_seeds() {
    let events = workload();
    let clients: Vec<u32> = (0..6).collect();
    for seed in 0..20u64 {
        let mut eng = engine(6, 6);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let plan = FaultPlan::new(seed).with_default_link_faults(LinkFaults {
            drop_p: 0.2,
            dup_p: 0.1,
            jitter_us: 10_000,
        });
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(r.abandoned, 0, "seed {seed}: no hop may be abandoned");
        assert_exactly_once(&r, &clients, &format!("seed {seed}"));
    }
}

#[test]
fn broker_outage_delays_but_never_loses() {
    let events = workload();
    let clients: Vec<u32> = (0..4).collect();
    for (from, until) in [(200_000u64, 700_000u64), (400_000, 1_500_000)] {
        let mut eng = engine(6, 4);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let mut plan = FaultPlan::new(13);
        plan.add_crash(NodeId(2), Window::new(from, until));
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 30.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_exactly_once(&r, &clients, &format!("outage {from}..{until}"));
    }
}

#[test]
fn durable_crash_and_restart_is_exactly_once_for_twenty_seeds() {
    // Brokers modeled with durable event logs: a crash-and-restart keeps
    // the dedup window (re-seeded from the recovered log's high-water
    // mark) and the unacked outbound hops, so lossy links *plus* a
    // mid-run broker outage still deliver exactly once — with the
    // post-restart duplicates counted as suppressed, never re-delivered.
    let events = workload();
    let clients: Vec<u32> = (0..6).collect();
    for seed in 0..20u64 {
        let mut eng = engine(6, 6);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let victim = 1 + (seed % 5) as u32;
        let from = 150_000 + 20_000 * seed;
        let mut plan = FaultPlan::new(seed).with_default_link_faults(LinkFaults {
            drop_p: 0.2,
            dup_p: 0.1,
            jitter_us: 10_000,
        });
        plan.add_crash(NodeId(victim), Window::new(from, from + 500_000));
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig {
            heartbeat_interval_us: 0,
            ..RecoveryConfig::durable()
        });
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(r.abandoned, 0, "seed {seed}: no hop may be abandoned");
        assert_exactly_once(&r, &clients, &format!("durable crash seed {seed}"));
    }
}

#[test]
fn revocation_is_safe_under_faults() {
    let events = workload();
    let revoke_at = 400_000u64;
    let mut eng = engine(6, 8);
    for c in 0..8 {
        eng.subscribe(c, Filter::for_topic("t"));
    }
    let plan = FaultPlan::new(21).with_default_link_faults(LinkFaults {
        drop_p: 0.15,
        dup_p: 0.15,
        jitter_us: 15_000,
    });
    let mut cfg = FaultConfig::with_recovery(plan);
    cfg.recovery = Some(RecoveryConfig::no_heartbeats());
    cfg.revocations = vec![Revocation {
        client: 5,
        at_us: revoke_at,
    }];
    cfg.record_deliveries = true;
    let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
    assert_eq!(r.revoked, vec![(5, revoke_at)]);
    for d in r.deliveries.iter().filter(|d| d.client == 5) {
        assert!(
            d.sent_at < revoke_at,
            "post-revocation event (sent {}) delivered to revoked client",
            d.sent_at
        );
    }
    // The surviving clients keep the exactly-once guarantee.
    let others: Vec<u32> = (0..8).filter(|&c| c != 5).collect();
    let mut seen = HashSet::new();
    for d in r.deliveries.iter().filter(|d| d.client != 5) {
        assert!(seen.insert((d.client, d.event_seq)));
    }
    assert_eq!(seen.len() as u64, r.published * others.len() as u64);
}

#[test]
fn non_matching_subscribers_stay_silent_under_faults() {
    let events = workload();
    let mut eng = engine(6, 8);
    // Even clients match the workload topic; odd clients subscribe to a
    // topic nobody publishes.
    for c in 0..8u32 {
        let topic = if c % 2 == 0 { "t" } else { "quiet" };
        eng.subscribe(c, Filter::for_topic(topic));
    }
    let plan = FaultPlan::new(31).with_default_link_faults(LinkFaults {
        drop_p: 0.2,
        dup_p: 0.25,
        jitter_us: 20_000,
    });
    let mut cfg = FaultConfig::with_recovery(plan);
    cfg.recovery = Some(RecoveryConfig::no_heartbeats());
    cfg.record_deliveries = true;
    let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
    assert!(
        r.deliveries.iter().all(|d| d.client % 2 == 0),
        "faults must never leak events to non-matching clients: {r:?}"
    );
    let matching: Vec<u32> = (0..8).filter(|c| c % 2 == 0).collect();
    assert_exactly_once(&r, &matching, "matching half");
}

#[test]
fn partitioned_child_is_evicted_and_heals() {
    let events = workload();
    let mut eng = engine(2, 4);
    for c in 0..4 {
        eng.subscribe(c, Filter::for_topic("t"));
    }
    let mut plan = FaultPlan::new(17);
    plan.add_partition(NodeId(0), NodeId(1), Window::new(100_000, 1_600_000));
    let mut cfg = FaultConfig::with_recovery(plan);
    cfg.recovery = Some(RecoveryConfig {
        ack_timeout_us: 100_000,
        max_retries: 2,
        backoff_cap_us: 200_000,
        heartbeat_interval_us: 200_000,
        ..RecoveryConfig::overlay_default()
    });
    cfg.record_deliveries = true;
    let r = eng.run_faulty(&events, 20.0, 3.0, &CostModel::plain(), &mut cfg);
    assert!(r.evictions >= 1, "partition must trigger eviction: {r:?}");
    assert!(r.reinstalls >= 1, "heal must reinstall: {r:?}");
    // Every client still receives events published after the heal.
    for c in 0..4u32 {
        assert!(
            r.deliveries
                .iter()
                .any(|d| d.client == c && d.sent_at > 2_200_000),
            "client {c} must resume post-heal: {r:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once eventual delivery under arbitrary seeded lossy plans:
    /// any combination of drop/dup/jitter, topology, and rate — as long
    /// as retransmission and dedup are on — delivers every event to every
    /// subscriber exactly once.
    #[test]
    fn exactly_once_under_any_lossy_plan(
        seed in 0u64..1_000_000,
        drop_p in 0.0f64..0.3,
        dup_p in 0.0f64..0.3,
        jitter_ms in 0u64..20,
        brokers in prop_oneof![Just(2u32), Just(6u32)],
        subs in 2u32..6,
        rate in 20.0f64..50.0,
    ) {
        let events = workload();
        let clients: Vec<u32> = (0..subs).collect();
        let mut eng = engine(brokers, subs);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let plan = FaultPlan::new(seed).with_default_link_faults(LinkFaults {
            drop_p,
            dup_p,
            jitter_us: jitter_ms * 1000,
        });
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, rate, 0.5, &CostModel::plain(), &mut cfg);
        prop_assert_eq!(r.abandoned, 0, "no hop may exhaust retries: {:?}", r);
        prop_assert_eq!(
            r.delivered,
            r.published * clients.len() as u64,
            "delivery fraction {} under {:?}",
            r.delivery_fraction(r.published * clients.len() as u64),
            r.fault_stats
        );
        let mut seen = HashSet::new();
        for d in &r.deliveries {
            prop_assert!(seen.insert((d.client, d.event_seq)), "duplicate {:?}", d);
        }
    }

    /// Exactly-once across a broker crash window on clean links: the
    /// outage may delay deliveries arbitrarily but never lose or double.
    #[test]
    fn exactly_once_across_any_broker_crash(
        seed in 0u64..1_000_000,
        victim in 1u32..6,
        from_ms in 50u64..400,
        len_ms in 50u64..600,
        subs in 2u32..6,
    ) {
        let events = workload();
        let clients: Vec<u32> = (0..subs).collect();
        let mut eng = engine(6, subs);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let mut plan = FaultPlan::new(seed);
        plan.add_crash(
            NodeId(victim),
            Window::new(from_ms * 1000, (from_ms + len_ms) * 1000),
        );
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 30.0, 1.0, &CostModel::plain(), &mut cfg);
        prop_assert_eq!(
            r.delivered,
            r.published * clients.len() as u64,
            "crash {}..{} of broker {}: {:?}",
            from_ms,
            from_ms + len_ms,
            victim,
            r
        );
        let mut seen = HashSet::new();
        for d in &r.deliveries {
            prop_assert!(seen.insert((d.client, d.event_seq)), "duplicate {:?}", d);
        }
    }

    /// Exactly-once under lossy links *and* a broker crash, with durable
    /// logs: the combination the plain recovery machinery cannot promise
    /// (a crash wipes the dead sender's retransmit state, so a copy that
    /// was also dropped on the wire is gone). The durable log keeps the
    /// hop and waits the outage out.
    #[test]
    fn exactly_once_under_lossy_crash_with_durable_log(
        seed in 0u64..1_000_000,
        drop_p in 0.0f64..0.25,
        dup_p in 0.0f64..0.25,
        victim in 1u32..6,
        from_ms in 50u64..400,
        len_ms in 50u64..600,
        subs in 2u32..6,
    ) {
        let events = workload();
        let clients: Vec<u32> = (0..subs).collect();
        let mut eng = engine(6, subs);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let mut plan = FaultPlan::new(seed).with_default_link_faults(LinkFaults {
            drop_p,
            dup_p,
            jitter_us: 10_000,
        });
        plan.add_crash(
            NodeId(victim),
            Window::new(from_ms * 1000, (from_ms + len_ms) * 1000),
        );
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig {
            heartbeat_interval_us: 0,
            ..RecoveryConfig::durable()
        });
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 30.0, 1.0, &CostModel::plain(), &mut cfg);
        prop_assert_eq!(r.abandoned, 0, "no hop may exhaust retries: {:?}", r);
        prop_assert_eq!(
            r.delivered,
            r.published * clients.len() as u64,
            "crash {}..{} of broker {} under {:?}",
            from_ms,
            from_ms + len_ms,
            victim,
            r.fault_stats
        );
        let mut seen = HashSet::new();
        for d in &r.deliveries {
            prop_assert!(seen.insert((d.client, d.event_seq)), "duplicate {:?}", d);
        }
    }
}
