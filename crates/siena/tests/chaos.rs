//! The chaos harness: the overlay engine run under seeded fault plans,
//! with the delivery invariants the recovery machinery must uphold.
//!
//! Invariants checked here:
//!
//! 1. **Zero-fault equivalence** — `run_faulty` with a fault-free plan is
//!    behaviorally identical to `run`, across topologies.
//! 2. **Exactly-once eventual delivery** — with retransmission and dedup
//!    enabled, lossy/duplicating/jittery links never lose or double a
//!    copy (checked over 20+ explicit seeds and property-sampled plans).
//! 3. **Crash recovery** — a broker outage mid-run delays, but does not
//!    lose or duplicate, deliveries.
//! 4. **Revocation safety** — once a client is revoked, no event
//!    published after the revocation instant reaches it, faults or not.
//! 5. **Non-matching silence** — fault machinery (retransmits, dups,
//!    restarts) never leaks an event to a client whose filter does not
//!    match it.
//! 6. **Eviction + heal** — a partitioned child broker is evicted after
//!    missed heartbeats and its subtree resumes delivery after healing.

use std::collections::HashSet;

use proptest::prelude::*;
use psguard_model::{Event, Filter};
use psguard_net::{FaultPlan, LinkFaults, NodeId, Window};
use psguard_siena::{
    CostModel, Engine, EngineConfig, FaultConfig, FaultRunReport, RecoveryConfig, Revocation,
};

fn engine(brokers: u32, subs: u32) -> Engine<Filter> {
    Engine::new(EngineConfig {
        broker_nodes: brokers,
        subscribers: subs,
        seed: 42,
    })
}

fn workload() -> Vec<Event> {
    (0..8)
        .map(|i| Event::builder("t").attr("x", i as i64).build())
        .collect()
}

/// Asserts the exactly-once contract: every published event reaches every
/// matching client exactly once.
fn assert_exactly_once(r: &FaultRunReport, clients: &[u32], label: &str) {
    assert_eq!(
        r.delivered,
        r.published * clients.len() as u64,
        "{label}: delivered != published × subscribers: {r:?}"
    );
    let mut seen = HashSet::new();
    for d in &r.deliveries {
        assert!(
            seen.insert((d.client, d.event_seq)),
            "{label}: duplicate delivery of seq {} to client {}",
            d.event_seq,
            d.client
        );
    }
    for &c in clients {
        for seq in 0..r.published {
            assert!(
                seen.contains(&(c, seq)),
                "{label}: client {c} missed seq {seq}"
            );
        }
    }
}

#[test]
fn zero_fault_equivalence_across_topologies() {
    let events = workload();
    for brokers in [2u32, 6, 14] {
        let subs = 6u32;
        let mut a = engine(brokers, subs);
        let mut b = engine(brokers, subs);
        for c in 0..subs {
            a.subscribe(c, Filter::for_topic("t"));
            b.subscribe(c, Filter::for_topic("t"));
        }
        let plain = a.run(&events, 40.0, 1.0, &CostModel::plain());
        let mut cfg = FaultConfig::none(7);
        let faulty = b.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(faulty.published, plain.published, "brokers={brokers}");
        assert_eq!(faulty.delivered, plain.delivered, "brokers={brokers}");
        assert!(
            (faulty.mean_latency_ms - plain.mean_latency_ms).abs() < 1e-9,
            "brokers={brokers}: {} vs {}",
            faulty.mean_latency_ms,
            plain.mean_latency_ms
        );
        assert!(
            (faulty.p99_latency_ms - plain.p99_latency_ms).abs() < 1e-9,
            "brokers={brokers}"
        );
        assert_eq!(faulty.retransmissions, 0);
        assert_eq!(faulty.duplicates_suppressed, 0);
        assert_eq!(faulty.fault_stats.dropped, 0);
    }
}

#[test]
fn exactly_once_holds_for_twenty_seeds() {
    let events = workload();
    let clients: Vec<u32> = (0..6).collect();
    for seed in 0..20u64 {
        let mut eng = engine(6, 6);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let plan = FaultPlan::new(seed).with_default_link_faults(LinkFaults {
            drop_p: 0.2,
            dup_p: 0.1,
            jitter_us: 10_000,
        });
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(r.abandoned, 0, "seed {seed}: no hop may be abandoned");
        assert_exactly_once(&r, &clients, &format!("seed {seed}"));
    }
}

#[test]
fn broker_outage_delays_but_never_loses() {
    let events = workload();
    let clients: Vec<u32> = (0..4).collect();
    for (from, until) in [(200_000u64, 700_000u64), (400_000, 1_500_000)] {
        let mut eng = engine(6, 4);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let mut plan = FaultPlan::new(13);
        plan.add_crash(NodeId(2), Window::new(from, until));
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 30.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_exactly_once(&r, &clients, &format!("outage {from}..{until}"));
    }
}

#[test]
fn durable_crash_and_restart_is_exactly_once_for_twenty_seeds() {
    // Brokers modeled with durable event logs: a crash-and-restart keeps
    // the dedup window (re-seeded from the recovered log's high-water
    // mark) and the unacked outbound hops, so lossy links *plus* a
    // mid-run broker outage still deliver exactly once — with the
    // post-restart duplicates counted as suppressed, never re-delivered.
    let events = workload();
    let clients: Vec<u32> = (0..6).collect();
    for seed in 0..20u64 {
        let mut eng = engine(6, 6);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let victim = 1 + (seed % 5) as u32;
        let from = 150_000 + 20_000 * seed;
        let mut plan = FaultPlan::new(seed).with_default_link_faults(LinkFaults {
            drop_p: 0.2,
            dup_p: 0.1,
            jitter_us: 10_000,
        });
        plan.add_crash(NodeId(victim), Window::new(from, from + 500_000));
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig {
            heartbeat_interval_us: 0,
            ..RecoveryConfig::durable()
        });
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
        assert_eq!(r.abandoned, 0, "seed {seed}: no hop may be abandoned");
        assert_exactly_once(&r, &clients, &format!("durable crash seed {seed}"));
    }
}

#[test]
fn revocation_is_safe_under_faults() {
    let events = workload();
    let revoke_at = 400_000u64;
    let mut eng = engine(6, 8);
    for c in 0..8 {
        eng.subscribe(c, Filter::for_topic("t"));
    }
    let plan = FaultPlan::new(21).with_default_link_faults(LinkFaults {
        drop_p: 0.15,
        dup_p: 0.15,
        jitter_us: 15_000,
    });
    let mut cfg = FaultConfig::with_recovery(plan);
    cfg.recovery = Some(RecoveryConfig::no_heartbeats());
    cfg.revocations = vec![Revocation {
        client: 5,
        at_us: revoke_at,
    }];
    cfg.record_deliveries = true;
    let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
    assert_eq!(r.revoked, vec![(5, revoke_at)]);
    for d in r.deliveries.iter().filter(|d| d.client == 5) {
        assert!(
            d.sent_at < revoke_at,
            "post-revocation event (sent {}) delivered to revoked client",
            d.sent_at
        );
    }
    // The surviving clients keep the exactly-once guarantee.
    let others: Vec<u32> = (0..8).filter(|&c| c != 5).collect();
    let mut seen = HashSet::new();
    for d in r.deliveries.iter().filter(|d| d.client != 5) {
        assert!(seen.insert((d.client, d.event_seq)));
    }
    assert_eq!(seen.len() as u64, r.published * others.len() as u64);
}

#[test]
fn non_matching_subscribers_stay_silent_under_faults() {
    let events = workload();
    let mut eng = engine(6, 8);
    // Even clients match the workload topic; odd clients subscribe to a
    // topic nobody publishes.
    for c in 0..8u32 {
        let topic = if c % 2 == 0 { "t" } else { "quiet" };
        eng.subscribe(c, Filter::for_topic(topic));
    }
    let plan = FaultPlan::new(31).with_default_link_faults(LinkFaults {
        drop_p: 0.2,
        dup_p: 0.25,
        jitter_us: 20_000,
    });
    let mut cfg = FaultConfig::with_recovery(plan);
    cfg.recovery = Some(RecoveryConfig::no_heartbeats());
    cfg.record_deliveries = true;
    let r = eng.run_faulty(&events, 40.0, 1.0, &CostModel::plain(), &mut cfg);
    assert!(
        r.deliveries.iter().all(|d| d.client % 2 == 0),
        "faults must never leak events to non-matching clients: {r:?}"
    );
    let matching: Vec<u32> = (0..8).filter(|c| c % 2 == 0).collect();
    assert_exactly_once(&r, &matching, "matching half");
}

#[test]
fn partitioned_child_is_evicted_and_heals() {
    let events = workload();
    let mut eng = engine(2, 4);
    for c in 0..4 {
        eng.subscribe(c, Filter::for_topic("t"));
    }
    let mut plan = FaultPlan::new(17);
    plan.add_partition(NodeId(0), NodeId(1), Window::new(100_000, 1_600_000));
    let mut cfg = FaultConfig::with_recovery(plan);
    cfg.recovery = Some(RecoveryConfig {
        ack_timeout_us: 100_000,
        max_retries: 2,
        backoff_cap_us: 200_000,
        heartbeat_interval_us: 200_000,
        ..RecoveryConfig::overlay_default()
    });
    cfg.record_deliveries = true;
    let r = eng.run_faulty(&events, 20.0, 3.0, &CostModel::plain(), &mut cfg);
    assert!(r.evictions >= 1, "partition must trigger eviction: {r:?}");
    assert!(r.reinstalls >= 1, "heal must reinstall: {r:?}");
    // Every client still receives events published after the heal.
    for c in 0..4u32 {
        assert!(
            r.deliveries
                .iter()
                .any(|d| d.client == c && d.sent_at > 2_200_000),
            "client {c} must resume post-heal: {r:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once eventual delivery under arbitrary seeded lossy plans:
    /// any combination of drop/dup/jitter, topology, and rate — as long
    /// as retransmission and dedup are on — delivers every event to every
    /// subscriber exactly once.
    #[test]
    fn exactly_once_under_any_lossy_plan(
        seed in 0u64..1_000_000,
        drop_p in 0.0f64..0.3,
        dup_p in 0.0f64..0.3,
        jitter_ms in 0u64..20,
        brokers in prop_oneof![Just(2u32), Just(6u32)],
        subs in 2u32..6,
        rate in 20.0f64..50.0,
    ) {
        let events = workload();
        let clients: Vec<u32> = (0..subs).collect();
        let mut eng = engine(brokers, subs);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let plan = FaultPlan::new(seed).with_default_link_faults(LinkFaults {
            drop_p,
            dup_p,
            jitter_us: jitter_ms * 1000,
        });
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, rate, 0.5, &CostModel::plain(), &mut cfg);
        prop_assert_eq!(r.abandoned, 0, "no hop may exhaust retries: {:?}", r);
        prop_assert_eq!(
            r.delivered,
            r.published * clients.len() as u64,
            "delivery fraction {} under {:?}",
            r.delivery_fraction(r.published * clients.len() as u64),
            r.fault_stats
        );
        let mut seen = HashSet::new();
        for d in &r.deliveries {
            prop_assert!(seen.insert((d.client, d.event_seq)), "duplicate {:?}", d);
        }
    }

    /// Exactly-once across a broker crash window on clean links: the
    /// outage may delay deliveries arbitrarily but never lose or double.
    #[test]
    fn exactly_once_across_any_broker_crash(
        seed in 0u64..1_000_000,
        victim in 1u32..6,
        from_ms in 50u64..400,
        len_ms in 50u64..600,
        subs in 2u32..6,
    ) {
        let events = workload();
        let clients: Vec<u32> = (0..subs).collect();
        let mut eng = engine(6, subs);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let mut plan = FaultPlan::new(seed);
        plan.add_crash(
            NodeId(victim),
            Window::new(from_ms * 1000, (from_ms + len_ms) * 1000),
        );
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig::no_heartbeats());
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 30.0, 1.0, &CostModel::plain(), &mut cfg);
        prop_assert_eq!(
            r.delivered,
            r.published * clients.len() as u64,
            "crash {}..{} of broker {}: {:?}",
            from_ms,
            from_ms + len_ms,
            victim,
            r
        );
        let mut seen = HashSet::new();
        for d in &r.deliveries {
            prop_assert!(seen.insert((d.client, d.event_seq)), "duplicate {:?}", d);
        }
    }

    /// Exactly-once under lossy links *and* a broker crash, with durable
    /// logs: the combination the plain recovery machinery cannot promise
    /// (a crash wipes the dead sender's retransmit state, so a copy that
    /// was also dropped on the wire is gone). The durable log keeps the
    /// hop and waits the outage out.
    #[test]
    fn exactly_once_under_lossy_crash_with_durable_log(
        seed in 0u64..1_000_000,
        drop_p in 0.0f64..0.25,
        dup_p in 0.0f64..0.25,
        victim in 1u32..6,
        from_ms in 50u64..400,
        len_ms in 50u64..600,
        subs in 2u32..6,
    ) {
        let events = workload();
        let clients: Vec<u32> = (0..subs).collect();
        let mut eng = engine(6, subs);
        for &c in &clients {
            eng.subscribe(c, Filter::for_topic("t"));
        }
        let mut plan = FaultPlan::new(seed).with_default_link_faults(LinkFaults {
            drop_p,
            dup_p,
            jitter_us: 10_000,
        });
        plan.add_crash(
            NodeId(victim),
            Window::new(from_ms * 1000, (from_ms + len_ms) * 1000),
        );
        let mut cfg = FaultConfig::with_recovery(plan);
        cfg.recovery = Some(RecoveryConfig {
            heartbeat_interval_us: 0,
            ..RecoveryConfig::durable()
        });
        cfg.record_deliveries = true;
        let r = eng.run_faulty(&events, 30.0, 1.0, &CostModel::plain(), &mut cfg);
        prop_assert_eq!(r.abandoned, 0, "no hop may exhaust retries: {:?}", r);
        prop_assert_eq!(
            r.delivered,
            r.published * clients.len() as u64,
            "crash {}..{} of broker {} under {:?}",
            from_ms,
            from_ms + len_ms,
            victim,
            r.fault_stats
        );
        let mut seen = HashSet::new();
        for d in &r.deliveries {
            prop_assert!(seen.insert((d.client, d.event_seq)), "duplicate {:?}", d);
        }
    }
}

/// 8. **Batched rekeying under faults** — the revocation-storm scenario
///    replayed through the overlay under a lossy/duplicating fault plan,
///    while the same revocations drive twin subscriber-group managers:
///    one rekeying per change (naive), one settling the storm as a
///    single batched epoch flush (ROADMAP item 3). Invariants:
///
/// * the overlay's revocation safety holds unchanged — no event sent at
///   or after a client's revocation instant reaches it, and surviving
///   clients keep exactly-once delivery;
/// * after the batched flush, every group key a revoked client's range
///   touched has rotated (forward secrecy survives batching);
/// * the batched and naive twins land on bit-identical key state, and
///   the batch never costs more rekey messages than the per-change sum.
#[test]
fn batched_revocation_storm_holds_invariants_under_faults() {
    use psguard_analysis::{ScenarioConfig, ScenarioKind, ScenarioTrace};
    use psguard_groupkey::{RekeyStrategy, SubscriberGroupManager};
    use psguard_model::IntRange;

    const RATE: f64 = 40.0;
    const INTERARRIVAL_US: u64 = 25_000;

    let cfg = ScenarioConfig {
        kind: ScenarioKind::RevocationStorm,
        topics: 4,
        zipf_s: 1.1,
        subscribers: 16,
        events: 24,
        value_range: 64,
        sub_width: 48,
        seed: 0xBA7C,
    };
    let trace = ScenarioTrace::generate(&cfg);
    assert!(!trace.revocations.is_empty(), "storm must revoke someone");
    let mut revoked_at: Vec<(u32, u64)> = trace
        .revocations
        .iter()
        .map(|r| (r.client, r.at_event as u64 * INTERARRIVAL_US))
        .collect();
    revoked_at.sort_by_key(|&(c, t)| (c, t));
    revoked_at.dedup_by_key(|&mut (c, _)| c);

    // Overlay half: the trace replayed under faults with the storm's
    // revocations — the engine-level invariant from PR2's suite.
    let events: Vec<Event> = trace
        .publishes
        .iter()
        .map(|p| {
            Event::builder(format!("s{}", p.topic))
                .attr("x", p.value)
                .build()
        })
        .collect();
    let mut eng = engine(6, cfg.subscribers);
    for s in &trace.initial {
        eng.subscribe(
            s.client,
            Filter::for_topic(format!("s{}", s.topic)).with(psguard_model::Constraint::new(
                "x",
                psguard_model::Op::InRange(
                    psguard_model::IntRange::new(s.lo, s.hi).expect("trace ranges ordered"),
                ),
            )),
        );
    }
    let plan = FaultPlan::new(0xBA7C).with_default_link_faults(LinkFaults {
        drop_p: 0.15,
        dup_p: 0.1,
        jitter_us: 10_000,
    });
    let mut fc = FaultConfig::with_recovery(plan);
    fc.recovery = Some(RecoveryConfig::no_heartbeats());
    fc.revocations = revoked_at
        .iter()
        .map(|&(client, at_us)| Revocation { client, at_us })
        .collect();
    fc.record_deliveries = true;
    let r = eng.run_faulty(
        &events,
        RATE,
        events.len() as f64 / RATE,
        &CostModel::plain(),
        &mut fc,
    );
    let revoke_of = |client: u32| -> Option<u64> {
        revoked_at
            .iter()
            .find(|&&(c, _)| c == client)
            .map(|&(_, t)| t)
    };
    let mut seen = HashSet::new();
    for d in &r.deliveries {
        assert!(
            seen.insert((d.client, d.event_seq)),
            "duplicate delivery of seq {} to client {}",
            d.event_seq,
            d.client
        );
        if let Some(t) = revoke_of(d.client) {
            assert!(
                d.sent_at < t,
                "revoked client {} got seq {} sent at {} >= {t}",
                d.client,
                d.event_seq,
                d.sent_at
            );
        }
    }

    // Key half: the same membership and storm through twin group
    // managers — per-change rekeying vs one batched epoch flush.
    let group_range = IntRange::new(0, cfg.value_range - 1).expect("valid");
    let mut naive = SubscriberGroupManager::new(group_range, RekeyStrategy::Lkh, b"chaos-twin");
    let mut batched = SubscriberGroupManager::new(group_range, RekeyStrategy::Lkh, b"chaos-twin");
    for s in &trace.initial {
        let sub_range = IntRange::new(s.lo, s.hi).expect("trace ranges ordered");
        naive.join(s.client as u64, sub_range);
        batched.join(s.client as u64, sub_range);
    }
    for &(client, _) in &revoked_at {
        naive.leave_lazy(client as u64);
        batched.leave_lazy(client as u64);
    }
    // Forward secrecy oracle: every key a revoked range touches must
    // change at the flush.
    let touched: Vec<i64> = (group_range.lo()..=group_range.hi())
        .filter(|v| {
            trace
                .initial
                .iter()
                .any(|s| revoke_of(s.client).is_some() && (s.lo..=s.hi).contains(v))
        })
        .collect();
    assert!(!touched.is_empty(), "degenerate storm: no covered values");
    let pre: Vec<_> = touched
        .iter()
        .map(|&v| batched.group_key_for_value(v).cloned())
        .collect();

    let rn = naive.epoch_rekey_naive();
    let rb = batched.epoch_rekey();

    for (i, &v) in touched.iter().enumerate() {
        let post = batched.group_key_for_value(v);
        assert!(
            post != pre[i].as_ref(),
            "group key for value {v} did not rotate at the batched flush"
        );
    }
    for &(client, _) in &revoked_at {
        assert!(
            !batched.can_decrypt(client as u64, touched[0]),
            "revoked client {client} still decrypts"
        );
        assert!(batched.subscriber_keys(client as u64).is_empty());
    }
    for s in &trace.initial {
        if revoke_of(s.client).is_none() {
            assert!(
                batched.can_decrypt(s.client as u64, (s.lo + s.hi) / 2),
                "survivor {} lost access after the batched flush",
                s.client
            );
        }
    }
    // Twins agree bit-for-bit; the batch is never costlier.
    for v in group_range.lo()..=group_range.hi() {
        assert_eq!(naive.group_key_for_value(v), batched.group_key_for_value(v));
    }
    for c in 0..cfg.subscribers {
        assert_eq!(
            naive.subscriber_keys(c as u64),
            batched.subscriber_keys(c as u64)
        );
    }
    assert!(
        rb.messages_to_members <= rn.messages_to_members,
        "batched flush ({}) costlier than naive ({})",
        rb.messages_to_members,
        rn.messages_to_members
    );
}

/// 7. **Scenario matrix** — every adversarial workload shape from the
///    macro-bench generator ([`ScenarioTrace`]) replayed through the
///    overlay under a seeded lossy/duplicating fault plan, with a
///    per-client oracle derived from the trace itself:
///
/// * a client never revoked must receive exactly the matching events,
///   each exactly once;
/// * a revoked client (churn leaves map to revocations — the engine has
///   no mid-run unsubscribe — and joins are installed up front) must
///   see no event sent at or after its revocation instant, no
///   duplicates, and only events its filter matches.
#[test]
fn scenario_matrix_exactly_once_under_faults() {
    use psguard_analysis::{ChurnKind, ScenarioConfig, ScenarioKind, ScenarioTrace};

    const RATE: f64 = 40.0;
    const INTERARRIVAL_US: u64 = 25_000; // 1e6 / RATE

    for (i, kind) in ScenarioKind::ALL.into_iter().enumerate() {
        let cfg = ScenarioConfig {
            kind,
            topics: 4,
            zipf_s: 1.1,
            subscribers: 8,
            events: 24,
            value_range: 64,
            sub_width: 48,
            seed: 0xC0DE + i as u64,
        };
        let trace = ScenarioTrace::generate(&cfg);
        let label = kind.name();

        // One engine event per publish op; duration sized so the fixed-
        // interval publisher emits the stream exactly once (seq == index).
        let events: Vec<Event> = trace
            .publishes
            .iter()
            .map(|p| {
                Event::builder(format!("s{}", p.topic))
                    .attr("x", p.value)
                    .build()
            })
            .collect();
        let duration_s = events.len() as f64 / RATE;

        // Subscriptions: initial plus every Join (installed up front —
        // the engine has no mid-run subscribe, so a joiner is simply
        // subscribed for the whole run and the oracle expects every
        // matching event for it). A Leave maps to a revocation only if
        // the subscription never rejoins afterward (a leave/rejoin pair
        // collapses to "subscribed throughout"); trace revocations map
        // directly.
        let mut subs: Vec<(u32, u32, i64, i64)> = trace
            .initial
            .iter()
            .map(|s| (s.client, s.topic, s.lo, s.hi))
            .collect();
        let mut revoked_at: Vec<(u32, u64)> = Vec::new();
        for c in &trace.churn {
            match c.kind {
                ChurnKind::Join => subs.push((c.sub.client, c.sub.topic, c.sub.lo, c.sub.hi)),
                ChurnKind::Leave => {
                    let rejoins = trace.churn.iter().any(|j| {
                        j.kind == ChurnKind::Join && j.sub == c.sub && j.at_event >= c.at_event
                    });
                    if !rejoins {
                        revoked_at.push((c.sub.client, c.at_event as u64 * INTERARRIVAL_US));
                    }
                }
            }
        }
        for r in &trace.revocations {
            revoked_at.push((r.client, r.at_event as u64 * INTERARRIVAL_US));
        }
        // Keep only each client's earliest revocation.
        revoked_at.sort_by_key(|&(c, t)| (c, t));
        revoked_at.dedup_by_key(|&mut (c, _)| c);
        let revoke_of = |client: u32| -> Option<u64> {
            revoked_at
                .iter()
                .find(|&&(c, _)| c == client)
                .map(|&(_, t)| t)
        };

        let n_clients = trace.max_client().map(|c| c + 1).unwrap_or(0);
        let mut eng = engine(6, n_clients);
        let mut installed: HashSet<(u32, u32, i64, i64)> = HashSet::new();
        for &(client, topic, lo, hi) in &subs {
            if installed.insert((client, topic, lo, hi)) {
                eng.subscribe(
                    client,
                    Filter::for_topic(format!("s{topic}")).with(psguard_model::Constraint::new(
                        "x",
                        psguard_model::Op::InRange(
                            psguard_model::IntRange::new(lo, hi).expect("trace ranges ordered"),
                        ),
                    )),
                );
            }
        }

        let plan = FaultPlan::new(0xFA + i as u64).with_default_link_faults(LinkFaults {
            drop_p: 0.15,
            dup_p: 0.1,
            jitter_us: 10_000,
        });
        let mut fc = FaultConfig::with_recovery(plan);
        fc.recovery = Some(RecoveryConfig::no_heartbeats());
        fc.revocations = revoked_at
            .iter()
            .map(|&(client, at_us)| Revocation { client, at_us })
            .collect();
        fc.record_deliveries = true;
        let r = eng.run_faulty(&events, RATE, duration_s, &CostModel::plain(), &mut fc);
        assert_eq!(
            r.published,
            trace.publishes.len() as u64,
            "{label}: one engine publication per trace op"
        );

        // Oracle: which (client, seq) pairs must arrive, straight from
        // the trace.
        let matches = |client: u32, seq: usize| -> bool {
            let p = &trace.publishes[seq];
            installed
                .iter()
                .any(|&(c, t, lo, hi)| c == client && t == p.topic && (lo..=hi).contains(&p.value))
        };
        let mut seen = HashSet::new();
        for d in &r.deliveries {
            assert!(
                seen.insert((d.client, d.event_seq)),
                "{label}: duplicate delivery of seq {} to client {}",
                d.event_seq,
                d.client
            );
            assert!(
                matches(d.client, d.event_seq as usize),
                "{label}: client {} got non-matching seq {}",
                d.client,
                d.event_seq
            );
            if let Some(t) = revoke_of(d.client) {
                assert!(
                    d.sent_at < t,
                    "{label}: revoked client {} got seq {} sent at {} >= {t}",
                    d.client,
                    d.event_seq,
                    d.sent_at
                );
            }
        }
        let mut expected = 0u64;
        for client in 0..n_clients {
            if revoke_of(client).is_some() {
                continue; // checked above: no post-revocation, no dups
            }
            for seq in 0..trace.publishes.len() {
                if matches(client, seq) {
                    expected += 1;
                    assert!(
                        seen.contains(&(client, seq as u64)),
                        "{label}: client {client} missed seq {seq}"
                    );
                }
            }
        }
        assert!(
            expected > 0,
            "{label}: degenerate oracle (no expected deliveries)"
        );
    }
}
