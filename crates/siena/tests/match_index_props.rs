//! Property tests pinning the `MatchIndex` fast path to the linear-scan
//! reference: for any table built from random subscriptions (with churn),
//! `matching_peers` must return exactly what the original O(n) scan
//! returns, in the same order, and `insert`'s covering verdict must agree
//! with the brute-force covering test.

use proptest::prelude::*;
use psguard_model::{AttrValue, Constraint, Event, Filter, IntRange, Op};
use psguard_siena::{LegacyMatchIndex, MatchIndex, Peer, SubscriptionTable};

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (-20i64..60).prop_map(Op::Ge),
        (-20i64..60).prop_map(Op::Le),
        (-20i64..60).prop_map(Op::Gt),
        (-20i64..60).prop_map(Op::Lt),
        (-20i64..60).prop_map(|v| Op::Eq(AttrValue::Int(v))),
        (-20i64..40, 0i64..25)
            .prop_map(|(lo, w)| Op::InRange(IntRange::new(lo, lo + w).expect("lo <= hi"))),
        "[ab]{0,3}".prop_map(Op::StrPrefix),
        "[ab]{0,3}".prop_map(Op::StrSuffix),
        "[ab]{0,3}".prop_map(|s| Op::Eq(AttrValue::Str(s))),
    ]
    .boxed()
}

/// Topics t0..t3 plus the wildcard; attributes drawn from {a, b} so
/// constraints and events collide often enough to exercise every path.
fn filter_strategy() -> BoxedStrategy<Filter> {
    (0u8..5, prop::collection::vec(("[ab]", op_strategy()), 0..4))
        .prop_map(|(topic, constraints)| {
            let mut f = if topic < 4 {
                Filter::for_topic(format!("t{topic}"))
            } else {
                Filter::any()
            };
            for (name, op) in constraints {
                f = f.with(Constraint::new(name, op));
            }
            f
        })
        .boxed()
}

fn value_strategy() -> BoxedStrategy<AttrValue> {
    prop_oneof![
        (-25i64..65).prop_map(AttrValue::Int),
        "[ab]{0,3}".prop_map(AttrValue::Str),
    ]
    .boxed()
}

fn event_strategy() -> BoxedStrategy<Event> {
    (
        0u8..5,
        prop::collection::vec(("[ab]", value_strategy()), 0..3),
    )
        .prop_map(|(topic, attrs)| {
            let mut b = Event::builder(format!("t{topic}"));
            for (name, value) in attrs {
                b = b.attr(name, value);
            }
            b.build()
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn index_agrees_with_linear_scan(
        subs in prop::collection::vec((0u32..6, filter_strategy()), 0..40),
        events in prop::collection::vec(event_strategy(), 1..10),
    ) {
        let mut table: SubscriptionTable<Filter> = SubscriptionTable::new();
        for (peer, filter) in subs {
            table.insert(Peer::Child(peer), filter);
        }
        for event in &events {
            let fast = table.matching_peers(event);
            let reference = table.matching_peers_linear(event);
            prop_assert_eq!(fast, reference);
        }
    }

    #[test]
    fn index_agrees_after_churn(
        subs in prop::collection::vec((0u32..5, filter_strategy()), 1..30),
        removal_mask in any::<u64>(),
        events in prop::collection::vec(event_strategy(), 1..8),
    ) {
        let mut table: SubscriptionTable<Filter> = SubscriptionTable::new();
        let mut inserted: Vec<(Peer, Filter)> = Vec::new();
        for (peer, filter) in subs {
            let peer = Peer::Child(peer);
            table.insert(peer, filter.clone());
            inserted.push((peer, filter));
        }
        for (i, (peer, filter)) in inserted.iter().enumerate() {
            if removal_mask >> (i % 64) & 1 == 1 {
                table.remove(*peer, filter);
            }
        }
        // A full peer disconnect on top of the selective removals.
        table.remove_peer(Peer::Child(0));
        for event in &events {
            let fast = table.matching_peers(event);
            let reference = table.matching_peers_linear(event);
            prop_assert_eq!(fast, reference);
        }
        // Reinsertion after churn still agrees (slab slots are reused).
        for (peer, filter) in inserted {
            table.insert(peer, filter);
        }
        for event in &events {
            let fast = table.matching_peers(event);
            let reference = table.matching_peers_linear(event);
            prop_assert_eq!(fast, reference);
        }
    }

    /// The arena layout against two oracles at once: the frozen
    /// pre-rework `LegacyMatchIndex` (identical operation sequence, so
    /// results must be bit-identical, order included) and a brute-force
    /// linear scan over the live mirror. Churn + reinsertion exercises
    /// the entry free list, chunk recycling and boundary-range reuse;
    /// starting the generation counter near `u32::MAX` drives the stamp
    /// wraparound sweep mid-sequence.
    #[test]
    fn arena_index_agrees_with_legacy_and_linear_oracle(
        subs in prop::collection::vec((0u32..6, filter_strategy()), 1..40),
        removal_mask in any::<u64>(),
        near_wraparound in any::<bool>(),
        events in prop::collection::vec(event_strategy(), 1..8),
    ) {
        let mut arena: MatchIndex<Filter> = MatchIndex::new();
        if near_wraparound {
            // Few enough queries remain that the run crosses the wrap.
            arena.set_generation_for_tests(u32::MAX - 2);
        }
        let mut legacy: LegacyMatchIndex<Filter> = LegacyMatchIndex::new();
        // Mirror: (seq, peer, filter, live) in insertion order.
        let mut mirror: Vec<(Peer, Filter, bool)> = Vec::new();
        let mut ids = Vec::new();
        for (peer, filter) in &subs {
            let peer = Peer::Child(*peer);
            let a = arena.insert(peer, filter.clone());
            let l = legacy.insert(peer, filter.clone());
            prop_assert_eq!(a, l, "entry ids must track (free lists in sync)");
            ids.push(a);
            mirror.push((peer, filter.clone(), true));
        }
        for (i, &id) in ids.iter().enumerate() {
            if removal_mask >> (i % 64) & 1 == 1 {
                arena.remove(id);
                legacy.remove(id);
                mirror[i].2 = false;
            }
        }
        // Reinsert the removed half: both layouts must recycle their
        // freed slots the same way.
        for (i, (peer, filter, live)) in mirror.clone().iter().enumerate() {
            if !live {
                let a = arena.insert(*peer, filter.clone());
                let l = legacy.insert(*peer, filter.clone());
                prop_assert_eq!(a, l, "reused ids must track");
                mirror[i].2 = true; // same filter is live again (new seq)
            }
        }
        for event in &events {
            let fast = arena.query(event);
            let frozen = legacy.query(event);
            prop_assert_eq!(&fast, &frozen, "arena vs frozen layout");
            // The linear oracle loses the exact seq order for reinserted
            // entries (and `query` dedups peers), so compare as sorted
            // distinct-peer sets.
            let mut oracle: Vec<Peer> = mirror
                .iter()
                .filter(|(_, f, live)| *live && f.matches(event))
                .map(|(p, _, _)| *p)
                .collect();
            let mut fast_sorted = fast;
            fast_sorted.sort_unstable();
            oracle.sort_unstable();
            oracle.dedup();
            prop_assert_eq!(fast_sorted, oracle, "arena vs linear oracle");
        }
    }

    #[test]
    fn insert_covering_verdict_matches_brute_force(
        subs in prop::collection::vec((0u32..4, filter_strategy()), 0..25),
    ) {
        let mut table: SubscriptionTable<Filter> = SubscriptionTable::new();
        let mut mirror: Vec<(Peer, Filter)> = Vec::new();
        for (peer, filter) in subs {
            let peer = Peer::Child(peer);
            let duplicate = mirror.iter().any(|(p, f)| *p == peer && *f == filter);
            let covered = mirror.iter().any(|(_, f)| f.covers(&filter));
            let forwarded = table.insert(peer, filter.clone());
            if duplicate {
                prop_assert!(!forwarded, "duplicate must never forward");
            } else {
                prop_assert_eq!(forwarded, !covered);
                mirror.push((peer, filter));
            }
            prop_assert_eq!(table.len(), mirror.len());
        }
    }
}
