//! Crash-recovery properties of the durable event log, driven through
//! the public API: reopen after clean and torn shutdowns, retention
//! classification, compaction racing an active replay, and seeded
//! disk-fault plans (torn appends, failed fsyncs, short reads).

use std::path::PathBuf;

use proptest::prelude::*;
use psguard_net::{DiskFaults, FaultPlan};
use psguard_siena::{Cursor, EventLog, LogConfig, LogError, ResumeOutcome};

/// A unique scratch directory under the system temp dir. Callers clean
/// up with [`cleanup`]; a leaked dir from a failed test is harmless.
fn tmp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "psguard-logrec-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Drains every retained record as `(seq, payload)` pairs, retrying
/// transient short reads.
fn drain(log: &mut EventLog) -> Vec<(u64, Vec<u8>)> {
    let mut cur = log.replay_cursor(0);
    let mut out = Vec::new();
    let mut collected = Vec::new();
    let mut retries = 0;
    loop {
        out.clear();
        match log.replay_next(&mut cur, 16, &mut out) {
            Ok(more) => {
                collected.extend(out.drain(..).map(|(c, p)| (c.seq, p)));
                if !more {
                    return collected;
                }
            }
            Err(LogError::ShortRead) => {
                retries += 1;
                assert!(retries < 10_000, "short reads never stopped");
            }
            Err(e) => panic!("replay failed: {e}"),
        }
    }
}

#[test]
fn empty_log_reopen_is_stable() {
    let dir = tmp_dir("empty");
    {
        let (log, report) = EventLog::open(LogConfig::new(&dir)).expect("open");
        assert_eq!(report.records, 0);
        assert_eq!(report.high_water, Cursor { epoch: 1, seq: 0 });
        assert_eq!(log.high_water().seq, 0);
    }
    let (log, report) = EventLog::open(LogConfig::new(&dir)).expect("reopen");
    assert_eq!(report.records, 0);
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(log.epoch(), 1);
    assert_eq!(log.high_water().seq, 0);
    cleanup(&dir);
}

#[test]
fn torn_final_record_is_truncated_on_reopen() {
    let dir = tmp_dir("torn-tail");
    {
        let (mut log, _) = EventLog::open(LogConfig::new(&dir)).expect("open");
        for i in 0..5u8 {
            log.append(&[i; 16]).expect("append");
        }
        log.sync().expect("sync");
    }
    // Simulate a crash mid-append: garbage bytes (a partial record)
    // land after the last valid record of the newest segment.
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .collect();
    segs.sort();
    let last = segs.last().expect("segment file").clone();
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&last)
            .expect("open segment");
        f.write_all(&[0xAB; 9]).expect("tear");
    }

    let (mut log, report) = EventLog::open(LogConfig::new(&dir)).expect("reopen");
    assert_eq!(report.records, 5, "valid prefix survives");
    assert_eq!(report.truncated_bytes, 9, "torn tail discarded");
    assert_eq!(report.high_water.seq, 5);

    let got = drain(&mut log);
    assert_eq!(got.len(), 5);
    for (i, (seq, payload)) in got.iter().enumerate() {
        assert_eq!(*seq, i as u64 + 1);
        assert_eq!(payload, &vec![i as u8; 16]);
    }

    // Appends resume exactly after the recovered high-water mark.
    let c = log.append(b"after-repair").expect("append");
    assert_eq!(c.seq, 6);
    cleanup(&dir);
}

#[test]
fn cursor_below_retention_floor_resolves_to_gap() {
    let dir = tmp_dir("retention");
    let cfg = LogConfig {
        segment_max_bytes: 128,
        max_segments: 2,
        ..LogConfig::new(&dir)
    };
    let (mut log, _) = EventLog::open(cfg).expect("open");
    for i in 0..60u64 {
        log.append(&i.to_le_bytes()).expect("append");
    }
    let floor = log.floor_seq();
    assert!(floor > 1, "retention must have evicted early segments");

    // A cursor from before the floor: classified as a truncated gap,
    // replay restarts at the floor.
    let (outcome, mut cur) = log.catch_up_from(Cursor { epoch: 1, seq: 1 });
    assert_eq!(outcome, ResumeOutcome::GapTruncatedByRetention);
    assert_eq!(cur.next_seq(), floor);
    let mut out = Vec::new();
    let mut seqs = Vec::new();
    loop {
        out.clear();
        let more = log.replay_next(&mut cur, 16, &mut out).expect("replay");
        seqs.extend(out.iter().map(|(c, _)| c.seq));
        if !more {
            break;
        }
    }
    assert_eq!(seqs.first().copied(), Some(floor));
    assert_eq!(seqs.last().copied(), Some(60));
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "contiguous");

    // A cursor at the high-water mark continues with nothing to do.
    let (outcome, mut cur) = log.catch_up_from(log.high_water());
    assert_eq!(outcome, ResumeOutcome::ContinuedAtCursor);
    out.clear();
    assert!(!log.replay_next(&mut cur, 16, &mut out).expect("replay"));
    assert!(out.is_empty());

    // A cursor from another epoch cannot resume at all.
    let (outcome, _) = log.catch_up_from(Cursor { epoch: 9, seq: 3 });
    assert_eq!(outcome, ResumeOutcome::FreshStart);
    cleanup(&dir);
}

#[test]
fn compaction_racing_replay_reseeks_and_completes() {
    let dir = tmp_dir("race");
    let cfg = LogConfig {
        segment_max_bytes: 128,
        max_segments: 2,
        ..LogConfig::new(&dir)
    };
    let (mut log, _) = EventLog::open(cfg).expect("open");
    for i in 0..40u64 {
        log.append(&i.to_le_bytes()).expect("append");
    }

    let (outcome, mut cur) = log.catch_up_from(Cursor { epoch: 1, seq: 0 });
    // Seq 1 is already gone by the time the replay starts.
    assert_eq!(outcome, ResumeOutcomeExpect::initial(log.floor_seq()));
    let mut out = Vec::new();
    let mut seqs = Vec::new();
    log.replay_next(&mut cur, 4, &mut out).expect("first pump");
    seqs.extend(out.drain(..).map(|(c, _)| c.seq));

    // Compaction races the replay: enough appends to evict the segment
    // the cursor was parked in.
    for i in 40..160u64 {
        log.append(&i.to_le_bytes()).expect("append");
    }
    assert!(
        log.floor_seq() > cur.next_seq(),
        "eviction must overtake the replay position"
    );

    loop {
        out.clear();
        let more = log.replay_next(&mut cur, 8, &mut out).expect("pump");
        seqs.extend(out.drain(..).map(|(c, _)| c.seq));
        if !more {
            break;
        }
    }
    assert!(
        cur.truncated(),
        "cursor must report records lost to the race"
    );
    assert!(seqs.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
    let dups = seqs.len() != {
        let mut s = seqs.clone();
        s.dedup();
        s.len()
    };
    assert!(!dups, "no record may be replayed twice");
    assert_eq!(seqs.last().copied(), Some(log.high_water().seq));
    cleanup(&dir);
}

/// Shim so the assertion above reads as intent: the initial outcome is
/// `GapTruncatedByRetention` exactly when the floor already moved past
/// seq 1, else `ContinuedAtCursor`.
struct ResumeOutcomeExpect;
impl ResumeOutcomeExpect {
    fn initial(floor: u64) -> ResumeOutcome {
        if floor > 1 {
            ResumeOutcome::GapTruncatedByRetention
        } else {
            ResumeOutcome::ContinuedAtCursor
        }
    }
}

/// Appends under a seeded disk-fault plan until the log poisons (or the
/// append budget runs out), then reopens cleanly and checks that the
/// recovered log is exactly the durable prefix.
fn crash_recovery_roundtrip(seed: u64, disk: DiskFaults, appends: usize, fsync_on: bool) {
    let dir = tmp_dir(&format!("crash-{seed}"));
    let cfg = LogConfig {
        fsync_on_append: fsync_on,
        ..LogConfig::new(&dir)
    };
    let plan = FaultPlan::new(seed).with_disk_faults(disk);
    let (mut log, _) = EventLog::open_with_faults(cfg, plan).expect("open");

    let mut ok = Vec::new();
    let mut failed = false;
    for i in 0..appends as u64 {
        let payload = [seed.to_le_bytes(), i.to_le_bytes()].concat();
        match log.append(&payload) {
            Ok(c) => {
                assert_eq!(c.seq, ok.len() as u64 + 1);
                ok.push(payload);
            }
            Err(LogError::TornWrite | LogError::FsyncFailed) => {
                failed = true;
                break;
            }
            Err(e) => panic!("unexpected append error: {e}"),
        }
    }
    if failed {
        // The first write failure poisons the log until reopen.
        assert!(log.is_poisoned());
        assert!(matches!(log.append(b"x"), Err(LogError::Poisoned)));
    }
    drop(log);

    let (mut log, report) = EventLog::open(LogConfig::new(&dir)).expect("reopen");
    // A torn append never survives; a failed fsync may (the bytes hit
    // the file before the injected sync error). Either way the durable
    // records are a contiguous prefix extension of the acknowledged set.
    assert!(
        report.records >= ok.len() as u64,
        "acknowledged records lost: recovered {} < acked {}",
        report.records,
        ok.len()
    );
    assert!(
        report.records <= ok.len() as u64 + 1,
        "more than the one in-flight record appeared"
    );
    assert_eq!(report.high_water.seq, report.records);

    let got = drain(&mut log);
    assert_eq!(got.len() as u64, report.records);
    for (i, payload) in ok.iter().enumerate() {
        assert_eq!(got[i].0, i as u64 + 1);
        assert_eq!(&got[i].1, payload, "payload mismatch at seq {}", i + 1);
    }

    // The recovered log accepts appends at the recovered high-water.
    let c = log.append(b"post-recovery").expect("append after reopen");
    assert_eq!(c.seq, report.high_water.seq + 1);
    cleanup(&dir);
}

#[test]
fn crash_mid_append_recovers_durable_prefix_across_twenty_plus_seeds() {
    for seed in 0..24u64 {
        let disk = DiskFaults {
            torn_write_p: 0.08,
            short_read_p: 0.0,
            fsync_fail_p: 0.05,
        };
        crash_recovery_roundtrip(seed, disk, 200, true);
    }
}

#[test]
fn short_reads_during_replay_are_transient() {
    let dir = tmp_dir("short-read");
    let plan = FaultPlan::new(7).with_disk_faults(DiskFaults {
        torn_write_p: 0.0,
        short_read_p: 0.4,
        fsync_fail_p: 0.0,
    });
    let (mut log, _) = EventLog::open_with_faults(LogConfig::new(&dir), plan).expect("open");
    for i in 0..50u64 {
        log.append(&i.to_le_bytes()).expect("append");
    }
    let got = drain(&mut log);
    assert_eq!(got.len(), 50, "every record arrives despite short reads");
    assert!(
        log.stats().replayed_records >= 50,
        "replay counter must track handed-out records"
    );
    cleanup(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded disk-fault plan — torn appends, failed fsyncs, any
    /// append count, fsync on or off — recovers to exactly the durable
    /// prefix with no acknowledged record lost.
    #[test]
    fn recovery_is_prefix_consistent_under_any_disk_plan(
        seed in 0u64..10_000,
        torn_p in 0.0f64..0.3,
        fsync_p in 0.0f64..0.3,
        appends in 10usize..120,
        fsync_on in any::<bool>(),
    ) {
        let disk = DiskFaults {
            torn_write_p: torn_p,
            short_read_p: 0.0,
            fsync_fail_p: fsync_p,
        };
        crash_recovery_roundtrip(seed, disk, appends, fsync_on);
    }
}
