//! The tcp_transport suite run against the retained thread-per-
//! connection baseline: both transports speak the same protocol and
//! must satisfy identical protocol-visible assertions (routing, the
//! parent-chained ack handshake, reconnection with subscription replay,
//! heartbeat eviction, bounded-queue backpressure, encode-once
//! fan-out). `tcp_transport.rs` runs the same assertions against the
//! default reactor transport.

use std::time::Duration;

use psguard_model::{Constraint, Event, Filter, Op};
use psguard_siena::{
    spawn_threaded_broker, spawn_threaded_broker_with, OverflowPolicy, TcpConfig, TcpError,
    ThreadedClient,
};

const ACK_WAIT: Duration = Duration::from_secs(5);

#[test]
fn single_broker_pubsub_roundtrip() {
    let broker = spawn_threaded_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    let sub: ThreadedClient<Filter> = ThreadedClient::connect(broker.addr()).expect("connect");
    let publisher: ThreadedClient<Filter> =
        ThreadedClient::connect(broker.addr()).expect("connect");

    sub.subscribe_acked(
        Filter::for_topic("t").with(Constraint::new("x", Op::Ge(10))),
        ACK_WAIT,
    )
    .expect("acked");

    let hit = Event::builder("t")
        .attr("x", 42i64)
        .payload(vec![1])
        .build();
    let miss = Event::builder("t").attr("x", 1i64).build();
    publisher.publish(miss.clone()).expect("publish");
    publisher.publish(hit.clone()).expect("publish");

    let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery");
    assert_eq!(got, hit);
    assert!(sub.recv_timeout(Duration::from_millis(200)).is_none());
    broker.shutdown();
}

#[test]
fn two_level_tree_routes_through_root() {
    let root = spawn_threaded_broker::<Filter>("127.0.0.1:0", None).expect("root");
    let left = spawn_threaded_broker::<Filter>("127.0.0.1:0", Some(root.addr())).expect("left");
    let right = spawn_threaded_broker::<Filter>("127.0.0.1:0", Some(root.addr())).expect("right");

    let sub: ThreadedClient<Filter> = ThreadedClient::connect(left.addr()).expect("connect");
    let publisher: ThreadedClient<Filter> = ThreadedClient::connect(right.addr()).expect("connect");

    sub.subscribe_acked(Filter::for_topic("news"), ACK_WAIT)
        .expect("acked across two levels");

    let e = Event::builder("news").payload(b"flash".to_vec()).build();
    publisher.publish(e.clone()).expect("publish");
    let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery");
    assert_eq!(got, e);

    drop(sub);
    drop(publisher);
    left.shutdown();
    right.shutdown();
    root.shutdown();
}

#[test]
fn unsubscribe_stops_replay_and_delivery() {
    let broker = spawn_threaded_broker::<Filter>("127.0.0.1:0", None).expect("spawn");
    let sub: ThreadedClient<Filter> = ThreadedClient::connect(broker.addr()).expect("connect");
    let publisher: ThreadedClient<Filter> =
        ThreadedClient::connect(broker.addr()).expect("connect");

    let f = Filter::for_topic("t");
    sub.subscribe_acked(f.clone(), ACK_WAIT).expect("acked");
    publisher
        .publish(Event::builder("t").payload(vec![1]).build())
        .expect("publish");
    assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());

    sub.unsubscribe(&f).expect("unsubscribe");
    sub.subscribe_acked(Filter::for_topic("other"), ACK_WAIT)
        .expect("acked");
    publisher
        .publish(Event::builder("t").payload(vec![2]).build())
        .expect("publish");
    assert!(
        sub.recv_timeout(Duration::from_millis(300)).is_none(),
        "unsubscribed topic must stop arriving"
    );
    broker.shutdown();
}

#[test]
fn client_reconnects_and_replays_subscriptions() {
    let cfg = TcpConfig {
        heartbeat_interval: Duration::from_millis(50),
        read_timeout: Duration::from_millis(50),
        reconnect_initial: Duration::from_millis(25),
        reconnect_max: Duration::from_millis(100),
        max_reconnect_attempts: 200,
        ..TcpConfig::default()
    };
    let broker = spawn_threaded_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");
    let addr = broker.addr();

    let sub: ThreadedClient<Filter> = ThreadedClient::connect_with(addr, cfg).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");

    broker.shutdown();
    let broker2 = spawn_threaded_broker_with::<Filter>(&addr.to_string(), None, cfg)
        .expect("respawn on same port");

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match sub.subscribe_acked(Filter::for_topic("t2"), Duration::from_millis(500)) {
            Ok(()) => break,
            Err(_) if std::time::Instant::now() < deadline => continue,
            Err(e) => panic!("client never reconnected: {e}"),
        }
    }
    assert!(sub.stats().reconnects >= 1, "{:?}", sub.stats());

    let publisher: ThreadedClient<Filter> =
        ThreadedClient::connect_with(addr, cfg).expect("connect");
    let e = Event::builder("t").payload(vec![7]).build();
    publisher.publish(e.clone()).expect("publish");
    assert_eq!(
        sub.recv_timeout(Duration::from_secs(5)),
        Some(e),
        "replayed subscription must deliver on the new broker"
    );
    broker2.shutdown();
}

#[test]
fn silent_peer_is_evicted_after_missed_heartbeats() {
    let cfg = TcpConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_miss_limit: 3,
        read_timeout: Duration::from_millis(50),
        ..TcpConfig::default()
    };
    let broker = spawn_threaded_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");

    use psguard_siena::wire::{write_frame, Message, Wire};
    let mut silent = std::net::TcpStream::connect(broker.addr()).expect("connect");
    let hello: Message<Filter, Event> = Message::Hello { kind: 1 };
    write_frame(&mut silent, &hello.to_bytes()).expect("hello");
    let sub_msg: Message<Filter, Event> = Message::Subscribe(Filter::for_topic("t"));
    write_frame(&mut silent, &sub_msg.to_bytes()).expect("subscribe");

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while broker.stats().evicted_peers == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no eviction after 10 s: {:?}",
            broker.stats()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    let sub: ThreadedClient<Filter> =
        ThreadedClient::connect_with(broker.addr(), cfg).expect("connect");
    let publisher: ThreadedClient<Filter> =
        ThreadedClient::connect_with(broker.addr(), cfg).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    std::thread::sleep(Duration::from_millis(300));
    let e = Event::builder("t").build();
    publisher.publish(e.clone()).expect("publish");
    assert_eq!(sub.recv_timeout(Duration::from_secs(5)), Some(e));
    broker.shutdown();
}

#[test]
fn drop_newest_backpressure_is_reported() {
    let cfg = TcpConfig {
        queue_capacity: 2,
        overflow: OverflowPolicy::DropNewest,
        heartbeat_interval: Duration::ZERO,
        write_timeout: Duration::from_millis(200),
        ..TcpConfig::default()
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let _keep = std::thread::spawn(move || {
        let conn = listener.accept();
        std::thread::sleep(Duration::from_secs(10));
        drop(conn);
    });

    let client: ThreadedClient<Filter> = ThreadedClient::connect_with(addr, cfg).expect("connect");
    let big = Event::builder("t").payload(vec![0u8; 512 * 1024]).build();
    let mut saw_backpressure = false;
    for _ in 0..64 {
        match client.publish(big.clone()) {
            Ok(()) => continue,
            Err(TcpError::Backpressure) => {
                saw_backpressure = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(saw_backpressure, "full bounded queue must report drops");
    assert!(client.stats().dropped_frames >= 1);
}

#[test]
fn fanout_serializes_event_exactly_once() {
    let cfg = TcpConfig {
        heartbeat_interval: Duration::ZERO,
        ..TcpConfig::default()
    };
    let broker = spawn_threaded_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn");

    let subs: Vec<ThreadedClient<Filter>> = (0..3)
        .map(|_| ThreadedClient::connect_with(broker.addr(), cfg).expect("connect"))
        .collect();
    for s in &subs {
        s.subscribe_acked(Filter::for_topic("fan"), ACK_WAIT)
            .expect("acked");
    }
    let publisher: ThreadedClient<Filter> =
        ThreadedClient::connect_with(broker.addr(), cfg).expect("connect");
    publisher
        .subscribe_acked(Filter::for_topic("sync-only"), ACK_WAIT)
        .expect("acked");

    let broker_before = broker.pool_stats().frames_encoded;
    let pub_before = publisher.pool_stats().frames_encoded;

    let e = Event::builder("fan").payload(vec![42; 64]).build();
    publisher.publish(e.clone()).expect("publish");
    for s in &subs {
        let got = s.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(got, e);
    }

    assert_eq!(
        broker.pool_stats().frames_encoded - broker_before,
        1,
        "a publish fanned out to 3 peers must encode exactly once"
    );
    assert_eq!(publisher.pool_stats().frames_encoded - pub_before, 1);

    drop(publisher);
    drop(subs);
    broker.shutdown();
}
