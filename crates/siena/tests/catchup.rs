//! End-to-end cursor-based catch-up over the TCP transport: a durable
//! broker stamps every delivery with its log cursor, an offline
//! subscriber replays the gap on reconnect, and the combination of
//! replay plus the client-side dedup window is exactly-once — across
//! subscriber downtime, broker crash-and-restart, and live publishes
//! racing an in-flight replay.

use std::path::PathBuf;
use std::time::Duration;

use psguard_model::{Event, Filter};
use psguard_siena::{
    spawn_broker, spawn_broker_durable, Cursor, LogConfig, ResumeOutcome, TcpClient, TcpConfig,
};

const ACK_WAIT: Duration = Duration::from_secs(5);
const RECV_WAIT: Duration = Duration::from_secs(5);
const QUIET: Duration = Duration::from_millis(300);

fn tmp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "psguard-catchup-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

/// An event whose payload carries its publish index.
fn numbered(i: u64) -> Event {
    Event::builder("t")
        .payload(i.to_le_bytes().to_vec())
        .build()
}

fn index_of(e: &Event) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(e.payload());
    u64::from_le_bytes(b)
}

/// Receives until `QUIET` passes with nothing arriving, returning the
/// payload indices in arrival order.
fn drain_indices(sub: &TcpClient<Filter>) -> Vec<u64> {
    let mut got = Vec::new();
    while let Some(e) = sub.recv_timeout(QUIET) {
        got.push(index_of(&e));
    }
    got
}

#[test]
fn durable_broker_stamps_deliveries_and_client_tracks_cursor() {
    let dir = tmp_dir("stamps");
    let (broker, report) = spawn_broker_durable::<Filter>(
        "127.0.0.1:0",
        None,
        TcpConfig::default(),
        LogConfig::new(&dir),
    )
    .expect("spawn durable");
    assert_eq!(report.records, 0, "fresh log dir starts empty");

    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    assert_eq!(sub.cursor(), None, "no cursor before the first delivery");

    for i in 1..=3u64 {
        publisher.publish(numbered(i)).expect("publish");
    }
    for i in 1..=3u64 {
        let e = sub.recv_timeout(RECV_WAIT).expect("delivery");
        assert_eq!(index_of(&e), i);
    }
    // The broker stamped each delivery; the cursor followed contiguously.
    assert_eq!(sub.cursor(), Some(Cursor { epoch: 1, seq: 3 }));

    broker.shutdown();
    cleanup(&dir);
}

#[test]
fn offline_subscriber_catches_up_exactly_once() {
    let dir = tmp_dir("offline");
    let (broker, _) = spawn_broker_durable::<Filter>(
        "127.0.0.1:0",
        None,
        TcpConfig::default(),
        LogConfig::new(&dir),
    )
    .expect("spawn durable");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");

    // Session one: receive three events, remember where we got to.
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    for i in 1..=3u64 {
        publisher.publish(numbered(i)).expect("publish");
    }
    for _ in 0..3 {
        sub.recv_timeout(RECV_WAIT).expect("delivery");
    }
    let cursor = sub.cursor().expect("cursor after deliveries");
    assert_eq!(cursor.seq, 3);
    drop(sub);

    // Four more events while the subscriber is offline.
    for i in 4..=7u64 {
        publisher.publish(numbered(i)).expect("publish");
    }

    // Session two resumes at the saved cursor. Subscriptions go first —
    // the broker's replay filters against them — then the catch-up.
    let sub2: TcpClient<Filter> =
        TcpClient::connect_resuming(broker.addr(), TcpConfig::default(), Some(cursor))
            .expect("reconnect");
    sub2.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    sub2.catch_up().expect("catch up");
    assert_eq!(
        sub2.recv_resume(RECV_WAIT),
        Some(ResumeOutcome::ContinuedAtCursor),
        "the whole gap is retained"
    );
    let got = drain_indices(&sub2);
    assert_eq!(got, vec![4, 5, 6, 7], "exactly the gap, in order, once");

    // Live delivery continues after the replay and the cursor tracks it.
    publisher.publish(numbered(8)).expect("publish");
    let e = sub2.recv_timeout(RECV_WAIT).expect("live after replay");
    assert_eq!(index_of(&e), 8);
    assert_eq!(sub2.cursor(), Some(Cursor { epoch: 1, seq: 8 }));
    assert!(
        broker.stats().replayed_frames >= 4,
        "broker must count the replayed deliveries"
    );

    broker.shutdown();
    cleanup(&dir);
}

#[test]
fn catch_up_without_history_reports_fresh_start() {
    let dir = tmp_dir("fresh");
    let (broker, _) = spawn_broker_durable::<Filter>(
        "127.0.0.1:0",
        None,
        TcpConfig::default(),
        LogConfig::new(&dir),
    )
    .expect("spawn durable");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");

    // History exists before this subscriber's first appearance…
    for i in 1..=2u64 {
        publisher.publish(numbered(i)).expect("publish");
    }
    std::thread::sleep(Duration::from_millis(100));

    // …but a cursor-less subscriber starts fresh: no replay of events
    // from before its time.
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    sub.catch_up().expect("catch up");
    assert_eq!(sub.recv_resume(RECV_WAIT), Some(ResumeOutcome::FreshStart));
    assert!(
        sub.recv_timeout(QUIET).is_none(),
        "fresh start must not replay pre-subscription history"
    );

    publisher.publish(numbered(3)).expect("publish");
    let e = sub.recv_timeout(RECV_WAIT).expect("live delivery");
    assert_eq!(index_of(&e), 3);

    // A non-durable broker answers any catch-up with FreshStart too.
    let plain = spawn_broker::<Filter>("127.0.0.1:0", None).expect("spawn plain");
    let sub2: TcpClient<Filter> = TcpClient::connect(plain.addr()).expect("connect");
    sub2.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    sub2.catch_up().expect("catch up");
    assert_eq!(sub2.recv_resume(RECV_WAIT), Some(ResumeOutcome::FreshStart));
    plain.shutdown();

    broker.shutdown();
    cleanup(&dir);
}

#[test]
fn cursor_behind_retention_floor_reports_gap_and_replays_the_rest() {
    let dir = tmp_dir("retention");
    let log_cfg = LogConfig {
        segment_max_bytes: 256,
        max_segments: 2,
        ..LogConfig::new(&dir)
    };
    let (broker, _) =
        spawn_broker_durable::<Filter>("127.0.0.1:0", None, TcpConfig::default(), log_cfg)
            .expect("spawn durable");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");

    // Enough history to evict the oldest segments.
    const TOTAL: u64 = 80;
    for i in 1..=TOTAL {
        publisher.publish(numbered(i)).expect("publish");
    }
    std::thread::sleep(Duration::from_millis(200));

    // A subscriber resuming from seq 1 is behind the retention floor.
    let sub: TcpClient<Filter> = TcpClient::connect_resuming(
        broker.addr(),
        TcpConfig::default(),
        Some(Cursor { epoch: 1, seq: 1 }),
    )
    .expect("reconnect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    sub.catch_up().expect("catch up");
    assert_eq!(
        sub.recv_resume(RECV_WAIT),
        Some(ResumeOutcome::GapTruncatedByRetention),
        "part of the gap is gone; the subscriber must learn that"
    );

    let got = drain_indices(&sub);
    assert!(!got.is_empty(), "the retained suffix replays");
    assert!(
        got.len() < TOTAL as usize,
        "the evicted prefix must not reappear"
    );
    assert_eq!(got.last().copied(), Some(TOTAL));
    assert!(
        got.windows(2).all(|w| w[1] == w[0] + 1),
        "retained suffix is contiguous and in order"
    );

    broker.shutdown();
    cleanup(&dir);
}

#[test]
fn broker_restart_recovers_log_and_resumes_catch_up() {
    let dir = tmp_dir("restart");
    let (broker, report) = spawn_broker_durable::<Filter>(
        "127.0.0.1:0",
        None,
        TcpConfig::default(),
        LogConfig::new(&dir),
    )
    .expect("spawn durable");
    assert_eq!(report.records, 0);

    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    let sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    sub.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    for i in 1..=3u64 {
        publisher.publish(numbered(i)).expect("publish");
    }
    for _ in 0..3 {
        sub.recv_timeout(RECV_WAIT).expect("delivery");
    }
    let cursor = sub.cursor().expect("cursor");
    assert_eq!(cursor.seq, 3);

    // Crash: drop clients, kill the broker, restart on a fresh port with
    // the SAME log directory.
    drop(sub);
    drop(publisher);
    broker.shutdown();
    let (broker2, report2) = spawn_broker_durable::<Filter>(
        "127.0.0.1:0",
        None,
        TcpConfig::default(),
        LogConfig::new(&dir),
    )
    .expect("respawn durable");
    assert_eq!(report2.records, 3, "the log survived the restart");
    assert_eq!(report2.high_water, Cursor { epoch: 1, seq: 3 });

    // A subscriber resuming mid-history replays the tail exactly once
    // and then rides live deliveries — stamps continue at seq 4.
    let sub2: TcpClient<Filter> = TcpClient::connect_resuming(
        broker2.addr(),
        TcpConfig::default(),
        Some(Cursor { epoch: 1, seq: 1 }),
    )
    .expect("reconnect");
    sub2.subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    sub2.catch_up().expect("catch up");
    assert_eq!(
        sub2.recv_resume(RECV_WAIT),
        Some(ResumeOutcome::ContinuedAtCursor)
    );
    let got = drain_indices(&sub2);
    assert_eq!(got, vec![2, 3], "replayed tail, exactly once");

    let publisher2: TcpClient<Filter> = TcpClient::connect(broker2.addr()).expect("connect");
    publisher2.publish(numbered(4)).expect("publish");
    let e = sub2.recv_timeout(RECV_WAIT).expect("live after restart");
    assert_eq!(index_of(&e), 4);
    assert_eq!(
        sub2.cursor(),
        Some(Cursor { epoch: 1, seq: 4 }),
        "stamps continue from the recovered high-water mark"
    );

    broker2.shutdown();
    cleanup(&dir);
}

#[test]
fn live_publishes_during_replay_stay_ordered_and_exactly_once() {
    let dir = tmp_dir("race");
    // A small replay budget stretches the replay over many dispatcher
    // ticks so the live publishes below genuinely race it.
    let log_cfg = LogConfig {
        replay_budget: 16,
        ..LogConfig::new(&dir)
    };
    let (broker, _) =
        spawn_broker_durable::<Filter>("127.0.0.1:0", None, TcpConfig::default(), log_cfg)
            .expect("spawn durable");
    let publisher: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");

    const BACKLOG: u64 = 600;
    for i in 1..=BACKLOG {
        publisher.publish(numbered(i)).expect("publish");
    }
    std::thread::sleep(Duration::from_millis(200));

    // Start a replay over the whole backlog, then publish live while it
    // is in flight. A second, caught-up subscriber must keep receiving
    // promptly — replay never stalls live fan-out.
    let live_sub: TcpClient<Filter> = TcpClient::connect(broker.addr()).expect("connect");
    live_sub
        .subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");

    let replayer: TcpClient<Filter> = TcpClient::connect_resuming(
        broker.addr(),
        TcpConfig::default(),
        Some(Cursor { epoch: 1, seq: 0 }),
    )
    .expect("reconnect");
    replayer
        .subscribe_acked(Filter::for_topic("t"), ACK_WAIT)
        .expect("acked");
    replayer.catch_up().expect("catch up");
    // CatchUp has no ack and the publisher rides another connection, so
    // wait for the first replayed event — proof the broker's replay is
    // active — before racing live publishes against it.
    let first = replayer.recv_timeout(RECV_WAIT).expect("replay starts");
    assert_eq!(index_of(&first), 1);

    const LIVE: u64 = 20;
    for i in BACKLOG + 1..=BACKLOG + LIVE {
        publisher.publish(numbered(i)).expect("publish");
        let e = live_sub.recv_timeout(RECV_WAIT).expect("live fan-out");
        assert_eq!(index_of(&e), i, "live subscriber rides ahead of replay");
    }

    assert_eq!(
        replayer.recv_resume(RECV_WAIT),
        Some(ResumeOutcome::ContinuedAtCursor)
    );
    let mut got = vec![index_of(&first)];
    got.extend(drain_indices(&replayer));
    let want: Vec<u64> = (1..=BACKLOG + LIVE).collect();
    assert_eq!(
        got, want,
        "backlog then racing live events: in order, no gaps, no duplicates"
    );
    assert!(broker.stats().replayed_frames >= BACKLOG);
    assert_eq!(
        broker.stats().dropped_frames,
        0,
        "replay backpressure retries; it never drops frames"
    );

    broker.shutdown();
    cleanup(&dir);
}
