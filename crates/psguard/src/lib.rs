//! **PSGuard** — secure event dissemination for content-based
//! publish-subscribe networks.
//!
//! A from-scratch reproduction of *"Secure Event Dissemination in
//! Publish-Subscribe Networks"* (Srivatsa & Liu, ICDCS 2007). PSGuard
//! keeps the secret attributes of published events confidential from
//! unauthorized subscribers **and** from the honest-but-curious brokers
//! that route them, while preserving in-network content-based matching:
//!
//! * **Key management** (`psguard-keys`): authorization keys attach to
//!   *subscription filters* and encryption keys to *events*, embedded in
//!   hierarchical key spaces so a subscriber derives `K(e)` from `K(f)`
//!   iff the event matches the filter. Costs are logarithmic in attribute
//!   ranges and independent of the subscriber count; the KDC is stateless.
//! * **Secure routing** (`psguard-routing`): topics travel as
//!   Song–Wagner–Perrig tokens, and probabilistic multi-path routing
//!   flattens the token frequencies any curious broker observes.
//! * **Substrate** (`psguard-siena`): a Siena-like broker overlay with
//!   covering-based subscription forwarding, a discrete-event performance
//!   engine, and a real TCP transport.
//!
//! This crate is the facade tying those layers together: a [`PsGuard`]
//! deployment hands out [`Publisher`] and [`Subscriber`] handles, and
//! [`SecureEngine`] runs the full encrypted pipeline over a broker
//! overlay.
//!
//! # Quickstart
//!
//! ```
//! use psguard::{PsGuard, PsGuardConfig};
//! use psguard_keys::Schema;
//! use psguard_model::{Constraint, Event, Filter, IntRange, Op};
//!
//! // A deployment: stateless KDC + topic schema + epoching.
//! let schema = Schema::builder()
//!     .numeric("age", IntRange::new(0, 255).unwrap(), 1)?
//!     .build();
//! let ps = PsGuard::new(b"master seed", schema, PsGuardConfig::default());
//!
//! // Publisher side.
//! let mut publisher = ps.publisher("hospital");
//! ps.authorize_publisher(&mut publisher, "cancerTrail", 0);
//! let event = Event::builder("cancerTrail")
//!     .attr("age", 25i64)
//!     .payload(b"patient record".to_vec())
//!     .build();
//! let secure = publisher.publish(&event, 0)?;
//!
//! // Subscriber side: authorized for ages > 20, so this event decrypts.
//! let mut subscriber = ps.subscriber("dr-alice");
//! let filter = Filter::for_topic("cancerTrail")
//!     .with(Constraint::new("age", Op::Gt(20)));
//! ps.authorize_subscriber(&mut subscriber, &filter, 0)?;
//! assert_eq!(subscriber.decrypt(&secure)?.payload(), b"patient record");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod pipeline;
mod publisher;
mod service;
mod subscriber;

pub use engine::{secure_cost_model, CryptoCosts, SecureEngine};
pub use error::{DecryptError, MeasureError, PublishError, SubscribeError};
pub use pipeline::SecurePipeline;
pub use publisher::{Publisher, PublisherCredential};
pub use service::{PsGuard, PsGuardConfig};
pub use subscriber::Subscriber;
