//! The publisher: derives event keys from topic keys and encrypts
//! payloads before events enter the (untrusted) broker overlay.

use std::collections::HashMap;

use psguard_crypto::DeriveKey;
use psguard_crypto::{cbc_encrypt, Aes128, AesContext, PrfContext, Token};
use psguard_keys::{
    combine_master, event_key_addresses, mac_key, part_from_topic_key, AuthKey, EpochId,
    EventKeyAddress, KeyCache, KeyScope, Ktid, OpCounter, Schema,
};
use psguard_model::Event;
use psguard_routing::{RoutableTag, SecureEvent};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::error::PublishError;

/// Per-worker event-key cache entries kept before wholesale eviction.
const EVENT_KEY_CACHE_CAP: usize = 256;

/// KH label separating the per-topic IV-derivation key from every other
/// use of the topic key.
const IV_SEED_LABEL: &[u8] = b"psguard-iv-seed";

/// Stream id for serial [`Publisher::publish`] calls; batch streams use
/// the 1-based batch counter, so the two can never collide.
const SERIAL_STREAM: u64 = 0;

/// A per-(topic, epoch) publishing credential issued by the KDC: the
/// topic key `K(w)` (or `K_P(w)`) and the routing token `T(w)`.
#[derive(Debug, Clone)]
pub struct PublisherCredential {
    /// The topic `w`.
    pub topic: String,
    /// The epoch the key is valid for.
    pub epoch: u64,
    /// The topic key rooting every per-attribute hierarchy.
    pub topic_key: DeriveKey,
    /// The routing token used to tag events.
    pub token: Token,
}

/// Event-key material cached per distinct address vector: the expanded
/// AES schedule for `K(e)` and the derived MAC key. Consecutive events
/// with the same keyed attribute values share both.
///
/// The derived `Debug` goes through the fields' own redacting `Debug`
/// impls, so no key material can leak into logs.
#[derive(Debug)]
struct EventKeys {
    aes: AesContext,
    mac: DeriveKey,
}

/// Per-worker derivation state for [`Publisher::publish_batch`]: a NAKT
/// key cache, an event-key cache, and a private op counter merged into
/// the publisher's after each batch.
#[derive(Debug)]
struct BatchWorker {
    cache: KeyCache,
    ops: OpCounter,
    /// Keyed by (stable topic id, epoch, address vector). The topic id is
    /// the publisher-lifetime id from [`Publisher::topic_ids`] — never a
    /// per-batch index, because these entries outlive the batch and a
    /// later batch may see topics in a different order.
    keys: HashMap<(u64, u64, Vec<EventKeyAddress>), EventKeys>,
}

impl BatchWorker {
    fn new() -> Self {
        BatchWorker {
            cache: KeyCache::new(64 * 1024),
            ops: OpCounter::new(),
            keys: HashMap::new(),
        }
    }

    /// The AES/MAC material for an event with key parts at `addrs`,
    /// derived on first sight and cached for the rest of the batch.
    fn event_keys(
        &mut self,
        schema: &Schema,
        topic_key: &DeriveKey,
        topic_id: u64,
        epoch: u64,
        addrs: Vec<EventKeyAddress>,
    ) -> &EventKeys {
        let key = (topic_id, epoch, addrs);
        if self.keys.len() >= EVENT_KEY_CACHE_CAP && !self.keys.contains_key(&key) {
            self.keys.clear();
        }
        let BatchWorker { cache, ops, keys } = self;
        keys.entry(key).or_insert_with_key(|k| {
            let parts: Vec<DeriveKey> =
                k.2.iter()
                    .map(|a| derive_part_cached(schema, cache, ops, topic_key, epoch, a))
                    .collect();
            let master = combine_master(&parts, ops);
            EventKeys {
                aes: AesContext::new(master.content_key().as_bytes()),
                mac: mac_key(&master, ops),
            }
        })
    }
}

/// A per-topic credential resolved once per batch: the topic key, the
/// publisher-lifetime stable topic id (cache identity across batches),
/// plus [`PrfContext`]s so tagging each event and seeding its RNG cost
/// two SHA-1 compressions each instead of re-deriving HMAC pads per
/// event.
struct ResolvedCredential {
    topic_key: DeriveKey,
    topic_id: u64,
    tag_ctx: PrfContext,
    iv_ctx: PrfContext,
}

/// The per-topic IV-derivation context: a PRF keyed under
/// `KH(K(w), "psguard-iv-seed")`. Brokers never hold `K(w)`, so the
/// iv/nonce stream this context seeds is unpredictable to them.
fn iv_context(topic_key: &DeriveKey) -> PrfContext {
    PrfContext::new(topic_key.kh(IV_SEED_LABEL).as_bytes())
}

/// One per-attribute key part, routing numeric parts through a key cache
/// (consecutive events with nearby values share long NAKT prefixes).
fn derive_part_cached(
    schema: &Schema,
    cache: &mut KeyCache,
    ops: &mut OpCounter,
    topic_key: &DeriveKey,
    epoch: u64,
    addr: &EventKeyAddress,
) -> DeriveKey {
    if let EventKeyAddress::Numeric { attr, ktid } = addr {
        ops.add_kh(1);
        let auth = AuthKey {
            scope: KeyScope::Numeric {
                attr: attr.clone(),
                ktid: Ktid::root(),
            },
            key: topic_key.kh(attr.as_bytes()),
            epoch: EpochId(epoch),
        };
        if let Some(k) = cache.derive_numeric_cached(&auth, ktid, ops) {
            return k;
        }
    }
    part_from_topic_key(topic_key, schema, addr, ops)
}

/// Encrypts and tags one event inside a batch, drawing iv and nonce from
/// the event's own deterministic `rng` (seeded by batch and index, so the
/// output is independent of how events are chunked across workers).
fn encrypt_one(
    schema: &Schema,
    cred: &ResolvedCredential,
    worker: &mut BatchWorker,
    event: &Event,
    epoch: u64,
    rng: &mut StdRng,
) -> Result<SecureEvent, PublishError> {
    let addrs = event_key_addresses(schema, event)?;
    let keys = worker.event_keys(schema, &cred.topic_key, cred.topic_id, epoch, addrs);

    let mut iv = [0u8; 16];
    rng.fill_bytes(&mut iv);
    let ciphertext = keys.aes.encrypt_cbc(&iv, event.payload());
    let mut mac_input = Vec::with_capacity(16 + ciphertext.len());
    mac_input.extend_from_slice(&iv);
    mac_input.extend_from_slice(&ciphertext);
    let mac = psguard_crypto::kh(keys.mac.as_bytes(), &mac_input);
    worker.ops.add_kh(1);

    let mut routed = Event::builder("")
        .id(event.id())
        .publisher(event.publisher());
    for (name, value) in event.attrs() {
        routed = routed.attr(name.clone(), value.clone());
    }
    let routed = routed.payload(ciphertext).build();

    let mut nonce = [0u8; 16];
    rng.fill_bytes(&mut nonce);
    Ok(SecureEvent {
        tag: RoutableTag {
            nonce,
            tag: cred.tag_ctx.prf(&nonce),
        },
        event: routed,
        iv,
        epoch,
        mac,
    })
}

/// One event's private iv/nonce RNG, seeded by the topic's secret IV
/// context over ⟨publisher id ‖ stream ‖ index⟩.
///
/// The PRF is keyed under `K(w)`-derived material, so brokers (who see
/// only tokens and ciphertext) cannot predict any iv or nonce. The input
/// encodes the stream and index in separate 8-byte fields — injective,
/// unlike a 64-bit fold, so no two events of one publisher can collide
/// onto the same seed — and two PRF calls stretch the output to the full
/// 32-byte `StdRng` seed.
fn event_rng(iv_ctx: &PrfContext, base: u64, stream: u64, idx: u64) -> StdRng {
    let mut input = [0u8; 25];
    input[..8].copy_from_slice(&base.to_be_bytes());
    input[8..16].copy_from_slice(&stream.to_be_bytes());
    input[16..24].copy_from_slice(&idx.to_be_bytes());
    let mut seed = [0u8; 32];
    input[24] = 0;
    seed[..20].copy_from_slice(iv_ctx.prf(&input).as_bytes());
    input[24] = 1;
    seed[20..].copy_from_slice(&iv_ctx.prf(&input).as_bytes()[..12]);
    StdRng::from_seed(seed)
}

/// A publishing principal.
///
/// Obtain via [`crate::PsGuard::publisher`] and authorize per topic with
/// [`crate::PsGuard::authorize_publisher`].
#[derive(Debug)]
pub struct Publisher {
    name: String,
    schema: Schema,
    credentials: HashMap<(String, u64), PublisherCredential>,
    seed_base: u64,
    ops: OpCounter,
    cache: KeyCache,
    /// Stable per-topic ids, assigned on first publish and kept for the
    /// publisher's lifetime; the worker event-key caches are keyed by
    /// these so entries can never be confused across topics.
    topic_ids: HashMap<String, u64>,
    /// Per-(topic, epoch) IV-derivation contexts for the serial path.
    iv_ctxs: HashMap<(String, u64), PrfContext>,
    /// Serial publishes so far; the index within [`SERIAL_STREAM`].
    serial_seq: u64,
    /// Per-worker derivation caches persisted across batches.
    workers: Vec<BatchWorker>,
    /// Batches published so far; the stream id of every batched event's
    /// RNG seed (1-based, so it never collides with [`SERIAL_STREAM`]).
    batch_counter: u64,
}

impl Publisher {
    pub(crate) fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        // The name hash only separates publishers that share a topic
        // credential (and keeps tests reproducible). Unpredictability of
        // ivs and nonces toward brokers comes from `event_rng`, whose PRF
        // is keyed under secret topic-key material.
        let seed = psguard_crypto::h(name.as_bytes());
        let mut seed8 = [0u8; 8];
        seed8.copy_from_slice(&seed[..8]);
        let seed_base = u64::from_be_bytes(seed8);
        Publisher {
            name,
            schema,
            credentials: HashMap::new(),
            seed_base,
            ops: OpCounter::new(),
            // Publisher-side derived-key cache (§3.2.3 applies to
            // "the KDC, the publishers and the subscribers").
            cache: KeyCache::new(64 * 1024),
            topic_ids: HashMap::new(),
            iv_ctxs: HashMap::new(),
            serial_seq: 0,
            workers: Vec::new(),
            batch_counter: 0,
        }
    }

    /// The stable publisher-lifetime id for `topic`, assigned on first
    /// sight.
    fn topic_id(&mut self, topic: &str) -> u64 {
        if let Some(&id) = self.topic_ids.get(topic) {
            return id;
        }
        let id = self.topic_ids.len() as u64;
        self.topic_ids.insert(topic.to_owned(), id);
        id
    }

    /// Publisher-side key-cache statistics.
    pub fn cache_stats(&self) -> psguard_keys::CacheStats {
        self.cache.stats()
    }

    /// Derives one per-attribute key part, routing numeric parts through
    /// the publisher's key cache (consecutive events with nearby values
    /// share long NAKT prefixes).
    fn derive_part(
        &mut self,
        topic_key: &psguard_crypto::DeriveKey,
        epoch: u64,
        addr: &EventKeyAddress,
    ) -> DeriveKey {
        derive_part_cached(
            &self.schema,
            &mut self.cache,
            &mut self.ops,
            topic_key,
            epoch,
            addr,
        )
    }

    /// The publisher's principal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs a credential (called by the service facade).
    pub fn install_credential(&mut self, credential: PublisherCredential) {
        self.credentials
            .insert((credential.topic.clone(), credential.epoch), credential);
    }

    /// Cumulative key-derivation cost since creation.
    pub fn ops(&self) -> OpCounter {
        self.ops
    }

    /// Encrypts and tags an event for dissemination during `epoch`.
    ///
    /// The returned [`SecureEvent`] carries the routable attributes in the
    /// clear (brokers match on them), the topic only as a pseudonymous
    /// tag, and the payload as AES-128-CBC ciphertext under `K(e)`.
    ///
    /// # Errors
    ///
    /// * [`PublishError::UnknownTopic`] without a credential for
    ///   `(topic, epoch)`;
    /// * [`PublishError::EventKey`] when the event violates the schema.
    pub fn publish(&mut self, event: &Event, epoch: u64) -> Result<SecureEvent, PublishError> {
        let credential = self
            .credentials
            .get(&(event.topic().to_owned(), epoch))
            .ok_or_else(|| PublishError::UnknownTopic {
                topic: event.topic().to_owned(),
            })?
            .clone();

        // K(e): fold the per-attribute event keys (numeric parts go
        // through the publisher's key cache).
        let addrs = event_key_addresses(&self.schema, event)?;
        let parts: Vec<DeriveKey> = addrs
            .iter()
            .map(|a| self.derive_part(&credential.topic_key, epoch, a))
            .collect();
        let master = combine_master(&parts, &mut self.ops);
        let key = master.content_key();

        // iv and nonce come from a per-event RNG keyed under the topic
        // key — deterministic for a seeded KDC, unpredictable to brokers.
        let seq = self.serial_seq;
        self.serial_seq += 1;
        let mut rng = {
            let iv_ctx = self
                .iv_ctxs
                .entry((credential.topic.clone(), epoch))
                .or_insert_with(|| iv_context(&credential.topic_key));
            event_rng(iv_ctx, self.seed_base, SERIAL_STREAM, seq)
        };

        // Encrypt the payload, then MAC ⟨iv ‖ ciphertext⟩ so receivers can
        // verify key agreement and integrity before decrypting.
        let mut iv = [0u8; 16];
        rng.fill_bytes(&mut iv);
        let ciphertext = cbc_encrypt(&Aes128::new(key.as_bytes()), &iv, event.payload());
        let mk = mac_key(&master, &mut self.ops);
        let mut mac_input = iv.to_vec();
        mac_input.extend_from_slice(&ciphertext);
        self.ops.add_kh(1);
        let mac = psguard_crypto::kh(mk.as_bytes(), &mac_input);

        // Strip the plaintext topic; brokers see only the tag.
        let mut routed = Event::builder("")
            .id(event.id())
            .publisher(event.publisher());
        for (name, value) in event.attrs() {
            routed = routed.attr(name.clone(), value.clone());
        }
        let routed = routed.payload(ciphertext).build();

        Ok(SecureEvent {
            tag: RoutableTag::new(&credential.token, &mut rng),
            event: routed,
            iv,
            epoch,
            mac,
        })
    }

    /// Encrypts and tags a whole batch of events across `workers` threads,
    /// each with its own KDC derivation cache and reusable crypto contexts
    /// (per-topic [`PrfContext`], per-event-key [`AesContext`]).
    ///
    /// The output is **bit-identical for any worker count**: every event's
    /// iv and nonce come from a private RNG keyed under the topic key and
    /// seeded by the publisher identity, the batch counter, and the
    /// event's index — never by how events happen to be chunked across
    /// threads. (It therefore differs from the iv/nonce stream of serial
    /// [`publish`](Self::publish) calls, which occupy their own stream.)
    ///
    /// Worker caches persist across batches, so a steady stream of batches
    /// amortizes NAKT chain walks and AES key schedules the same way the
    /// serial path's cache does.
    ///
    /// # Errors
    ///
    /// As [`publish`](Self::publish); on failure the earliest failing
    /// event's error is returned, independent of worker count.
    pub fn publish_batch(
        &mut self,
        events: &[Event],
        epoch: u64,
        workers: usize,
    ) -> Result<Vec<SecureEvent>, PublishError> {
        let workers = workers.max(1);
        self.batch_counter += 1;
        let batch = self.batch_counter;
        if events.is_empty() {
            return Ok(Vec::new());
        }

        // Resolve each distinct topic once, failing fast before any
        // thread is spawned.
        let mut topic_idx: HashMap<&str, usize> = HashMap::new();
        let mut creds: Vec<ResolvedCredential> = Vec::new();
        let mut event_topic: Vec<usize> = Vec::with_capacity(events.len());
        for e in events {
            let idx = if let Some(&i) = topic_idx.get(e.topic()) {
                i
            } else {
                let c = self
                    .credentials
                    .get(&(e.topic().to_owned(), epoch))
                    .ok_or_else(|| PublishError::UnknownTopic {
                        topic: e.topic().to_owned(),
                    })?;
                let topic_key = c.topic_key.clone();
                let tag_ctx = PrfContext::for_token(&c.token);
                creds.push(ResolvedCredential {
                    topic_id: self.topic_id(e.topic()),
                    iv_ctx: iv_context(&topic_key),
                    topic_key,
                    tag_ctx,
                });
                topic_idx.insert(e.topic(), creds.len() - 1);
                creds.len() - 1
            };
            event_topic.push(idx);
        }

        while self.workers.len() < workers {
            self.workers.push(BatchWorker::new());
        }

        let chunk = events.len().div_ceil(workers);
        let n_chunks = events.len().div_ceil(chunk);
        let mut outs: Vec<Vec<Result<SecureEvent, PublishError>>> = Vec::new();
        outs.resize_with(n_chunks, Vec::new);

        let schema = &self.schema;
        let seed_base = self.seed_base;
        let states = &mut self.workers;
        let creds = &creds;
        let event_topic = &event_topic;
        if n_chunks == 1 {
            // Single worker: run inline; no thread overhead.
            let out = &mut outs[0];
            let state = &mut states[0];
            for (i, e) in events.iter().enumerate() {
                let cred = &creds[event_topic[i]];
                let mut rng = event_rng(&cred.iv_ctx, seed_base, batch, i as u64);
                out.push(encrypt_one(schema, cred, state, e, epoch, &mut rng));
            }
        } else {
            std::thread::scope(|s| {
                for (chunk_no, ((chunk_events, out), state)) in events
                    .chunks(chunk)
                    .zip(outs.iter_mut())
                    .zip(states.iter_mut())
                    .enumerate()
                {
                    s.spawn(move || {
                        for (j, e) in chunk_events.iter().enumerate() {
                            let i = chunk_no * chunk + j;
                            let cred = &creds[event_topic[i]];
                            let mut rng = event_rng(&cred.iv_ctx, seed_base, batch, i as u64);
                            out.push(encrypt_one(schema, cred, state, e, epoch, &mut rng));
                        }
                    });
                }
            });
        }

        // Fold worker op counts into the publisher's running total.
        let mut merged = OpCounter::new();
        for state in &mut self.workers {
            merged.merge(&state.ops);
            state.ops = OpCounter::new();
        }
        self.ops.merge(&merged);

        let mut result = Vec::with_capacity(events.len());
        for r in outs.into_iter().flatten() {
            result.push(r?);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_keys::{EpochId, Kdc, TopicScope};
    use psguard_model::IntRange;

    fn publisher_with_credential() -> (Publisher, Kdc) {
        let schema = Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .build();
        let kdc = Kdc::from_seed(b"seed");
        let mut p = Publisher::new("P", schema);
        let mut ops = OpCounter::new();
        p.install_credential(PublisherCredential {
            topic: "w".into(),
            epoch: 0,
            topic_key: kdc.topic_key("w", EpochId(0), &TopicScope::Shared, &mut ops),
            token: kdc.routing_token("w"),
        });
        (p, kdc)
    }

    #[test]
    fn publish_encrypts_and_strips_topic() {
        let (mut p, kdc) = publisher_with_credential();
        let e = Event::builder("w")
            .attr("age", 30i64)
            .payload(b"top secret".to_vec())
            .build();
        let secure = p.publish(&e, 0).unwrap();
        assert_eq!(secure.event.topic(), "");
        assert_ne!(secure.event.payload(), b"top secret");
        assert!(secure.event.payload().len() >= 16);
        // Tag matches the topic token.
        assert!(secure.tag.matches(&kdc.routing_token("w")));
        // Routable attribute remains visible for in-network matching.
        assert_eq!(secure.event.attr("age").and_then(|v| v.as_int()), Some(30));
    }

    #[test]
    fn missing_credential_is_an_error() {
        let (mut p, _) = publisher_with_credential();
        let e = Event::builder("other").payload(vec![1]).build();
        assert!(matches!(
            p.publish(&e, 0),
            Err(PublishError::UnknownTopic { .. })
        ));
        // Also wrong epoch for a known topic.
        let e = Event::builder("w").payload(vec![1]).build();
        assert!(matches!(
            p.publish(&e, 7),
            Err(PublishError::UnknownTopic { .. })
        ));
    }

    #[test]
    fn schema_violation_is_an_error() {
        let (mut p, _) = publisher_with_credential();
        let e = Event::builder("w")
            .attr("age", "not numeric")
            .payload(vec![1])
            .build();
        assert!(matches!(p.publish(&e, 0), Err(PublishError::EventKey(_))));
    }

    #[test]
    fn distinct_events_get_distinct_ivs_and_nonces() {
        let (mut p, _) = publisher_with_credential();
        let e = Event::builder("w")
            .attr("age", 1i64)
            .payload(vec![7])
            .build();
        let a = p.publish(&e, 0).unwrap();
        let b = p.publish(&e, 0).unwrap();
        assert_ne!(a.iv, b.iv);
        assert_ne!(a.tag.nonce, b.tag.nonce);
        assert_ne!(a.tag.tag, b.tag.tag);
    }

    #[test]
    fn publisher_cache_kicks_in_on_locality() {
        let (mut p, _) = publisher_with_credential();
        for v in [100i64, 101, 100, 102, 101] {
            let e = Event::builder("w").attr("age", v).payload(vec![1]).build();
            p.publish(&e, 0).unwrap();
        }
        let stats = p.cache_stats();
        assert!(stats.hits + stats.partial_hits > 0, "{stats:?}");
        assert!(stats.hash_ops_saved > 0);
    }

    #[test]
    fn cached_and_uncached_publishes_agree() {
        // The same event published twice (cache cold, then warm) must
        // produce ciphertexts that decrypt under the same grant.
        use crate::{PsGuard, PsGuardConfig};
        let schema = Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .build();
        let ps = PsGuard::new(b"seed2", schema, PsGuardConfig::default());
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber(&mut sub, &psguard_model::Filter::for_topic("w"), 0)
            .unwrap();
        let e = Event::builder("w")
            .attr("age", 77i64)
            .payload(b"x".to_vec())
            .build();
        let first = publisher.publish(&e, 0).unwrap();
        let second = publisher.publish(&e, 0).unwrap();
        assert_eq!(sub.decrypt(&first).unwrap().payload(), b"x");
        assert_eq!(sub.decrypt(&second).unwrap().payload(), b"x");
    }

    #[test]
    fn ops_accumulate() {
        let (mut p, _) = publisher_with_credential();
        let e = Event::builder("w")
            .attr("age", 1i64)
            .payload(vec![7])
            .build();
        p.publish(&e, 0).unwrap();
        assert!(p.ops().total() > 0);
    }

    fn batch_events(n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| {
                Event::builder("w")
                    .attr("age", (i % 200) as i64)
                    .payload(vec![i as u8; 48])
                    .build()
            })
            .collect()
    }

    #[test]
    fn batch_output_identical_for_any_worker_count() {
        let events = batch_events(37);
        let (mut p, _) = publisher_with_credential();
        let baseline = p.publish_batch(&events, 0, 1).unwrap();
        assert_eq!(baseline.len(), events.len());
        for workers in [2usize, 4, 8] {
            let (mut q, _) = publisher_with_credential();
            let got = q.publish_batch(&events, 0, workers).unwrap();
            assert_eq!(got, baseline, "workers={workers}");
        }
    }

    #[test]
    fn batch_events_decrypt_and_route_like_serial_ones() {
        let (mut p, kdc) = publisher_with_credential();
        let events = batch_events(9);
        let batch = p.publish_batch(&events, 0, 4).unwrap();
        let token = kdc.routing_token("w");
        for (e, s) in events.iter().zip(&batch) {
            assert_eq!(s.event.topic(), "");
            assert!(s.tag.matches(&token));
            assert_eq!(
                s.event.attr("age").and_then(|v| v.as_int()),
                e.attr("age").and_then(|v| v.as_int())
            );
        }

        // Full-facade check: a subscriber authorized for the topic can
        // verify and decrypt every envelope in the batch.
        use crate::{PsGuard, PsGuardConfig};
        let schema = Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .build();
        let ps = PsGuard::new(b"seed3", schema, PsGuardConfig::default());
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber(&mut sub, &psguard_model::Filter::for_topic("w"), 0)
            .unwrap();
        for (i, s) in publisher
            .publish_batch(&events, 0, 3)
            .unwrap()
            .iter()
            .enumerate()
        {
            assert_eq!(sub.decrypt(s).unwrap().payload(), vec![i as u8; 48]);
        }
    }

    #[test]
    fn successive_batches_draw_fresh_randomness() {
        let (mut p, _) = publisher_with_credential();
        let events = batch_events(4);
        let first = p.publish_batch(&events, 0, 2).unwrap();
        let second = p.publish_batch(&events, 0, 2).unwrap();
        for (a, b) in first.iter().zip(&second) {
            assert_ne!(a.iv, b.iv);
            assert_ne!(a.tag.nonce, b.tag.nonce);
        }
        assert!(p.ops().total() > 0);
    }

    #[test]
    fn batch_errors_do_not_depend_on_worker_count() {
        let events = vec![
            Event::builder("w")
                .attr("age", 1i64)
                .payload(vec![1])
                .build(),
            Event::builder("other").payload(vec![2]).build(),
        ];
        for workers in [1usize, 2, 8] {
            let (mut p, _) = publisher_with_credential();
            assert!(matches!(
                p.publish_batch(&events, 0, workers),
                Err(PublishError::UnknownTopic { ref topic }) if topic == "other"
            ));
        }
        // A schema violation surfaces as the earliest failing event's
        // error for every worker count.
        let bad = vec![
            Event::builder("w")
                .attr("age", 1i64)
                .payload(vec![1])
                .build(),
            Event::builder("w")
                .attr("age", "not numeric")
                .payload(vec![2])
                .build(),
        ];
        for workers in [1usize, 2, 8] {
            let (mut p, _) = publisher_with_credential();
            assert!(matches!(
                p.publish_batch(&bad, 0, workers),
                Err(PublishError::EventKey(_))
            ));
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (mut p, _) = publisher_with_credential();
        assert_eq!(p.publish_batch(&[], 0, 4).unwrap(), Vec::new());
    }

    #[test]
    fn reordered_topics_across_batches_reuse_no_stale_keys() {
        // Regression: worker event-key caches persist across batches, so
        // a batch whose topics arrive in a different first-seen order
        // than an earlier batch must not hit another topic's cached
        // K(e). Events carry identical keyed attributes to force the
        // cache collision a per-batch index key would produce.
        use crate::{PsGuard, PsGuardConfig};
        let schema = Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .build();
        let ps = PsGuard::new(b"seed4", schema, PsGuardConfig::default());
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        ps.authorize_publisher(&mut publisher, "v", 0);
        let mut sub_w = ps.subscriber("Sw");
        ps.authorize_subscriber(&mut sub_w, &psguard_model::Filter::for_topic("w"), 0)
            .unwrap();
        let mut sub_v = ps.subscriber("Sv");
        ps.authorize_subscriber(&mut sub_v, &psguard_model::Filter::for_topic("v"), 0)
            .unwrap();
        let ev = |topic: &str, payload: &[u8]| {
            Event::builder(topic)
                .attr("age", 10i64)
                .payload(payload.to_vec())
                .build()
        };
        for workers in [1usize, 3] {
            let first = publisher
                .publish_batch(&[ev("w", b"w1"), ev("v", b"v1")], 0, workers)
                .unwrap();
            let second = publisher
                .publish_batch(&[ev("v", b"v2"), ev("w", b"w2")], 0, workers)
                .unwrap();
            assert_eq!(sub_w.decrypt(&first[0]).unwrap().payload(), b"w1");
            assert_eq!(sub_v.decrypt(&first[1]).unwrap().payload(), b"v1");
            assert_eq!(sub_v.decrypt(&second[0]).unwrap().payload(), b"v2");
            assert_eq!(sub_w.decrypt(&second[1]).unwrap().payload(), b"w2");
        }
    }

    #[test]
    fn serial_and_batch_streams_never_share_ivs_or_nonces() {
        let (mut p, _) = publisher_with_credential();
        let events = batch_events(8);
        let serial: Vec<_> = events.iter().map(|e| p.publish(e, 0).unwrap()).collect();
        let batch = p.publish_batch(&events, 0, 2).unwrap();
        let mut ivs = std::collections::HashSet::new();
        let mut nonces = std::collections::HashSet::new();
        for s in serial.iter().chain(&batch) {
            assert!(ivs.insert(s.iv), "iv reused across streams");
            assert!(nonces.insert(s.tag.nonce), "nonce reused across streams");
        }
    }

    #[test]
    fn publishers_with_distinct_names_draw_distinct_ivs() {
        let events = batch_events(4);
        let mut outs = Vec::new();
        for name in ["P1", "P2"] {
            let schema = Schema::builder()
                .numeric("age", IntRange::new(0, 255).unwrap(), 1)
                .unwrap()
                .build();
            let kdc = Kdc::from_seed(b"seed");
            let mut p = Publisher::new(name, schema);
            let mut ops = OpCounter::new();
            p.install_credential(PublisherCredential {
                topic: "w".into(),
                epoch: 0,
                topic_key: kdc.topic_key("w", EpochId(0), &TopicScope::Shared, &mut ops),
                token: kdc.routing_token("w"),
            });
            outs.push(p.publish_batch(&events, 0, 1).unwrap());
        }
        for (a, b) in outs[0].iter().zip(&outs[1]) {
            assert_ne!(a.iv, b.iv);
            assert_ne!(a.tag.nonce, b.tag.nonce);
        }
    }
}
