//! The publisher: derives event keys from topic keys and encrypts
//! payloads before events enter the (untrusted) broker overlay.

use std::collections::HashMap;

use psguard_crypto::DeriveKey;
use psguard_crypto::{cbc_encrypt, Aes128, Token};
use psguard_keys::{
    combine_master, event_key_addresses, mac_key, part_from_topic_key, AuthKey, EpochId,
    EventKeyAddress, KeyCache, KeyScope, Ktid, OpCounter, Schema,
};
use psguard_model::Event;
use psguard_routing::{RoutableTag, SecureEvent};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::error::PublishError;

/// A per-(topic, epoch) publishing credential issued by the KDC: the
/// topic key `K(w)` (or `K_P(w)`) and the routing token `T(w)`.
#[derive(Debug, Clone)]
pub struct PublisherCredential {
    /// The topic `w`.
    pub topic: String,
    /// The epoch the key is valid for.
    pub epoch: u64,
    /// The topic key rooting every per-attribute hierarchy.
    pub topic_key: DeriveKey,
    /// The routing token used to tag events.
    pub token: Token,
}

/// A publishing principal.
///
/// Obtain via [`crate::PsGuard::publisher`] and authorize per topic with
/// [`crate::PsGuard::authorize_publisher`].
#[derive(Debug)]
pub struct Publisher {
    name: String,
    schema: Schema,
    credentials: HashMap<(String, u64), PublisherCredential>,
    rng: StdRng,
    ops: OpCounter,
    cache: KeyCache,
}

impl Publisher {
    pub(crate) fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        // Deterministic per-name seed keeps tests reproducible; IVs and
        // nonces must be unpredictable to brokers, not to the test
        // harness.
        let seed = psguard_crypto::h(name.as_bytes());
        let mut seed8 = [0u8; 8];
        seed8.copy_from_slice(&seed[..8]);
        Publisher {
            name,
            schema,
            credentials: HashMap::new(),
            rng: StdRng::seed_from_u64(u64::from_be_bytes(seed8)),
            ops: OpCounter::new(),
            // Publisher-side derived-key cache (§3.2.3 applies to
            // "the KDC, the publishers and the subscribers").
            cache: KeyCache::new(64 * 1024),
        }
    }

    /// Publisher-side key-cache statistics.
    pub fn cache_stats(&self) -> psguard_keys::CacheStats {
        self.cache.stats()
    }

    /// Derives one per-attribute key part, routing numeric parts through
    /// the publisher's key cache (consecutive events with nearby values
    /// share long NAKT prefixes).
    fn derive_part(
        &mut self,
        topic_key: &psguard_crypto::DeriveKey,
        epoch: u64,
        addr: &EventKeyAddress,
    ) -> DeriveKey {
        if let EventKeyAddress::Numeric { attr, ktid } = addr {
            self.ops.add_kh(1);
            let auth = AuthKey {
                scope: KeyScope::Numeric {
                    attr: attr.clone(),
                    ktid: Ktid::root(),
                },
                key: topic_key.kh(attr.as_bytes()),
                epoch: EpochId(epoch),
            };
            if let Some(k) = self.cache.derive_numeric_cached(&auth, ktid, &mut self.ops) {
                return k;
            }
        }
        part_from_topic_key(topic_key, &self.schema, addr, &mut self.ops)
    }

    /// The publisher's principal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs a credential (called by the service facade).
    pub fn install_credential(&mut self, credential: PublisherCredential) {
        self.credentials
            .insert((credential.topic.clone(), credential.epoch), credential);
    }

    /// Cumulative key-derivation cost since creation.
    pub fn ops(&self) -> OpCounter {
        self.ops
    }

    /// Encrypts and tags an event for dissemination during `epoch`.
    ///
    /// The returned [`SecureEvent`] carries the routable attributes in the
    /// clear (brokers match on them), the topic only as a pseudonymous
    /// tag, and the payload as AES-128-CBC ciphertext under `K(e)`.
    ///
    /// # Errors
    ///
    /// * [`PublishError::UnknownTopic`] without a credential for
    ///   `(topic, epoch)`;
    /// * [`PublishError::EventKey`] when the event violates the schema.
    pub fn publish(&mut self, event: &Event, epoch: u64) -> Result<SecureEvent, PublishError> {
        let credential = self
            .credentials
            .get(&(event.topic().to_owned(), epoch))
            .ok_or_else(|| PublishError::UnknownTopic {
                topic: event.topic().to_owned(),
            })?
            .clone();

        // K(e): fold the per-attribute event keys (numeric parts go
        // through the publisher's key cache).
        let addrs = event_key_addresses(&self.schema, event)?;
        let parts: Vec<DeriveKey> = addrs
            .iter()
            .map(|a| self.derive_part(&credential.topic_key, epoch, a))
            .collect();
        let master = combine_master(&parts, &mut self.ops);
        let key = master.content_key();

        // Encrypt the payload, then MAC ⟨iv ‖ ciphertext⟩ so receivers can
        // verify key agreement and integrity before decrypting.
        let mut iv = [0u8; 16];
        self.rng.fill_bytes(&mut iv);
        let ciphertext = cbc_encrypt(&Aes128::new(key.as_bytes()), &iv, event.payload());
        let mk = mac_key(&master, &mut self.ops);
        let mut mac_input = iv.to_vec();
        mac_input.extend_from_slice(&ciphertext);
        self.ops.add_kh(1);
        let mac = psguard_crypto::kh(mk.as_bytes(), &mac_input);

        // Strip the plaintext topic; brokers see only the tag.
        let mut routed = Event::builder("")
            .id(event.id())
            .publisher(event.publisher());
        for (name, value) in event.attrs() {
            routed = routed.attr(name.clone(), value.clone());
        }
        let routed = routed.payload(ciphertext).build();

        Ok(SecureEvent {
            tag: RoutableTag::new(&credential.token, &mut self.rng),
            event: routed,
            iv,
            epoch,
            mac,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_keys::{EpochId, Kdc, TopicScope};
    use psguard_model::IntRange;

    fn publisher_with_credential() -> (Publisher, Kdc) {
        let schema = Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .build();
        let kdc = Kdc::from_seed(b"seed");
        let mut p = Publisher::new("P", schema);
        let mut ops = OpCounter::new();
        p.install_credential(PublisherCredential {
            topic: "w".into(),
            epoch: 0,
            topic_key: kdc.topic_key("w", EpochId(0), &TopicScope::Shared, &mut ops),
            token: kdc.routing_token("w"),
        });
        (p, kdc)
    }

    #[test]
    fn publish_encrypts_and_strips_topic() {
        let (mut p, kdc) = publisher_with_credential();
        let e = Event::builder("w")
            .attr("age", 30i64)
            .payload(b"top secret".to_vec())
            .build();
        let secure = p.publish(&e, 0).unwrap();
        assert_eq!(secure.event.topic(), "");
        assert_ne!(secure.event.payload(), b"top secret");
        assert!(secure.event.payload().len() >= 16);
        // Tag matches the topic token.
        assert!(secure.tag.matches(&kdc.routing_token("w")));
        // Routable attribute remains visible for in-network matching.
        assert_eq!(secure.event.attr("age").and_then(|v| v.as_int()), Some(30));
    }

    #[test]
    fn missing_credential_is_an_error() {
        let (mut p, _) = publisher_with_credential();
        let e = Event::builder("other").payload(vec![1]).build();
        assert!(matches!(
            p.publish(&e, 0),
            Err(PublishError::UnknownTopic { .. })
        ));
        // Also wrong epoch for a known topic.
        let e = Event::builder("w").payload(vec![1]).build();
        assert!(matches!(
            p.publish(&e, 7),
            Err(PublishError::UnknownTopic { .. })
        ));
    }

    #[test]
    fn schema_violation_is_an_error() {
        let (mut p, _) = publisher_with_credential();
        let e = Event::builder("w")
            .attr("age", "not numeric")
            .payload(vec![1])
            .build();
        assert!(matches!(p.publish(&e, 0), Err(PublishError::EventKey(_))));
    }

    #[test]
    fn distinct_events_get_distinct_ivs_and_nonces() {
        let (mut p, _) = publisher_with_credential();
        let e = Event::builder("w")
            .attr("age", 1i64)
            .payload(vec![7])
            .build();
        let a = p.publish(&e, 0).unwrap();
        let b = p.publish(&e, 0).unwrap();
        assert_ne!(a.iv, b.iv);
        assert_ne!(a.tag.nonce, b.tag.nonce);
        assert_ne!(a.tag.tag, b.tag.tag);
    }

    #[test]
    fn publisher_cache_kicks_in_on_locality() {
        let (mut p, _) = publisher_with_credential();
        for v in [100i64, 101, 100, 102, 101] {
            let e = Event::builder("w").attr("age", v).payload(vec![1]).build();
            p.publish(&e, 0).unwrap();
        }
        let stats = p.cache_stats();
        assert!(stats.hits + stats.partial_hits > 0, "{stats:?}");
        assert!(stats.hash_ops_saved > 0);
    }

    #[test]
    fn cached_and_uncached_publishes_agree() {
        // The same event published twice (cache cold, then warm) must
        // produce ciphertexts that decrypt under the same grant.
        use crate::{PsGuard, PsGuardConfig};
        let schema = Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .build();
        let ps = PsGuard::new(b"seed2", schema, PsGuardConfig::default());
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber(&mut sub, &psguard_model::Filter::for_topic("w"), 0)
            .unwrap();
        let e = Event::builder("w")
            .attr("age", 77i64)
            .payload(b"x".to_vec())
            .build();
        let first = publisher.publish(&e, 0).unwrap();
        let second = publisher.publish(&e, 0).unwrap();
        assert_eq!(sub.decrypt(&first).unwrap().payload(), b"x");
        assert_eq!(sub.decrypt(&second).unwrap().payload(), b"x");
    }

    #[test]
    fn ops_accumulate() {
        let (mut p, _) = publisher_with_credential();
        let e = Event::builder("w")
            .attr("age", 1i64)
            .payload(vec![7])
            .build();
        p.publish(&e, 0).unwrap();
        assert!(p.ops().total() > 0);
    }
}
