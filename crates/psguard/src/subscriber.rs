//! The subscriber: holds grants (authorization keys), derives event keys
//! and decrypts matching events — with the §3.2.3 key cache.

use psguard_crypto::DeriveKey;
use psguard_crypto::{cbc_decrypt, Aes128, Token};
use psguard_keys::{
    combine_master, event_key_addresses, mac_key, EventKeyAddress, Grant, KeyCache, KeyScope,
    OpCounter, Schema,
};
use psguard_model::{Event, Filter};
use psguard_routing::{SecureEvent, SecureFilter};

use crate::error::DecryptError;

/// One installed subscription: routing token, original filter, grant.
#[derive(Debug, Clone)]
struct Installed {
    token: Token,
    filter: Filter,
    grant: Grant,
}

/// A subscribing principal.
///
/// Obtain via [`crate::PsGuard::subscriber`]; install subscriptions with
/// [`crate::PsGuard::authorize_subscriber`].
#[derive(Debug)]
pub struct Subscriber {
    name: String,
    schema: Schema,
    subscriptions: Vec<Installed>,
    cache: KeyCache,
    ops: OpCounter,
}

impl Subscriber {
    pub(crate) fn new(name: impl Into<String>, schema: Schema, cache_bytes: usize) -> Self {
        Subscriber {
            name: name.into(),
            schema,
            subscriptions: Vec::new(),
            cache: KeyCache::new(cache_bytes),
            ops: OpCounter::new(),
        }
    }

    /// The subscriber's principal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs a grant (called by the service facade).
    pub fn install_grant(&mut self, token: Token, filter: Filter, grant: Grant) {
        self.subscriptions.push(Installed {
            token,
            filter,
            grant,
        });
    }

    /// Number of installed subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Total authorization keys held — the Figure 3 quantity.
    pub fn key_count(&self) -> usize {
        self.subscriptions.iter().map(|s| s.grant.key_count()).sum()
    }

    /// Cumulative key-derivation cost since creation.
    pub fn ops(&self) -> OpCounter {
        self.ops
    }

    /// Key-cache statistics (hits, partial hits, saved hash ops).
    pub fn cache_stats(&self) -> psguard_keys::CacheStats {
        self.cache.stats()
    }

    /// The secure filters this subscriber registers with its broker:
    /// token plus in-network constraints.
    pub fn secure_filters(&self) -> Vec<SecureFilter> {
        self.subscriptions
            .iter()
            .map(|s| SecureFilter::from_filter(s.token, &s.filter))
            .collect()
    }

    /// Derives one address' key part from a grant, preferring the key
    /// cache for numeric parts.
    fn derive_part(
        cache: &mut KeyCache,
        schema: &Schema,
        grant: &Grant,
        addr: &EventKeyAddress,
        ops: &mut OpCounter,
    ) -> Option<DeriveKey> {
        // Numeric parts go through the cache when possible.
        if let EventKeyAddress::Numeric { attr, ktid } = addr {
            if let Some(cg) = grant.constraints.iter().find(|c| &c.attr == attr) {
                for auth in &cg.alternatives {
                    if let KeyScope::Numeric { .. } = auth.scope {
                        if let Some(k) = cache.derive_numeric_cached(auth, ktid, ops) {
                            return Some(k);
                        }
                    }
                }
            }
        }
        // Everything else (and numeric misses like topic-wide grants) goes
        // through the grant directly.
        grant.event_key_part(schema, addr, ops)
    }

    /// Attempts to decrypt a received secure event.
    ///
    /// Returns the event with its plaintext payload restored.
    ///
    /// # Errors
    ///
    /// See [`DecryptError`] — notably [`DecryptError::NotAuthorized`] when
    /// the event does not match any granted filter, and
    /// [`DecryptError::EpochMismatch`] for stale grants (lazy revocation).
    pub fn decrypt(&mut self, secure: &SecureEvent) -> Result<Event, DecryptError> {
        // Which subscription does this event belong to?
        let matching: Vec<usize> = self
            .subscriptions
            .iter()
            .enumerate()
            .filter(|(_, s)| secure.tag.matches(&s.token))
            .map(|(i, _)| i)
            .collect();
        if matching.is_empty() {
            return Err(DecryptError::NoMatchingSubscription);
        }

        let addrs = event_key_addresses(&self.schema, &secure.event)?;

        let mut saw_epoch_mismatch = None;
        let mut saw_mac_failure = false;
        for idx in matching {
            let (grant_epoch, maybe_key) = {
                let sub = &self.subscriptions[idx];
                if sub.grant.epoch.0 != secure.epoch {
                    (sub.grant.epoch.0, None)
                } else {
                    let grant = sub.grant.clone();
                    let mut parts = Vec::with_capacity(addrs.len());
                    let mut ok = true;
                    for addr in &addrs {
                        match Self::derive_part(
                            &mut self.cache,
                            &self.schema,
                            &grant,
                            addr,
                            &mut self.ops,
                        ) {
                            Some(p) => parts.push(p),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        (
                            sub.grant.epoch.0,
                            Some(combine_master(&parts, &mut self.ops)),
                        )
                    } else {
                        (sub.grant.epoch.0, None)
                    }
                }
            };
            if self.subscriptions[idx].grant.epoch.0 != secure.epoch {
                saw_epoch_mismatch = Some(grant_epoch);
                continue;
            }
            if let Some(master) = maybe_key {
                // Verify the encrypt-then-MAC tag before decrypting: a
                // wrong derivation (or tampering) is rejected here rather
                // than risking a CBC padding false-positive.
                let mk = mac_key(&master, &mut self.ops);
                let mut mac_input = secure.iv.to_vec();
                mac_input.extend_from_slice(secure.event.payload());
                self.ops.add_kh(1);
                let expect = psguard_crypto::kh(mk.as_bytes(), &mac_input);
                if !psguard_crypto::ct_eq(&expect, &secure.mac) {
                    saw_mac_failure = true;
                    continue; // try other matching subscriptions, if any
                }
                let key = master.content_key();
                let plaintext = cbc_decrypt(
                    &Aes128::new(key.as_bytes()),
                    &secure.iv,
                    secure.event.payload(),
                )?;
                let mut restored = secure.event.clone();
                restored.replace_payload(plaintext);
                return Ok(restored);
            }
        }

        if saw_mac_failure {
            return Err(DecryptError::BadMac);
        }
        match saw_epoch_mismatch {
            Some(grant_epoch) => Err(DecryptError::EpochMismatch {
                event_epoch: secure.epoch,
                grant_epoch,
            }),
            None => Err(DecryptError::NotAuthorized),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PsGuard, PsGuardConfig};
    use psguard_model::{Constraint, IntRange, Op};

    fn deployment(cache_bytes: usize) -> PsGuard {
        let schema = psguard_keys::Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .build();
        PsGuard::new(
            b"seed",
            schema,
            PsGuardConfig {
                key_cache_bytes: cache_bytes,
                ..Default::default()
            },
        )
    }

    #[test]
    fn no_matching_token_detected() {
        let ps = deployment(0);
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber(&mut sub, &Filter::for_topic("other"), 0)
            .unwrap();
        let e = Event::builder("w").payload(vec![1]).build();
        let secure = publisher.publish(&e, 0).unwrap();
        assert_eq!(
            sub.decrypt(&secure).unwrap_err(),
            DecryptError::NoMatchingSubscription
        );
    }

    #[test]
    fn key_cache_reduces_cost_on_temporal_locality() {
        let ps = deployment(64 * 1024);
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut sub = ps.subscriber("S");
        let f = Filter::for_topic("w").with(Constraint::new(
            "age",
            Op::InRange(IntRange::new(0, 255).unwrap()),
        ));
        ps.authorize_subscriber(&mut sub, &f, 0).unwrap();

        // Stock-quote-like stream: consecutive values nearby.
        for v in [100i64, 101, 100, 102, 101, 100] {
            let e = Event::builder("w")
                .attr("age", v)
                .payload(b"q".to_vec())
                .build();
            let secure = publisher.publish(&e, 0).unwrap();
            sub.decrypt(&secure).unwrap();
        }
        let stats = sub.cache_stats();
        assert!(stats.hits + stats.partial_hits > 0, "{stats:?}");
        assert!(stats.hash_ops_saved > 0);
    }

    #[test]
    fn key_count_reports_grant_sizes() {
        let ps = deployment(0);
        let mut sub = ps.subscriber("S");
        let f = Filter::for_topic("w").with(Constraint::new(
            "age",
            Op::InRange(IntRange::new(8, 19).unwrap()),
        ));
        ps.authorize_subscriber(&mut sub, &f, 0).unwrap();
        assert_eq!(sub.subscription_count(), 1);
        assert_eq!(sub.key_count(), 2); // (8,15) + (16,19)
    }

    #[test]
    fn secure_filters_expose_constraints() {
        let ps = deployment(0);
        let mut sub = ps.subscriber("S");
        let f = Filter::for_topic("w").with(Constraint::new("age", Op::Ge(10)));
        ps.authorize_subscriber(&mut sub, &f, 0).unwrap();
        let sf = sub.secure_filters();
        assert_eq!(sf.len(), 1);
        assert_eq!(sf[0].constraints.len(), 1);
        assert_eq!(sf[0].token, ps.routing_token("w"));
    }
}
