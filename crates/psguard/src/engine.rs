//! The secure overlay engine: the Siena performance engine instantiated
//! with PSGuard's tokenized filters, plus measured crypto costs.
//!
//! Figures 9–11 compare baseline Siena against PSGuard under identical
//! overlay conditions; the only difference is the per-message service
//! time. [`CryptoCosts::measure`] times the real encrypt / token-match /
//! derive+decrypt code on the host, and [`secure_cost_model`] folds those
//! microseconds into the engine's [`CostModel`].

use std::time::Instant;

use psguard_model::Event;
use psguard_routing::{SecureEvent, SecureFilter};
use psguard_siena::{CostModel, Engine, EngineConfig, RunReport};

use crate::error::MeasureError;
use crate::publisher::Publisher;
use crate::service::PsGuard;
use crate::subscriber::Subscriber;

/// Measured cryptographic costs in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoCosts {
    /// Publisher-side: key derivation + payload encryption + tagging.
    pub publish_us: u64,
    /// Subscriber-side: key derivation + payload decryption.
    pub decrypt_us: u64,
    /// Broker-side: one PRF evaluation per token match test.
    pub token_match_us: u64,
}

impl CryptoCosts {
    /// Times the real code paths over `sample_events` (which must be
    /// publishable and decryptable in the given deployment at epoch 0).
    ///
    /// # Errors
    ///
    /// Returns [`MeasureError`] when the samples are empty, fail to
    /// publish or decrypt, or do not all match their own topic token —
    /// measurement requires a working pipeline.
    pub fn measure(
        ps: &PsGuard,
        publisher: &mut Publisher,
        subscriber: &mut Subscriber,
        sample_events: &[Event],
    ) -> Result<Self, MeasureError> {
        if sample_events.is_empty() {
            return Err(MeasureError::NoSamples);
        }
        let reps = (200 / sample_events.len()).max(1);

        let start = Instant::now();
        let mut secures = Vec::new();
        for _ in 0..reps {
            for e in sample_events {
                secures.push(publisher.publish(e, 0)?);
            }
        }
        let publish_us = (start.elapsed().as_micros() as u64 / secures.len() as u64).max(1);

        let token = ps.routing_token(sample_events[0].topic());
        let start = Instant::now();
        let mut matched = 0u64;
        for s in &secures {
            if s.tag.matches(&token) {
                matched += 1;
            }
        }
        let token_match_us = (start.elapsed().as_micros() as u64 / secures.len() as u64).max(1);
        if matched != secures.len() as u64 {
            return Err(MeasureError::SampleTopicMismatch {
                matched,
                total: secures.len() as u64,
            });
        }

        let start = Instant::now();
        for s in &secures {
            subscriber.decrypt(s)?;
        }
        let decrypt_us = (start.elapsed().as_micros() as u64 / secures.len() as u64).max(1);

        Ok(CryptoCosts {
            publish_us,
            decrypt_us,
            token_match_us,
        })
    }
}

/// Builds the secure cost model: the plain Siena baseline costs plus the
/// measured crypto overheads.
pub fn secure_cost_model(costs: &CryptoCosts) -> CostModel {
    let plain = CostModel::plain();
    CostModel {
        publisher_us: plain.publisher_us + costs.publish_us,
        broker_match_us: plain.broker_match_us + costs.token_match_us,
        broker_forward_us: plain.broker_forward_us,
        subscriber_us: plain.subscriber_us + costs.decrypt_us,
    }
}

/// The overlay engine carrying PSGuard's secure envelopes.
///
/// A thin wrapper over [`Engine`]`<`[`SecureFilter`]`>` so benches and
/// examples don't need the generic type.
pub struct SecureEngine {
    inner: Engine<SecureFilter>,
}

impl SecureEngine {
    /// Builds the overlay (see [`EngineConfig`]).
    pub fn new(config: EngineConfig) -> Self {
        SecureEngine {
            inner: Engine::new(config),
        }
    }

    /// Registers a subscriber's secure filter at its leaf broker.
    pub fn subscribe(&mut self, client: u32, filter: SecureFilter) {
        self.inner.subscribe(client, filter);
    }

    /// Runs a workload of secure events at a fixed rate (deterministic
    /// arrivals; capacity measurements).
    pub fn run(
        &mut self,
        events: &[SecureEvent],
        rate_eps: f64,
        duration_s: f64,
        cost: &CostModel,
    ) -> RunReport {
        self.inner.run(events, rate_eps, duration_s, cost)
    }

    /// Runs with Poisson arrivals (latency measurements).
    pub fn run_poisson(
        &mut self,
        events: &[SecureEvent],
        rate_eps: f64,
        duration_s: f64,
        cost: &CostModel,
    ) -> RunReport {
        self.inner.run_poisson(events, rate_eps, duration_s, cost)
    }

    /// Saturation-throughput search (Figure 9 methodology).
    pub fn find_max_throughput(
        &mut self,
        events: &[SecureEvent],
        duration_s: f64,
        cost: &CostModel,
    ) -> f64 {
        self.inner.find_max_throughput(events, duration_s, cost)
    }

    /// Per-broker subscription table sizes (covering diagnostics).
    pub fn table_sizes(&self) -> Vec<usize> {
        self.inner.table_sizes()
    }
}

impl std::fmt::Debug for SecureEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureEngine")
            .field("tables", &self.inner.table_sizes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PsGuardConfig;
    use psguard_keys::Schema;
    use psguard_model::{Constraint, Filter, IntRange, Op};

    fn deployment() -> PsGuard {
        let schema = Schema::builder()
            .numeric("value", IntRange::new(0, 255).unwrap(), 4)
            .unwrap()
            .build();
        PsGuard::new(b"seed", schema, PsGuardConfig::default())
    }

    #[test]
    fn measured_costs_are_positive() {
        let ps = deployment();
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber(&mut sub, &Filter::for_topic("w"), 0)
            .unwrap();
        let events: Vec<Event> = (0..8)
            .map(|i| {
                Event::builder("w")
                    .attr("value", (i * 16) as i64)
                    .payload(vec![0u8; 256])
                    .build()
            })
            .collect();
        let costs =
            CryptoCosts::measure(&ps, &mut publisher, &mut sub, &events).expect("working pipeline");
        assert!(costs.publish_us >= 1);
        assert!(costs.decrypt_us >= 1);
        assert!(costs.token_match_us >= 1);
        let model = secure_cost_model(&costs);
        assert!(model.publisher_us > CostModel::plain().publisher_us);
    }

    #[test]
    fn measurement_failures_are_typed() {
        let ps = deployment();
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber(&mut sub, &Filter::for_topic("w"), 0)
            .unwrap();
        assert_eq!(
            CryptoCosts::measure(&ps, &mut publisher, &mut sub, &[]),
            Err(crate::MeasureError::NoSamples)
        );
        // A sample on an unauthorized topic cannot be published.
        let stray = vec![Event::builder("other").payload(vec![1]).build()];
        assert!(matches!(
            CryptoCosts::measure(&ps, &mut publisher, &mut sub, &stray),
            Err(crate::MeasureError::Publish(_))
        ));
    }

    #[test]
    fn secure_overlay_delivers_encrypted_events() {
        let ps = deployment();
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);

        let mut engine = SecureEngine::new(EngineConfig {
            broker_nodes: 6,
            subscribers: 4,
            seed: 3,
        });
        // All four subscribers want values ≥ 0 (everything).
        let mut subs = Vec::new();
        for c in 0..4u32 {
            let mut s = ps.subscriber(format!("s{c}"));
            let f = Filter::for_topic("w").with(Constraint::new("value", Op::Ge(0)));
            ps.authorize_subscriber(&mut s, &f, 0).unwrap();
            engine.subscribe(c, s.secure_filters().remove(0));
            subs.push(s);
        }

        let events: Vec<SecureEvent> = (0..16)
            .map(|i| {
                let e = Event::builder("w")
                    .attr("value", (i % 256) as i64)
                    .payload(vec![9u8; 64])
                    .build();
                publisher.publish(&e, 0).unwrap()
            })
            .collect();

        let report = engine.run(&events, 20.0, 1.0, &CostModel::plain());
        assert!(report.published > 5);
        assert_eq!(report.delivered, report.published * 4);
        // And subscribers can decrypt what the overlay delivered.
        assert!(subs[0].decrypt(&events[0]).is_ok());
    }

    #[test]
    fn selective_secure_filters_respected_in_network() {
        let ps = deployment();
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut engine = SecureEngine::new(EngineConfig {
            broker_nodes: 2,
            subscribers: 2,
            seed: 5,
        });
        // Subscriber 0 wants value ≥ 200; subscriber 1 wants everything.
        let mut s0 = ps.subscriber("s0");
        ps.authorize_subscriber(
            &mut s0,
            &Filter::for_topic("w").with(Constraint::new("value", Op::Ge(200))),
            0,
        )
        .unwrap();
        engine.subscribe(0, s0.secure_filters().remove(0));
        let mut s1 = ps.subscriber("s1");
        ps.authorize_subscriber(&mut s1, &Filter::for_topic("w"), 0)
            .unwrap();
        engine.subscribe(1, s1.secure_filters().remove(0));

        let events: Vec<SecureEvent> = [10i64, 250]
            .iter()
            .map(|&v| {
                let e = Event::builder("w")
                    .attr("value", v)
                    .payload(vec![1])
                    .build();
                publisher.publish(&e, 0).unwrap()
            })
            .collect();
        let report = engine.run(&events, 2.0, 1.0, &CostModel::plain());
        // s1 gets every event; s0 only the value-250 events (odd cycle
        // positions).
        let n = report.published;
        assert_eq!(report.delivered, n + n / 2);
    }
}
