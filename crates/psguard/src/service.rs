//! The PSGuard service: a thin deployment facade bundling the stateless
//! KDC, the topic schema, and the epoch schedule.

use psguard_crypto::Token;
use psguard_keys::{EpochId, EpochSchedule, Kdc, OpCounter, Schema, TopicScope};

use crate::publisher::{Publisher, PublisherCredential};
use crate::subscriber::Subscriber;

/// Deployment-wide configuration.
#[derive(Debug, Clone)]
pub struct PsGuardConfig {
    /// Epoch length in milliseconds (default: one hour).
    pub epoch_len_ms: u64,
    /// Whether topics use per-publisher keys (`K_P(w)`) instead of one
    /// shared key per topic.
    pub per_publisher_keys: bool,
    /// Subscriber key-cache capacity in bytes (0 disables caching).
    pub key_cache_bytes: usize,
}

impl Default for PsGuardConfig {
    fn default() -> Self {
        PsGuardConfig {
            epoch_len_ms: 3_600_000,
            per_publisher_keys: false,
            key_cache_bytes: 64 * 1024,
        }
    }
}

/// The deployment facade.
///
/// # Example
///
/// ```
/// use psguard::{PsGuard, PsGuardConfig};
/// use psguard_keys::Schema;
/// use psguard_model::{Constraint, Event, Filter, IntRange, Op};
///
/// let schema = Schema::builder()
///     .numeric("age", IntRange::new(0, 255).unwrap(), 1)?
///     .build();
/// let ps = PsGuard::new(b"master seed", schema, PsGuardConfig::default());
///
/// let mut publisher = ps.publisher("hospital");
/// ps.authorize_publisher(&mut publisher, "cancerTrail", 0);
///
/// let mut subscriber = ps.subscriber("alice");
/// let filter = Filter::for_topic("cancerTrail")
///     .with(Constraint::new("age", Op::Ge(16)))
///     .with(Constraint::new("age", Op::Le(31)));
/// ps.authorize_subscriber(&mut subscriber, &filter, 0)?;
///
/// let event = Event::builder("cancerTrail")
///     .attr("age", 22i64)
///     .payload(b"record".to_vec())
///     .build();
/// let secure = publisher.publish(&event, 0)?;
/// let plain = subscriber.decrypt(&secure)?;
/// assert_eq!(plain.payload(), b"record");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PsGuard {
    kdc: Kdc,
    schema: Schema,
    schedule: EpochSchedule,
    config: PsGuardConfig,
}

impl PsGuard {
    /// Creates a deployment from a master seed, a topic schema, and
    /// configuration.
    pub fn new(master_seed: &[u8], schema: Schema, config: PsGuardConfig) -> Self {
        PsGuard {
            kdc: Kdc::from_seed(master_seed),
            schema,
            schedule: EpochSchedule::new(config.epoch_len_ms),
            config,
        }
    }

    /// The attribute schema shared by all parties.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The epoch schedule.
    pub fn schedule(&self) -> &EpochSchedule {
        &self.schedule
    }

    /// Direct KDC access (KDC-side tooling; not part of the client API).
    pub fn kdc(&self) -> &Kdc {
        &self.kdc
    }

    /// The epoch holding wall-clock instant `now_ms` for a topic.
    pub fn epoch_at(&self, topic: &str, now_ms: u64) -> EpochId {
        self.schedule.epoch_at(topic, now_ms)
    }

    /// The routing token `T(w)` for a topic (handed to subscribers along
    /// with their grants; publishers receive it inside their credential).
    pub fn routing_token(&self, topic: &str) -> Token {
        self.kdc.routing_token(topic)
    }

    fn scope_for(&self, publisher: &str) -> TopicScope {
        if self.config.per_publisher_keys {
            TopicScope::Publisher(publisher.to_owned())
        } else {
            TopicScope::Shared
        }
    }

    /// Creates an (unauthorized) publisher handle.
    pub fn publisher(&self, name: impl Into<String>) -> Publisher {
        Publisher::new(name, self.schema.clone())
    }

    /// Issues `publisher` the credential (topic key + routing token) to
    /// publish on `topic` during `epoch`.
    pub fn authorize_publisher(&self, publisher: &mut Publisher, topic: &str, epoch: u64) {
        let mut ops = OpCounter::new();
        let scope = self.scope_for(publisher.name());
        let key = self.kdc.topic_key(topic, EpochId(epoch), &scope, &mut ops);
        publisher.install_credential(PublisherCredential {
            topic: topic.to_owned(),
            epoch,
            topic_key: key,
            token: self.kdc.routing_token(topic),
        });
    }

    /// Creates an (unsubscribed) subscriber handle.
    pub fn subscriber(&self, name: impl Into<String>) -> Subscriber {
        Subscriber::new(name, self.schema.clone(), self.config.key_cache_bytes)
    }

    /// Processes a subscription: obtains a grant from the KDC and installs
    /// it (plus the routing token) into the subscriber.
    ///
    /// When per-publisher keys are active the grant must name the
    /// publisher via [`PsGuard::authorize_subscriber_for_publisher`].
    ///
    /// # Errors
    ///
    /// Propagates KDC grant errors.
    pub fn authorize_subscriber(
        &self,
        subscriber: &mut Subscriber,
        filter: &psguard_model::Filter,
        epoch: u64,
    ) -> Result<OpCounter, crate::error::SubscribeError> {
        self.authorize_with_scope(subscriber, filter, epoch, TopicScope::Shared)
    }

    /// Processes a disjunctive subscription (the ∨ of the paper's ∧/∨
    /// filter algebra): one grant per disjunct. An event decrypts when
    /// *any* granted disjunct covers it.
    ///
    /// # Errors
    ///
    /// Fails atomically on the first ungrantable disjunct (no grants are
    /// installed in that case).
    pub fn authorize_subscription(
        &self,
        subscriber: &mut Subscriber,
        subscription: &psguard_model::Subscription,
        epoch: u64,
    ) -> Result<OpCounter, crate::error::SubscribeError> {
        // Validate every disjunct first so failure leaves no partial state.
        let mut ops = OpCounter::new();
        let mut staged = Vec::with_capacity(subscription.filters().len());
        for filter in subscription.filters() {
            let grant = self.kdc.grant(
                &self.schema,
                filter,
                EpochId(epoch),
                &TopicScope::Shared,
                &mut ops,
            )?;
            // A successful grant implies the filter names a topic; surface
            // the same error the KDC would if that ever stops holding.
            let topic = filter.topic().ok_or(psguard_keys::KdcError::MissingTopic)?;
            staged.push((self.kdc.routing_token(topic), filter.clone(), grant));
        }
        for (token, filter, grant) in staged {
            subscriber.install_grant(token, filter, grant);
        }
        Ok(ops)
    }

    /// Like [`PsGuard::authorize_subscriber`], but against one publisher's
    /// key lineage (`K_P(w)`).
    ///
    /// # Errors
    ///
    /// Propagates KDC grant errors.
    pub fn authorize_subscriber_for_publisher(
        &self,
        subscriber: &mut Subscriber,
        filter: &psguard_model::Filter,
        epoch: u64,
        publisher: &str,
    ) -> Result<OpCounter, crate::error::SubscribeError> {
        self.authorize_with_scope(
            subscriber,
            filter,
            epoch,
            TopicScope::Publisher(publisher.to_owned()),
        )
    }

    fn authorize_with_scope(
        &self,
        subscriber: &mut Subscriber,
        filter: &psguard_model::Filter,
        epoch: u64,
        scope: TopicScope,
    ) -> Result<OpCounter, crate::error::SubscribeError> {
        let mut ops = OpCounter::new();
        let grant = self
            .kdc
            .grant(&self.schema, filter, EpochId(epoch), &scope, &mut ops)?;
        let topic = filter.topic().ok_or(psguard_keys::KdcError::MissingTopic)?;
        let token = self.kdc.routing_token(topic);
        subscriber.install_grant(token, filter.clone(), grant);
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Constraint, Event, Filter, IntRange, Op};

    fn deployment() -> PsGuard {
        let schema = Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .build();
        PsGuard::new(b"seed", schema, PsGuardConfig::default())
    }

    #[test]
    fn end_to_end_roundtrip() {
        let ps = deployment();
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut sub = ps.subscriber("S");
        let f = Filter::for_topic("w").with(Constraint::new("age", Op::Ge(16)));
        ps.authorize_subscriber(&mut sub, &f, 0).unwrap();

        let e = Event::builder("w")
            .attr("age", 40i64)
            .payload(b"secret".to_vec())
            .build();
        let secure = publisher.publish(&e, 0).unwrap();
        assert_ne!(secure.event.payload(), b"secret");
        let plain = sub.decrypt(&secure).unwrap();
        assert_eq!(plain.payload(), b"secret");
    }

    #[test]
    fn unauthorized_range_rejected() {
        let ps = deployment();
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let mut sub = ps.subscriber("S");
        let f = Filter::for_topic("w").with(Constraint::new("age", Op::Ge(100)));
        ps.authorize_subscriber(&mut sub, &f, 0).unwrap();

        let e = Event::builder("w")
            .attr("age", 40i64)
            .payload(b"secret".to_vec())
            .build();
        let secure = publisher.publish(&e, 0).unwrap();
        assert_eq!(
            sub.decrypt(&secure).unwrap_err(),
            crate::error::DecryptError::NotAuthorized
        );
    }

    #[test]
    fn stale_epoch_rejected() {
        let ps = deployment();
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 1);
        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber(&mut sub, &Filter::for_topic("w"), 0)
            .unwrap();
        let e = Event::builder("w").payload(b"x".to_vec()).build();
        let secure = publisher.publish(&e, 1).unwrap();
        assert!(matches!(
            sub.decrypt(&secure).unwrap_err(),
            crate::error::DecryptError::EpochMismatch { .. }
        ));
    }

    #[test]
    fn per_publisher_isolation() {
        let schema = Schema::new();
        let ps = PsGuard::new(
            b"seed",
            schema,
            PsGuardConfig {
                per_publisher_keys: true,
                ..Default::default()
            },
        );
        let mut pa = ps.publisher("A");
        let mut pb = ps.publisher("B");
        ps.authorize_publisher(&mut pa, "w", 0);
        ps.authorize_publisher(&mut pb, "w", 0);

        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber_for_publisher(&mut sub, &Filter::for_topic("w"), 0, "A")
            .unwrap();

        let e = Event::builder("w").payload(b"x".to_vec()).build();
        let from_a = pa.publish(&e, 0).unwrap();
        let from_b = pb.publish(&e, 0).unwrap();
        assert!(sub.decrypt(&from_a).is_ok());
        // Subscriber of A cannot read B's events even on the same topic.
        assert!(sub.decrypt(&from_b).is_err());
    }

    #[test]
    fn disjunctive_subscription_grants_each_branch() {
        use psguard_model::Subscription;
        let ps = deployment();
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "stocks", 0);
        ps.authorize_publisher(&mut publisher, "weather", 0);

        let mut sub = ps.subscriber("S");
        let subscription = Subscription::new("S")
            .or(Filter::for_topic("stocks").with(Constraint::new("age", Op::Ge(100))))
            .or(Filter::for_topic("weather"));
        ps.authorize_subscription(&mut sub, &subscription, 0)
            .unwrap();
        assert_eq!(sub.subscription_count(), 2);

        // A weather event decrypts via the second branch.
        let w = Event::builder("weather").payload(b"sunny".to_vec()).build();
        let secure = publisher.publish(&w, 0).unwrap();
        assert_eq!(sub.decrypt(&secure).unwrap().payload(), b"sunny");

        // A low stock value matches neither branch.
        let s = Event::builder("stocks")
            .attr("age", 5i64)
            .payload(b"x".to_vec())
            .build();
        let secure = publisher.publish(&s, 0).unwrap();
        assert!(sub.decrypt(&secure).is_err());

        // A high stock value decrypts via the first branch.
        let s = Event::builder("stocks")
            .attr("age", 200i64)
            .payload(b"y".to_vec())
            .build();
        let secure = publisher.publish(&s, 0).unwrap();
        assert_eq!(sub.decrypt(&secure).unwrap().payload(), b"y");
    }

    #[test]
    fn disjunctive_subscription_fails_atomically() {
        use psguard_model::Subscription;
        let ps = deployment();
        let mut sub = ps.subscriber("S");
        let subscription = Subscription::new("S")
            .or(Filter::for_topic("ok"))
            .or(Filter::any()); // wildcard: ungrantable
        assert!(ps
            .authorize_subscription(&mut sub, &subscription, 0)
            .is_err());
        assert_eq!(sub.subscription_count(), 0, "no partial grants");
    }

    #[test]
    fn epoch_at_delegates_to_schedule() {
        let ps = deployment();
        let e0 = ps.epoch_at("w", 0);
        let later = ps.epoch_at("w", 100 * 3_600_000);
        assert!(later > e0);
    }
}
