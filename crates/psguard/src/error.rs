//! Error types of the PSGuard facade.

use psguard_crypto::CipherError;
use psguard_keys::{EventKeyError, KdcError};

/// Errors raised while publishing (encrypting) an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// The publisher holds no credential for the event's topic.
    UnknownTopic {
        /// The topic name.
        topic: String,
    },
    /// The event violates the topic schema.
    EventKey(EventKeyError),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::UnknownTopic { topic } => {
                write!(f, "no publishing credential for topic {topic:?}")
            }
            PublishError::EventKey(e) => write!(f, "event key derivation failed: {e}"),
        }
    }
}

impl std::error::Error for PublishError {}

impl From<EventKeyError> for PublishError {
    fn from(e: EventKeyError) -> Self {
        PublishError::EventKey(e)
    }
}

/// Errors raised while subscribing (requesting a grant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeError {
    /// The KDC rejected the grant request.
    Kdc(KdcError),
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::Kdc(e) => write!(f, "grant refused: {e}"),
        }
    }
}

impl std::error::Error for SubscribeError {}

impl From<KdcError> for SubscribeError {
    fn from(e: KdcError) -> Self {
        SubscribeError::Kdc(e)
    }
}

/// Errors raised while measuring crypto costs on the host
/// ([`crate::CryptoCosts::measure`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureError {
    /// No sample events were supplied.
    NoSamples,
    /// A sample event failed to publish — the deployment cannot encrypt
    /// the workload it is meant to be timed on.
    Publish(PublishError),
    /// A sample envelope failed to decrypt under the given subscriber.
    Decrypt(DecryptError),
    /// Some sample envelopes did not match their own topic token —
    /// the samples span several topics or the token is stale.
    SampleTopicMismatch {
        /// Envelopes that matched the first sample's topic token.
        matched: u64,
        /// Envelopes timed in total.
        total: u64,
    },
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::NoSamples => write!(f, "need sample events to measure"),
            MeasureError::Publish(e) => write!(f, "sample failed to publish: {e}"),
            MeasureError::Decrypt(e) => write!(f, "sample failed to decrypt: {e}"),
            MeasureError::SampleTopicMismatch { matched, total } => write!(
                f,
                "only {matched}/{total} sample envelopes match the first sample's topic"
            ),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeasureError::Publish(e) => Some(e),
            MeasureError::Decrypt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PublishError> for MeasureError {
    fn from(e: PublishError) -> Self {
        MeasureError::Publish(e)
    }
}

impl From<DecryptError> for MeasureError {
    fn from(e: DecryptError) -> Self {
        MeasureError::Decrypt(e)
    }
}

/// Errors raised while decrypting a received event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecryptError {
    /// No active subscription token matched the event's routable tag.
    NoMatchingSubscription,
    /// A token matched, but the grant's epoch differs from the event's.
    EpochMismatch {
        /// Epoch the event was encrypted under.
        event_epoch: u64,
        /// Epoch of the (stale) grant.
        grant_epoch: u64,
    },
    /// The event violates the topic schema (malformed attributes).
    EventKey(EventKeyError),
    /// The grant cannot derive the event key — the event does not match
    /// the authorized filter.
    NotAuthorized,
    /// Payload decryption failed (corrupt ciphertext or wrong key).
    Cipher(CipherError),
    /// The integrity tag did not verify under any matching grant: the
    /// ciphertext was tampered with, or the grant's key lineage differs
    /// (e.g. per-publisher isolation).
    BadMac,
}

impl std::fmt::Display for DecryptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecryptError::NoMatchingSubscription => {
                write!(f, "no subscription token matches the event tag")
            }
            DecryptError::EpochMismatch {
                event_epoch,
                grant_epoch,
            } => write!(
                f,
                "event epoch {event_epoch} does not match grant epoch {grant_epoch}"
            ),
            DecryptError::EventKey(e) => write!(f, "event key address error: {e}"),
            DecryptError::NotAuthorized => write!(f, "grant does not cover this event"),
            DecryptError::Cipher(e) => write!(f, "payload decryption failed: {e}"),
            DecryptError::BadMac => {
                write!(
                    f,
                    "integrity check failed: tampered ciphertext or foreign key lineage"
                )
            }
        }
    }
}

impl std::error::Error for DecryptError {}

impl From<EventKeyError> for DecryptError {
    fn from(e: EventKeyError) -> Self {
        DecryptError::EventKey(e)
    }
}

impl From<CipherError> for DecryptError {
    fn from(e: CipherError) -> Self {
        DecryptError::Cipher(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PublishError::UnknownTopic { topic: "x".into() };
        assert!(e.to_string().contains("x"));
        let e = DecryptError::EpochMismatch {
            event_epoch: 2,
            grant_epoch: 1,
        };
        assert!(e.to_string().contains('2'));
        assert!(DecryptError::NotAuthorized.to_string().contains("cover"));
    }

    #[test]
    fn conversions() {
        let e: DecryptError = CipherError::BadPadding.into();
        assert!(matches!(e, DecryptError::Cipher(_)));
        let e: SubscribeError = KdcError::MissingTopic.into();
        assert!(matches!(e, SubscribeError::Kdc(_)));
    }
}
