//! The end-to-end secure batch-publish path: encrypt a batch of events
//! with per-worker KDC derivation caches, then disseminate it through the
//! sharded match pipeline.
//!
//! This is the facade over the tentpole's three layers: reusable crypto
//! contexts ([`psguard_crypto::PrfContext`] / [`psguard_crypto::AesContext`]
//! inside [`Publisher::publish_batch`]), the token-sharded
//! [`ShardedPipeline`], and deterministic merge — output is bit-identical
//! for any worker or shard count.

use psguard_model::Event;
use psguard_routing::{SecureEvent, SecureFilter};
use psguard_siena::{BatchDeliveries, Peer, PipelineStats, ShardedPipeline};

use crate::error::PublishError;
use crate::publisher::Publisher;

/// A root broker's batch dissemination pipeline carrying PSGuard's secure
/// envelopes: token-keyed subscriptions partitioned across match shards.
///
/// # Example
///
/// ```
/// use psguard::{PsGuard, PsGuardConfig, SecurePipeline};
/// use psguard_keys::Schema;
/// use psguard_model::{Event, Filter};
/// use psguard_siena::Peer;
///
/// let ps = PsGuard::new(b"seed", Schema::builder().build(), PsGuardConfig::default());
/// let mut publisher = ps.publisher("P");
/// ps.authorize_publisher(&mut publisher, "w", 0);
/// let mut sub = ps.subscriber("S");
/// ps.authorize_subscriber(&mut sub, &Filter::for_topic("w"), 0)?;
///
/// let mut pipeline = SecurePipeline::new(4);
/// pipeline.subscribe(Peer::Local(1), sub.secure_filters().remove(0));
///
/// let events = vec![Event::builder("w").payload(b"secret".to_vec()).build()];
/// let (envelopes, deliveries) =
///     pipeline.publish_batch(&mut publisher, Peer::Parent, &events, 0, 2)?;
/// assert_eq!(deliveries.for_event(0), &[Peer::Local(1)]);
/// assert_eq!(sub.decrypt(&envelopes[0])?.payload(), b"secret");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SecurePipeline {
    pipeline: ShardedPipeline<SecureFilter>,
    envelopes: Vec<SecureEvent>,
    deliveries: BatchDeliveries,
}

impl SecurePipeline {
    /// A root pipeline with `shards` match shards (`1` reduces to the
    /// serial broker path).
    pub fn new(shards: usize) -> Self {
        SecurePipeline {
            pipeline: ShardedPipeline::new(true, shards),
            envelopes: Vec::new(),
            deliveries: BatchDeliveries::new(),
        }
    }

    /// Registers a secure filter for `peer`.
    pub fn subscribe(&mut self, peer: Peer, filter: SecureFilter) {
        self.pipeline.subscribe(peer, filter);
    }

    /// Removes one `(peer, filter)` registration; `true` if it existed.
    pub fn unsubscribe(&mut self, peer: Peer, filter: &SecureFilter) -> bool {
        self.pipeline.unsubscribe(peer, filter)
    }

    /// Drops all registrations of a departed peer.
    pub fn peer_down(&mut self, peer: Peer) -> usize {
        self.pipeline.peer_down(peer)
    }

    /// Number of match shards.
    pub fn shard_count(&self) -> usize {
        self.pipeline.shard_count()
    }

    /// Live registrations.
    pub fn len(&self) -> usize {
        self.pipeline.len()
    }

    /// Whether no registration is live.
    pub fn is_empty(&self) -> bool {
        self.pipeline.is_empty()
    }

    /// Cumulative pipeline counters.
    pub fn stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    /// Matching work performed by the most recent batch.
    pub fn last_batch_work(&self) -> u64 {
        self.pipeline.last_batch_work()
    }

    /// Encrypts `events` at `epoch` across `workers` crypto threads, then
    /// matches the envelopes through the shard pipeline as if they arrived
    /// from `from`. Returns the envelopes (for transport) alongside each
    /// event's recipients, both in batch order and independent of worker
    /// and shard counts.
    ///
    /// # Errors
    ///
    /// As [`Publisher::publish_batch`]; nothing is disseminated unless the
    /// whole batch encrypts.
    pub fn publish_batch(
        &mut self,
        publisher: &mut Publisher,
        from: Peer,
        events: &[Event],
        epoch: u64,
        workers: usize,
    ) -> Result<(&[SecureEvent], &BatchDeliveries), PublishError> {
        self.envelopes = publisher.publish_batch(events, epoch, workers)?;
        let mut out = std::mem::take(&mut self.deliveries);
        self.pipeline
            .publish_batch_into(from, &self.envelopes, &mut out);
        self.deliveries = out;
        Ok((&self.envelopes, &self.deliveries))
    }

    /// Matches already-encrypted envelopes (e.g. received over the wire)
    /// through the shard pipeline.
    pub fn disseminate(&mut self, from: Peer, envelopes: &[SecureEvent]) -> &BatchDeliveries {
        let mut out = std::mem::take(&mut self.deliveries);
        self.pipeline.publish_batch_into(from, envelopes, &mut out);
        self.deliveries = out;
        &self.deliveries
    }
}

impl std::fmt::Debug for SecurePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecurePipeline")
            .field("shards", &self.pipeline.shard_count())
            .field("subscriptions", &self.pipeline.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PsGuard, PsGuardConfig};
    use psguard_keys::Schema;
    use psguard_model::{Constraint, Filter, IntRange, Op};
    use psguard_siena::{Action, Broker};

    fn deployment() -> PsGuard {
        let schema = Schema::builder()
            .numeric("value", IntRange::new(0, 255).unwrap(), 4)
            .unwrap()
            .build();
        PsGuard::new(b"seed", schema, PsGuardConfig::default())
    }

    fn workload(ps: &PsGuard) -> (Publisher, Vec<(Peer, SecureFilter)>, Vec<Event>) {
        let mut publisher = ps.publisher("P");
        for topic in ["alpha", "beta", "gamma"] {
            ps.authorize_publisher(&mut publisher, topic, 0);
        }
        let mut subs = Vec::new();
        for c in 0..12u32 {
            let topic = ["alpha", "beta", "gamma"][(c % 3) as usize];
            let mut s = ps.subscriber(format!("s{c}"));
            let f = Filter::for_topic(topic)
                .with(Constraint::new("value", Op::Ge((c as i64 * 13) % 120)));
            ps.authorize_subscriber(&mut s, &f, 0).unwrap();
            subs.push((Peer::Local(c), s.secure_filters().remove(0)));
        }
        let events = (0..20)
            .map(|i| {
                Event::builder(["alpha", "beta", "gamma"][i % 3])
                    .attr("value", ((i * 31) % 256) as i64)
                    .payload(vec![i as u8; 64])
                    .build()
            })
            .collect();
        (publisher, subs, events)
    }

    #[test]
    fn pipeline_deliveries_match_serial_broker() {
        let ps = deployment();
        let (mut publisher, subs, events) = workload(&ps);
        let envelopes = publisher.publish_batch(&events, 0, 2).unwrap();

        let mut broker: Broker<SecureFilter> = Broker::new(true);
        for (peer, f) in &subs {
            broker.subscribe(*peer, f.clone());
        }
        for shards in [1usize, 2, 4, 8] {
            let mut pipeline = SecurePipeline::new(shards);
            for (peer, f) in &subs {
                pipeline.subscribe(*peer, f.clone());
            }
            let deliveries = pipeline.disseminate(Peer::Parent, &envelopes);
            assert_eq!(deliveries.len(), envelopes.len());
            for (i, envelope) in envelopes.iter().enumerate() {
                let serial: Vec<Peer> = broker
                    .clone()
                    .publish(Peer::Parent, envelope.clone())
                    .into_iter()
                    .map(|a| match a {
                        Action::Deliver(p, _) => p,
                        other => panic!("unexpected action {other:?}"),
                    })
                    .collect();
                assert_eq!(deliveries.for_event(i), serial, "shards={shards} event={i}");
            }
        }
    }

    #[test]
    fn end_to_end_batch_is_deterministic_and_decryptable() {
        let ps = deployment();
        let (_, subs, events) = workload(&ps);
        let mut reference: Option<Vec<SecureEvent>> = None;
        for (shards, workers) in [(1usize, 1usize), (2, 4), (8, 2), (4, 8)] {
            let (mut publisher, _, _) = workload(&ps);
            let mut pipeline = SecurePipeline::new(shards);
            for (peer, f) in &subs {
                pipeline.subscribe(*peer, f.clone());
            }
            let (envelopes, deliveries) = pipeline
                .publish_batch(&mut publisher, Peer::Parent, &events, 0, workers)
                .unwrap();
            assert!(deliveries.total() > 0);
            match &reference {
                None => reference = Some(envelopes.to_vec()),
                Some(r) => assert_eq!(envelopes, &r[..], "shards={shards} workers={workers}"),
            }
        }

        // Authorized subscribers can decrypt what the pipeline routed.
        let mut s = ps.subscriber("reader");
        ps.authorize_subscriber(&mut s, &Filter::for_topic("alpha"), 0)
            .unwrap();
        let envelopes = reference.unwrap();
        assert_eq!(s.decrypt(&envelopes[0]).unwrap().payload(), vec![0u8; 64]);
    }

    #[test]
    fn membership_changes_flow_through() {
        let ps = deployment();
        let (mut publisher, subs, events) = workload(&ps);
        let mut pipeline = SecurePipeline::new(4);
        for (peer, f) in &subs {
            pipeline.subscribe(*peer, f.clone());
        }
        assert_eq!(pipeline.len(), subs.len());
        assert!(pipeline.unsubscribe(subs[0].0, &subs[0].1));
        assert_eq!(pipeline.peer_down(subs[1].0), 1);
        assert_eq!(pipeline.len(), subs.len() - 2);
        let (_, deliveries) = pipeline
            .publish_batch(&mut publisher, Peer::Parent, &events, 0, 2)
            .unwrap();
        for recipients in deliveries.iter() {
            assert!(!recipients.contains(&subs[0].0));
            assert!(!recipients.contains(&subs[1].0));
        }
        assert!(pipeline.stats().events >= events.len() as u64);
        assert!(format!("{pipeline:?}").contains("shards"));
    }
}
