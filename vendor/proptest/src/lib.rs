//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of `proptest 1.x` this workspace's tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_filter` / `boxed`, integer-range and tuple strategies, a small
//! regex-subset string strategy, [`collection::vec`], [`arbitrary::any`],
//! [`prop_oneof!`], `prop_assert*!` and `prop_assume!`.
//!
//! Semantics differ from upstream in one deliberate way: failing cases
//! are **not shrunk** — the failing input is printed as drawn. Case
//! generation is deterministic per test (seeded from the test name), so
//! failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic case RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic generator used to draw case inputs (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (e.g. the test path).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The value-generation abstraction.

    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    ///
    /// Unlike upstream proptest there is no shrinking: a strategy is just
    /// a samplable distribution.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f`, retrying the draw. Panics
        /// after 1000 consecutive rejections.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Object-safe sampling core backing [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 draws in a row: {}", self.reason);
        }
    }

    /// A constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128 + 1) as u128;
                    if width > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(width as u64) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&str` strategies are regex-subset string generators supporting
    /// literals, `[abc]` / `[a-z]` classes, `.`, and `{m}` / `{m,n}` /
    /// `?` / `*` / `+` repetition (bounded at 8 for `*`/`+`).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        #[derive(Clone)]
        enum Atom {
            Lit(char),
            Class(Vec<char>),
            Any,
        }
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (a, b) = (chars[j] as u32, chars[j + 2] as u32);
                            for c in a..=b {
                                set.push(char::from_u32(c).expect("char range"));
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(set)
                }
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).expect("dangling escape");
                    i += 1;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional repetition suffix.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("repeat lower bound"),
                            b.trim().parse().expect("repeat upper bound"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("repeat count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push((atom, lo, hi));
        }

        let mut out = String::new();
        for (atom, lo, hi) in atoms {
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let c = match &atom {
                    Atom::Lit(c) => *c,
                    Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
                    Atom::Any => {
                        char::from_u32(32 + rng.below(95) as u32).expect("printable ascii")
                    }
                };
                out.push(c);
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! Default strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical default strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The default strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` draws.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-style access (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property (no shrinking: panics like
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The property-test macro: each `fn name(input in strategy, ...)` runs
/// `cases` times with freshly drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let __result: ::std::result::Result<(), ()> = (|| {
                        $crate::proptest!(@bind __rng $($params)*);
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    let _ = (__case, __result);
                }
            }
        )*
    };
    (@bind $rng:ident) => {};
    (@bind $rng:ident $x:ident in $s:expr) => {
        let $x = $crate::strategy::Strategy::sample(&($s), &mut $rng);
    };
    (@bind $rng:ident $x:ident in $s:expr, $($rest:tt)*) => {
        let $x = $crate::strategy::Strategy::sample(&($s), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident ($($x:ident),+ $(,)?) in $s:expr) => {
        let ($($x),+) = $crate::strategy::Strategy::sample(&($s), &mut $rng);
    };
    (@bind $rng:ident ($($x:ident),+ $(,)?) in $s:expr, $($rest:tt)*) => {
        let ($($x),+) = $crate::strategy::Strategy::sample(&($s), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident $x:ident : $t:ty) => {
        let $x: $t = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    (@bind $rng:ident $x:ident : $t:ty, $($rest:tt)*) => {
        let $x: $t = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_shapes() {
        let mut rng = crate::test_runner::TestRng::from_name("pattern");
        for _ in 0..200 {
            let s = Strategy::sample(&"[ab]{0,4}", &mut rng);
            assert!(s.len() <= 4);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'), "{s:?}");
        }
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(v in 10i64..20, w in 0u32..=3) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w <= 3);
        }

        #[test]
        fn vec_sizes(items in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&items.len()));
            prop_assert!(items.iter().all(|&b| b < 10));
        }

        #[test]
        fn tuples_and_oneof((a, b) in (0i64..5, 5i64..10), c in prop_oneof![0u32..1, 10u32..11]) {
            prop_assert!(a < b);
            prop_assert!(c == 0 || c == 10);
        }

        #[test]
        fn typed_params(bytes: [u8; 16], flag: bool) {
            prop_assert_eq!(bytes.len(), 16);
            let _ = flag;
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
