//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided (the workspace uses nothing else),
//! backed by `std::sync::mpsc`. Multi-producer single-consumer covers
//! every use here; `Sender` is clonable for both flavors.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPSC channels with the crossbeam-channel API shape.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message before the deadline.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderInner<T> {
        fn clone(&self) -> Self {
            match self {
                SenderInner::Unbounded(s) => SenderInner::Unbounded(s.clone()),
                SenderInner::Bounded(s) => SenderInner::Bounded(s.clone()),
            }
        }
    }

    /// The sending half (clonable).
    pub struct Sender<T>(SenderInner<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking on a full bounded channel.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderInner::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                SenderInner::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends a message without blocking; a full bounded channel
        /// returns [`TrySendError::Full`] (unbounded channels never do).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderInner::Unbounded(s) => {
                    s.send(msg).map_err(|e| TrySendError::Disconnected(e.0))
                }
                SenderInner::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderInner::Unbounded(tx)), Receiver(rx))
    }

    /// A bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderInner::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop((tx, tx2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
        let (utx, urx) = unbounded::<u32>();
        assert_eq!(utx.try_send(1), Ok(()));
        drop(urx);
        assert_eq!(utx.try_send(2), Err(TrySendError::Disconnected(2)));
    }

    #[test]
    fn bounded_threads() {
        let (tx, rx) = bounded::<u32>(2);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv_timeout(Duration::from_secs(2)) {
            got.push(v);
            if got.len() == 100 {
                break;
            }
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
