//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate supplies the (small) subset of the `rand 0.8` API the workspace
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`, `fill`), [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is a xoshiro256++ generator. It is deterministic for a given
//! seed — which is all the workspace relies on — but its stream does NOT
//! match upstream `rand`'s ChaCha12-based `StdRng`.

#![forbid(unsafe_code)]

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream `rand` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn "standardly" by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    // Widening-multiply rejection-free mapping (Lemire); the tiny bias is
    // irrelevant for simulation/test workloads.
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, width as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::standard(rng) * (hi - lo)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::standard(self) < p
    }

    /// Fills `dest` with standard draws.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the
    /// upstream ChaCha12 `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&u));
            let w = rng.gen_range(3u32..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..=-10);
            assert!((-50..=-10).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
