//! Offline placeholder for `serde`.
//!
//! The workspace's `serde` support is gated behind optional features that
//! default to **off** in this offline build (the real derive macros are
//! unavailable without crates.io). This crate exists so the optional
//! dependency edge still resolves; it is never compiled into the
//! workspace unless the `serde` features are explicitly enabled, and it
//! intentionally provides no derive macros.

#![forbid(unsafe_code)]
