//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`] — backed by a
//! simple calibrated timing loop (median of a few samples) instead of
//! criterion's full statistical machinery. Output is one line per bench:
//! `name … time/iter`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs the measured closure.
pub struct Bencher {
    /// Nanoseconds per iteration measured for the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it runs ≥ 5 ms.
        let mut batch: u64 = 1;
        let batch = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 30 {
                break batch.max(1);
            }
            batch = if elapsed.is_zero() {
                batch * 16
            } else {
                let target = Duration::from_millis(8).as_nanos() as u64;
                (batch * target / (elapsed.as_nanos() as u64).max(1)).clamp(batch + 1, batch * 32)
            };
        };
        // Median of 5 samples.
        let mut samples = [0f64; 5];
        for s in &mut samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            *s = start.elapsed().as_nanos() as f64 / batch as f64;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.ns_per_iter = samples[2];
    }

    /// Like `iter`, but with per-iteration setup excluded via batching of
    /// size 1 (setup cost is included in this stand-in; adequate for
    /// compile coverage).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        self.iter(|| f(setup()));
    }
}

/// Batch-size hint accepted by [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (the group provides the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let ns = b.ns_per_iter;
    let pretty = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("bench: {label:<60} {pretty}/iter");
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }

    /// Benchmark with an explicit input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.id, |b| f(b, input));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| f(b, input));
        self
    }

    /// Accepted for compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { let _ = $cfg; $crate::Criterion::default() };
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
