//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] wrapping
//! `std::sync` with parking_lot's non-poisoning API (a poisoned std lock
//! propagates the panic instead).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
