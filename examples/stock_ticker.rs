//! Stock-quote dissemination with key caching (§3.2.3, Figure 11).
//!
//! Consecutive quotes carry numerically close prices, so their NAKT
//! leaves share long prefixes. The subscriber's key cache turns most
//! event-key derivations into one or two hashes — the paper's temporal
//! locality optimization.
//!
//! Run with: `cargo run --example stock_ticker`

use psguard::{PsGuard, PsGuardConfig};
use psguard_keys::Schema;
use psguard_model::{Constraint, Event, Filter, IntRange, Op};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::builder()
        .numeric(
            "price_cents",
            IntRange::new(0, 65_535).expect("valid range"),
            1,
        )?
        .str_prefix("symbol", 8)
        .build();

    // Two deployments differing only in cache size, to compare costs.
    for cache_bytes in [0usize, 64 * 1024] {
        let ps = PsGuard::new(
            b"ticker-master",
            schema.clone(),
            PsGuardConfig {
                key_cache_bytes: cache_bytes,
                ..Default::default()
            },
        );

        let mut exchange = ps.publisher("nasdaq");
        ps.authorize_publisher(&mut exchange, "quotes", 0);

        // The trader watches tech symbols priced 100.00–300.00.
        let mut trader = ps.subscriber("trader");
        let filter = Filter::for_topic("quotes")
            .with(Constraint::new("symbol", Op::StrPrefix("GO".into())))
            .with(Constraint::new("price_cents", Op::Ge(10_000)))
            .with(Constraint::new("price_cents", Op::Le(30_000)));
        ps.authorize_subscriber(&mut trader, &filter, 0)?;

        // A random-walk quote stream: prices move a few cents per tick.
        let mut price = 17_500i64;
        let mut decrypted = 0u32;
        for tick in 0..500 {
            price += [3, -2, 1, -1, 4, -3][tick % 6];
            let quote = Event::builder("quotes")
                .attr("symbol", "GOOG")
                .attr("price_cents", price)
                .payload(format!("GOOG {} @tick{tick}", price).into_bytes())
                .build();
            let secure = exchange.publish(&quote, 0)?;
            if trader.decrypt(&secure).is_ok() {
                decrypted += 1;
            }
        }

        let stats = trader.cache_stats();
        let ops = trader.ops();
        println!(
            "cache {:>3} KB: {decrypted}/500 quotes decrypted, {} hash ops total, \
             {} exact + {} partial cache hits, {} hash ops saved",
            cache_bytes / 1024,
            ops.total(),
            stats.hits,
            stats.partial_hits,
            stats.hash_ops_saved,
        );
    }

    println!(
        "\nWith caching, consecutive quotes reuse cached NAKT prefixes, so the\n\
         per-event derivation cost collapses (paper Figure 11)."
    );
    Ok(())
}
