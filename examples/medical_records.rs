//! The paper's motivating scenario: confidential medical-record
//! dissemination.
//!
//! Events carry a routable `age` attribute and a secret `patientRecord`
//! payload. Brokers route on ⟨topic-token, age⟩ without ever seeing the
//! record; subscribers decrypt exactly the events their authorization
//! covers. The example also demonstrates epoch-based lazy revocation and
//! per-publisher isolation.
//!
//! Run with: `cargo run --example medical_records`

use psguard::{DecryptError, PsGuard, PsGuardConfig};
use psguard_keys::Schema;
use psguard_model::{AttrValue, CategoryPath, Constraint, Event, Filter, IntRange, Op};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::builder()
        .numeric("age", IntRange::new(0, 127).expect("valid range"), 1)?
        .category("diagnosis", 3)
        .build();
    let ps = PsGuard::new(
        b"hospital-consortium-master",
        schema,
        PsGuardConfig {
            per_publisher_keys: true,
            ..Default::default()
        },
    );

    // Two hospitals publish on the same trial topic; per-publisher keys
    // keep their data mutually unreadable (§3.1 "Multiple Publishers").
    let mut hospital_a = ps.publisher("hospital-a");
    let mut hospital_b = ps.publisher("hospital-b");
    for epoch in [0u64, 1] {
        ps.authorize_publisher(&mut hospital_a, "cancerTrail", epoch);
        ps.authorize_publisher(&mut hospital_b, "cancerTrail", epoch);
    }

    // Dr. Lee follows adult oncology patients of hospital A in epoch 0.
    let mut dr_lee = ps.subscriber("dr-lee");
    let lee_filter = Filter::for_topic("cancerTrail")
        .with(Constraint::new("age", Op::Ge(18)))
        .with(Constraint::new(
            "diagnosis",
            Op::CategoryIn(CategoryPath::from_indices([0])), // oncology subtree
        ));
    ps.authorize_subscriber_for_publisher(&mut dr_lee, &lee_filter, 0, "hospital-a")?;

    // ------------------------------------------------------------------
    // Case 1: a matching record from hospital A decrypts.
    // ------------------------------------------------------------------
    let record = Event::builder("cancerTrail")
        .attr("age", 25i64)
        .attr(
            "diagnosis",
            AttrValue::Category(CategoryPath::from_indices([0, 2, 1])), // oncology/lung/stage1
        )
        .payload(b"MRN-1291: responding to protocol 7".to_vec())
        .build();
    let secure = hospital_a.publish(&record, 0)?;
    println!(
        "case 1 — in scope, hospital A:  {:?}",
        String::from_utf8_lossy(dr_lee.decrypt(&secure)?.payload())
    );

    // ------------------------------------------------------------------
    // Case 2: a pediatric record (age 9) is refused: the grant's NAKT
    // keys cannot derive the event key.
    // ------------------------------------------------------------------
    let pediatric = Event::builder("cancerTrail")
        .attr("age", 9i64)
        .attr(
            "diagnosis",
            AttrValue::Category(CategoryPath::from_indices([0, 1, 0])),
        )
        .payload(b"MRN-2204: pediatric case".to_vec())
        .build();
    let secure = hospital_a.publish(&pediatric, 0)?;
    println!(
        "case 2 — age out of scope:      {}",
        dr_lee.decrypt(&secure).unwrap_err()
    );

    // ------------------------------------------------------------------
    // Case 3: a cardiology record is refused: wrong category subtree.
    // ------------------------------------------------------------------
    let cardio = Event::builder("cancerTrail")
        .attr("age", 50i64)
        .attr(
            "diagnosis",
            AttrValue::Category(CategoryPath::from_indices([1, 0, 0])), // cardiology
        )
        .payload(b"MRN-3302: cardiology consult".to_vec())
        .build();
    let secure = hospital_a.publish(&cardio, 0)?;
    println!(
        "case 3 — category out of scope: {}",
        dr_lee.decrypt(&secure).unwrap_err()
    );

    // ------------------------------------------------------------------
    // Case 4: hospital B's records stay opaque (publisher isolation).
    // ------------------------------------------------------------------
    let secure_b = hospital_b.publish(&record, 0)?;
    println!(
        "case 4 — other publisher:       {}",
        dr_lee.decrypt(&secure_b).unwrap_err()
    );

    // ------------------------------------------------------------------
    // Case 5: lazy revocation. Dr. Lee does not renew for epoch 1, so a
    // record published after the epoch boundary is unreadable with the
    // stale grant.
    // ------------------------------------------------------------------
    let secure_next_epoch = hospital_a.publish(&record, 1)?;
    match dr_lee.decrypt(&secure_next_epoch).unwrap_err() {
        DecryptError::EpochMismatch {
            event_epoch,
            grant_epoch,
        } => println!(
            "case 5 — revoked by epoch:      grant is for epoch {grant_epoch}, event is epoch {event_epoch}"
        ),
        other => println!("case 5 — refused: {other}"),
    }

    // After renewing (paying for) epoch 1, access resumes.
    ps.authorize_subscriber_for_publisher(&mut dr_lee, &lee_filter, 1, "hospital-a")?;
    println!(
        "case 5 — after renewal:         {:?}",
        String::from_utf8_lossy(dr_lee.decrypt(&secure_next_epoch)?.payload())
    );

    Ok(())
}
