//! The frequency-inference attack and its multi-path defense (§4.2,
//! Figures 6–7).
//!
//! Curious brokers know the popularity distribution of topics a priori
//! and watch the (pseudonymous) token stream. Without multi-path routing
//! the apparent token frequencies mirror the true ones — a router can
//! identify hot topics. Probabilistic multi-path routing provisions
//! `ind_t ∝ λ_t` vertex-disjoint paths per token and flattens what any
//! single router sees.
//!
//! Run with: `cargo run --example multipath_entropy`

use psguard_routing::{simulate, zipf_frequencies, AttackSimConfig, MultipathTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let freqs = zipf_frequencies(64, 1.0);

    // Theorem 4.2 demo: vertex-disjoint variant paths on an 8-ary tree.
    let tree = MultipathTree::new(8, 3)?;
    let leaf = tree.leaf_digits(123);
    println!("vertex-disjoint paths to leaf {leaf:?} (Theorem 4.2):");
    for k in 0..4 {
        let path: Vec<String> = tree
            .variant_path(&leaf, k)?
            .iter()
            .map(|n| format!("{:?}", n.digits()))
            .collect();
        println!("  variant {k}: {}", path.join(" -> "));
    }
    assert!(tree.verify_disjoint(&leaf, 8)?);
    println!("  all 8 variants verified pairwise disjoint\n");

    // The attack: entropy of what routers observe, with and without the
    // defense.
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "ind_max", "S_act", "S_app", "S_max"
    );
    for ind in [1u8, 2, 3, 5, 8] {
        let obs = simulate(&AttackSimConfig {
            arity: 8,
            depth: 3,
            token_freqs: freqs.clone(),
            ind_max: ind,
            events: 100_000,
            seed: 42,
        })?;
        println!(
            "{ind:>9} {:>12.2} {:>12.2} {:>12.2}",
            obs.s_act(),
            obs.non_collusive_s_app(),
            obs.s_max()
        );
    }

    println!("\ncollusion erodes the defense (ind_max = 8):");
    let obs = simulate(&AttackSimConfig {
        arity: 8,
        depth: 3,
        token_freqs: freqs,
        ind_max: 8,
        events: 100_000,
        seed: 42,
    })?;
    println!("{:>18} {:>12}", "colluding nodes", "S_app");
    for f in [0.05f64, 0.25, 0.5, 1.0] {
        let s: f64 = (0..6).map(|seed| obs.collusive_s_app(f, seed)).sum::<f64>() / 6.0;
        println!("{:>17}% {s:>12.2}", (f * 100.0) as u32);
    }
    println!(
        "\nfull collusion recovers the true distribution (S_act = {:.2});\n\
         small coalitions still see a near-flat token stream.",
        obs.s_act()
    );
    Ok(())
}
