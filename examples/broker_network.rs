//! A real TCP broker network carrying PSGuard's encrypted envelopes.
//!
//! Three brokers form a tree over loopback TCP (root + two children);
//! subscribers connect to one child, the publisher to the other. All
//! traffic between them is framed binary: topic tokens, plaintext
//! routable attributes, and AES-encrypted payloads — exactly what a
//! curious broker would see on the wire.
//!
//! Run with: `cargo run --example broker_network`

use std::time::Duration;

use psguard::{PsGuard, PsGuardConfig};
use psguard_keys::Schema;
use psguard_model::{Constraint, Event, Filter, IntRange, Op};
use psguard_routing::{SecureEvent, SecureFilter};
use psguard_siena::{spawn_broker, TcpClient};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The secure deployment.
    let schema = Schema::builder()
        .numeric("severity", IntRange::new(0, 10).expect("valid range"), 1)?
        .build();
    let ps = PsGuard::new(b"ops-alerts-master", schema, PsGuardConfig::default());
    let mut publisher = ps.publisher("monitoring");
    ps.authorize_publisher(&mut publisher, "alerts", 0);

    // A three-broker tree over TCP: both child brokers peer with the root.
    let root = spawn_broker::<SecureFilter>("127.0.0.1:0", None)?;
    let left = spawn_broker::<SecureFilter>("127.0.0.1:0", Some(root.addr()))?;
    let right = spawn_broker::<SecureFilter>("127.0.0.1:0", Some(root.addr()))?;
    println!(
        "brokers: root {} / left {} / right {}",
        root.addr(),
        left.addr(),
        right.addr()
    );

    // The on-call engineer subscribes at the left broker for severity ≥ 7.
    let mut oncall = ps.subscriber("on-call");
    let filter = Filter::for_topic("alerts").with(Constraint::new("severity", Op::Ge(7)));
    ps.authorize_subscriber(&mut oncall, &filter, 0)?;
    let oncall_conn: TcpClient<SecureFilter> = TcpClient::connect(left.addr())?;
    // The ack returns only once the subscription has propagated
    // left -> root, so the publishes below cannot outrun it.
    oncall_conn.subscribe_acked(oncall.secure_filters().remove(0), Duration::from_secs(5))?;

    // The publisher connects at the right broker and publishes two alerts.
    let feed: TcpClient<SecureFilter> = TcpClient::connect(right.addr())?;
    for (severity, text) in [(3i64, "disk 71% full"), (9, "primary database down")] {
        let event = Event::builder("alerts")
            .attr("severity", severity)
            .payload(text.as_bytes().to_vec())
            .build();
        let secure: SecureEvent = publisher.publish(&event, 0)?;
        println!(
            "publishing severity {severity}: tag {:?}, {} ciphertext bytes",
            secure.tag.tag,
            secure.event.payload().len()
        );
        feed.publish(secure)?;
    }

    // Only the severity-9 alert crosses the tree to the on-call engineer,
    // who decrypts it locally.
    let delivered = oncall_conn
        .recv_timeout(Duration::from_secs(5))
        .expect("the severity-9 alert must be delivered");
    let plain = oncall.decrypt(&delivered)?;
    println!(
        "on-call received and decrypted: {:?}",
        String::from_utf8_lossy(plain.payload())
    );
    assert!(
        oncall_conn
            .recv_timeout(Duration::from_millis(300))
            .is_none(),
        "the severity-3 alert must be filtered in-network"
    );
    println!("severity-3 alert was filtered in-network, as subscribed.");

    drop(oncall_conn);
    drop(feed);
    left.shutdown();
    right.shutdown();
    root.shutdown();
    Ok(())
}
