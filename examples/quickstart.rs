//! Quickstart: the smallest complete PSGuard pipeline.
//!
//! A KDC, one publisher, two subscribers (one authorized for the event's
//! range, one not), and the paper's Figure 1 key tree printed for
//! orientation.
//!
//! Run with: `cargo run --example quickstart`

use psguard::{PsGuard, PsGuardConfig};
use psguard_keys::{Ktid, Nakt, Schema};
use psguard_model::{Constraint, Event, Filter, IntRange, Op};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // Figure 1 of the paper: the NAKT for R = (0, 31), lc = 4.
    // ---------------------------------------------------------------
    println!("Numeric Attribute Key Tree for R = (0, 31), lc = 4 (paper Figure 1):\n");
    let nakt = Nakt::binary(IntRange::new(0, 31).expect("valid range"), 4)?;
    print_tree(&nakt, &Ktid::root(), 0);
    println!();

    // ---------------------------------------------------------------
    // A deployment: stateless KDC + schema + epoching.
    // ---------------------------------------------------------------
    let schema = Schema::builder()
        .numeric("age", IntRange::new(0, 255).expect("valid range"), 1)?
        .build();
    let ps = PsGuard::new(b"quickstart master seed", schema, PsGuardConfig::default());

    // The publisher gets the topic key for (cancerTrail, epoch 0).
    let mut publisher = ps.publisher("hospital-a");
    ps.authorize_publisher(&mut publisher, "cancerTrail", 0);

    // Subscriber 1 is authorized for ages 16..=31 — the paper's example.
    let mut alice = ps.subscriber("alice");
    let alice_filter = Filter::for_topic("cancerTrail")
        .with(Constraint::new("age", Op::Ge(16)))
        .with(Constraint::new("age", Op::Le(31)));
    ps.authorize_subscriber(&mut alice, &alice_filter, 0)?;
    println!(
        "alice's grant for ages 16..=31 holds {} authorization key(s)",
        alice.key_count()
    );

    // Subscriber 2 is authorized only for ages > 30.
    let mut bob = ps.subscriber("bob");
    let bob_filter = Filter::for_topic("cancerTrail").with(Constraint::new("age", Op::Gt(30)));
    ps.authorize_subscriber(&mut bob, &bob_filter, 0)?;

    // ---------------------------------------------------------------
    // Publish e = ⟨⟨topic, cancerTrail⟩, ⟨age, 22⟩, ⟨record, …⟩⟩.
    // ---------------------------------------------------------------
    let event = Event::builder("cancerTrail")
        .attr("age", 22i64)
        .payload(b"patient record #4711".to_vec())
        .build();
    let secure = publisher.publish(&event, 0)?;
    println!(
        "\npublished: topic hidden behind tag {:?}, payload = {} ciphertext bytes",
        secure.tag.tag,
        secure.event.payload().len()
    );

    // Alice (16..=31 covers 22) derives K(e) and decrypts.
    let plain = alice.decrypt(&secure)?;
    println!(
        "alice decrypts: {:?}",
        String::from_utf8_lossy(plain.payload())
    );

    // Bob (> 30 does not cover 22) cannot derive K(e).
    match bob.decrypt(&secure) {
        Err(e) => println!("bob is refused: {e}"),
        Ok(_) => unreachable!("bob must not decrypt an age-22 event"),
    }

    Ok(())
}

/// Prints the NAKT with each element's ktid and value span.
fn print_tree(nakt: &Nakt, node: &Ktid, depth: usize) {
    let span = nakt.value_span(node);
    println!("{:indent$}{node} -> values {span}", "", indent = depth * 4);
    if node.depth() < nakt.depth() {
        for d in 0..nakt.arity() {
            print_tree(nakt, &node.child(d), depth + 1);
        }
    }
}
