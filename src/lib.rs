//! Umbrella crate: re-exports the PSGuard workspace for integration tests and examples.
pub use psguard;
