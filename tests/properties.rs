//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;

use psguard::{PsGuard, PsGuardConfig};
use psguard_crypto::{cbc_decrypt, cbc_encrypt, ctr_apply, Aes128};
use psguard_groupkey::{RekeyStrategy, SubscriberGroupManager};
use psguard_keys::{EpochId, Kdc, Ktid, Nakt, OpCounter, Schema, TopicScope};
use psguard_model::{AttrValue, CategoryPath, Constraint, Event, Filter, IntRange, Op};
use psguard_routing::{entropy_bits, max_entropy_bits, MultipathTree};
use psguard_siena::Wire;

fn schema_256() -> Schema {
    Schema::builder()
        .numeric("age", IntRange::new(0, 255).expect("valid"), 1)
        .expect("valid nakt")
        .build()
}

proptest! {
    // ------------------------------------------------------------------
    // NAKT: the canonical cover is exact, disjoint and within the bound.
    // ------------------------------------------------------------------
    #[test]
    fn nakt_cover_exact_disjoint_bounded(
        size in 2u32..=1024,
        lo in 0i64..1024,
        width in 1i64..1024,
    ) {
        let range = IntRange::new(0, size as i64 - 1).expect("valid");
        let nakt = Nakt::binary(range, 1).expect("valid");
        let lo = lo % size as i64;
        let hi = (lo + width - 1).min(size as i64 - 1);
        let q = IntRange::new(lo, hi).expect("valid");
        let cover = nakt.canonical_cover(&q).expect("in range");

        prop_assert!(cover.len() as u64 <= nakt.max_auth_keys().max(1));
        let mut covered = vec![false; size as usize];
        for k in &cover {
            let (a, b) = k.leaf_span(nakt.depth(), 2);
            for c in a..=b {
                prop_assert!(!covered[c as usize], "overlapping cover at {c}");
                covered[c as usize] = true;
            }
        }
        for v in 0..size as i64 {
            prop_assert_eq!(covered[v as usize], q.contains(v), "v={}", v);
        }
    }

    // ------------------------------------------------------------------
    // The central theorem: K(e) derivable from K(f) iff e matches f.
    // ------------------------------------------------------------------
    #[test]
    fn event_key_derivable_iff_in_range(
        lo in 0i64..256,
        width in 1i64..256,
        value in 0i64..256,
    ) {
        let lo = lo.min(255);
        let hi = (lo + width - 1).min(255);
        let kdc = Kdc::from_seed(b"prop");
        let schema = schema_256();
        let filter = Filter::for_topic("w").with(Constraint::new(
            "age",
            Op::InRange(IntRange::new(lo, hi).expect("valid")),
        ));
        let mut ops = OpCounter::new();
        let grant = kdc
            .grant(&schema, &filter, EpochId(0), &TopicScope::Shared, &mut ops)
            .expect("grantable");
        let event = Event::builder("w").attr("age", value).build();
        let addrs = psguard_keys::event_key_addresses(&schema, &event).expect("valid");
        let derived = grant.event_key(&schema, &addrs, &mut ops);
        prop_assert_eq!(derived.is_some(), (lo..=hi).contains(&value));
    }

    // ------------------------------------------------------------------
    // Covering is sound w.r.t. matching for numeric filters.
    // ------------------------------------------------------------------
    #[test]
    fn covering_implies_match_subset(
        a_lo in 0i64..100, a_hi in 0i64..100,
        b_lo in 0i64..100, b_hi in 0i64..100,
        samples in prop::collection::vec(0i64..100, 20),
    ) {
        prop_assume!(a_lo <= a_hi && b_lo <= b_hi);
        let f = Filter::for_topic("t").with(Constraint::new(
            "x",
            Op::InRange(IntRange::new(a_lo, a_hi).expect("valid")),
        ));
        let g = Filter::for_topic("t").with(Constraint::new(
            "x",
            Op::InRange(IntRange::new(b_lo, b_hi).expect("valid")),
        ));
        if f.covers(&g) {
            for v in samples {
                let e = Event::builder("t").attr("x", v).build();
                if g.matches(&e) {
                    prop_assert!(f.matches(&e), "covering violated at {}", v);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Ktid index mapping is a bijection.
    // ------------------------------------------------------------------
    #[test]
    fn ktid_leaf_index_roundtrip(m in 1usize..10, arity in 2u8..8, idx in 0u64..10_000) {
        let capacity = (arity as u64).pow(m as u32);
        let idx = idx % capacity;
        let k = Ktid::from_leaf_index(idx, m, arity);
        prop_assert_eq!(k.to_index(arity), idx);
        prop_assert_eq!(k.depth(), m);
    }

    // ------------------------------------------------------------------
    // AES modes roundtrip for arbitrary keys/payloads.
    // ------------------------------------------------------------------
    #[test]
    fn cbc_roundtrip(key: [u8; 16], iv: [u8; 16], data in prop::collection::vec(any::<u8>(), 0..512)) {
        let cipher = Aes128::new(&key);
        let ct = cbc_encrypt(&cipher, &iv, &data);
        prop_assert_eq!(cbc_decrypt(&cipher, &iv, &ct).expect("roundtrip"), data);
    }

    #[test]
    fn ctr_involution(key: [u8; 16], nonce: [u8; 16], data in prop::collection::vec(any::<u8>(), 0..512)) {
        let cipher = Aes128::new(&key);
        let once = ctr_apply(&cipher, &nonce, &data);
        prop_assert_eq!(ctr_apply(&cipher, &nonce, &once), data);
    }

    // ------------------------------------------------------------------
    // Theorem 4.2 for arbitrary tree shapes and leaves.
    // ------------------------------------------------------------------
    #[test]
    fn multipath_variants_are_vertex_disjoint(
        arity in 2u8..10,
        depth in 1usize..5,
        leaf_seed in any::<u64>(),
    ) {
        let tree = MultipathTree::new(arity, depth).expect("valid");
        let leaf = tree.leaf_digits(leaf_seed % tree.leaf_count());
        prop_assert!(tree.verify_disjoint(&leaf, arity).expect("valid"));
    }

    // ------------------------------------------------------------------
    // Entropy bounds.
    // ------------------------------------------------------------------
    #[test]
    fn entropy_within_bounds(weights in prop::collection::vec(0.0f64..100.0, 1..64)) {
        let h = entropy_bits(&weights);
        let n = weights.iter().filter(|&&w| w > 0.0).count();
        prop_assert!(h >= -1e-9);
        prop_assert!(h <= max_entropy_bits(n.max(1)) + 1e-9, "h={} n={}", h, n);
    }

    // ------------------------------------------------------------------
    // Baseline group manager: decryption tracks membership exactly.
    // ------------------------------------------------------------------
    #[test]
    fn group_manager_decrypts_exactly_own_range(
        joins in prop::collection::vec((0u64..8, 0i64..64, 1i64..32), 1..12),
        probes in prop::collection::vec(0i64..64, 16),
    ) {
        let mut mgr = SubscriberGroupManager::new(
            IntRange::new(0, 63).expect("valid"),
            RekeyStrategy::Direct,
            b"prop",
        );
        let mut latest: std::collections::HashMap<u64, IntRange> = Default::default();
        for (s, lo, width) in joins {
            let hi = (lo + width - 1).min(63);
            let r = IntRange::new(lo, hi).expect("valid");
            mgr.join(s, r);
            latest.insert(s, r);
        }
        for v in probes {
            for (&s, r) in &latest {
                prop_assert_eq!(mgr.can_decrypt(s, v), r.contains(v), "s={} v={}", s, v);
            }
        }
    }

    // ------------------------------------------------------------------
    // Wire codec: Filter and Event roundtrip for generated values.
    // ------------------------------------------------------------------
    #[test]
    fn wire_roundtrip_filter_event(
        topic in "[a-z]{1,8}",
        lo in -100i64..100,
        width in 1i64..100,
        sval in "[a-d]{0,8}",
        cat in prop::collection::vec(0u32..4, 0..4),
        payload in prop::collection::vec(any::<u8>(), 0..64),
        age in -1000i64..1000,
    ) {
        let filter = Filter::for_topic(topic.clone())
            .with(Constraint::new("n", Op::InRange(IntRange::new(lo, lo + width).expect("valid"))))
            .with(Constraint::new("s", Op::StrPrefix(sval.clone())))
            .with(Constraint::new("c", Op::CategoryIn(CategoryPath::from_indices(cat.clone()))));
        prop_assert_eq!(Filter::from_bytes(&filter.to_bytes()).expect("decode"), filter);

        let event = Event::builder(topic)
            .attr("n", age)
            .attr("s", AttrValue::Str(sval))
            .attr("c", AttrValue::Category(CategoryPath::from_indices(cat)))
            .payload(payload)
            .build();
        prop_assert_eq!(Event::from_bytes(&event.to_bytes()).expect("decode"), event);
    }

    // ------------------------------------------------------------------
    // Full pipeline: decrypt succeeds iff the plaintext filter matches.
    // ------------------------------------------------------------------
    #[test]
    fn pipeline_decrypt_iff_match(
        lo in 0i64..256, width in 1i64..256, value in 0i64..256,
    ) {
        let lo = lo.min(255);
        let hi = (lo + width - 1).min(255);
        let ps = PsGuard::new(b"prop-master", schema_256(), PsGuardConfig::default());
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "w", 0);
        let filter = Filter::for_topic("w").with(Constraint::new(
            "age",
            Op::InRange(IntRange::new(lo, hi).expect("valid")),
        ));
        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber(&mut sub, &filter, 0).expect("grantable");

        let event = Event::builder("w")
            .attr("age", value)
            .payload(b"payload".to_vec())
            .build();
        let secure = publisher.publish(&event, 0).expect("publishable");
        let outcome = sub.decrypt(&secure);
        prop_assert_eq!(outcome.is_ok(), filter.matches(&event));
        if let Ok(plain) = outcome {
            prop_assert_eq!(plain.payload(), b"payload");
        }
    }
}
