//! Security-property integration tests: the confidentiality guarantees
//! the paper claims, exercised end-to-end with failure injection.

use psguard::{DecryptError, PsGuard, PsGuardConfig};
use psguard_keys::Schema;
use psguard_model::{Constraint, Event, Filter, IntRange, Op};

fn deployment() -> PsGuard {
    let schema = Schema::builder()
        .numeric("age", IntRange::new(0, 255).expect("valid"), 1)
        .expect("valid nakt")
        .build();
    PsGuard::new(b"security-master", schema, PsGuardConfig::default())
}

fn published(ps: &PsGuard, age: i64, epoch: u64) -> psguard_routing::SecureEvent {
    let mut publisher = ps.publisher("P");
    ps.authorize_publisher(&mut publisher, "w", epoch);
    publisher
        .publish(
            &Event::builder("w")
                .attr("age", age)
                .payload(b"classified".to_vec())
                .build(),
            epoch,
        )
        .expect("publishable")
}

#[test]
fn unauthorized_subscriber_cannot_decrypt_nonmatching_event() {
    let ps = deployment();
    // Paper example: f' = age > 30 must NOT read an age-25 event.
    let mut sub = ps.subscriber("S'");
    ps.authorize_subscriber(
        &mut sub,
        &Filter::for_topic("w").with(Constraint::new("age", Op::Gt(30))),
        0,
    )
    .expect("grantable");
    let secure = published(&ps, 25, 0);
    assert_eq!(
        sub.decrypt(&secure).unwrap_err(),
        DecryptError::NotAuthorized
    );

    // While f = age > 20 must read it.
    let mut ok = ps.subscriber("S");
    ps.authorize_subscriber(
        &mut ok,
        &Filter::for_topic("w").with(Constraint::new("age", Op::Gt(20))),
        0,
    )
    .expect("grantable");
    assert!(ok.decrypt(&secure).is_ok());
}

#[test]
fn boundary_values_of_the_granted_range() {
    let ps = deployment();
    let mut sub = ps.subscriber("S");
    ps.authorize_subscriber(
        &mut sub,
        &Filter::for_topic("w").with(Constraint::new(
            "age",
            Op::InRange(IntRange::new(16, 31).expect("valid")),
        )),
        0,
    )
    .expect("grantable");
    assert!(
        sub.decrypt(&published(&ps, 16, 0)).is_ok(),
        "lower bound inclusive"
    );
    assert!(
        sub.decrypt(&published(&ps, 31, 0)).is_ok(),
        "upper bound inclusive"
    );
    assert!(sub.decrypt(&published(&ps, 15, 0)).is_err(), "below range");
    assert!(sub.decrypt(&published(&ps, 32, 0)).is_err(), "above range");
}

#[test]
fn epoch_rekeying_revokes_lazily() {
    let ps = deployment();
    let mut sub = ps.subscriber("S");
    ps.authorize_subscriber(&mut sub, &Filter::for_topic("w"), 0)
        .expect("grantable");
    // Events of the subscribed epoch decrypt…
    assert!(sub.decrypt(&published(&ps, 1, 0)).is_ok());
    // …events after the boundary don't, until the grant is renewed.
    let next = published(&ps, 1, 1);
    assert!(matches!(
        sub.decrypt(&next).unwrap_err(),
        DecryptError::EpochMismatch {
            event_epoch: 1,
            grant_epoch: 0
        }
    ));
    ps.authorize_subscriber(&mut sub, &Filter::for_topic("w"), 1)
        .expect("grantable");
    assert!(sub.decrypt(&next).is_ok());
}

#[test]
fn tampered_ciphertext_detected() {
    let ps = deployment();
    let mut sub = ps.subscriber("S");
    ps.authorize_subscriber(&mut sub, &Filter::for_topic("w"), 0)
        .expect("grantable");

    // Truncated ciphertext: the encrypt-then-MAC tag no longer verifies.
    let mut secure = published(&ps, 10, 0);
    let mut cut = secure.event.payload().to_vec();
    cut.pop();
    secure.event.replace_payload(cut);
    assert_eq!(sub.decrypt(&secure).unwrap_err(), DecryptError::BadMac);

    // A single flipped ciphertext bit is also caught.
    let mut secure = published(&ps, 10, 0);
    let mut flipped = secure.event.payload().to_vec();
    flipped[0] ^= 0x01;
    secure.event.replace_payload(flipped);
    assert_eq!(sub.decrypt(&secure).unwrap_err(), DecryptError::BadMac);

    // A tampered MAC itself is caught too.
    let mut secure = published(&ps, 10, 0);
    secure.mac[0] ^= 0xff;
    assert_eq!(sub.decrypt(&secure).unwrap_err(), DecryptError::BadMac);
}

#[test]
fn wrong_epoch_key_does_not_decrypt_even_with_matching_token() {
    // A subscriber holding ONLY a stale grant sees an epoch error, not
    // plaintext — the topic key ratchet makes old keys useless.
    let ps = deployment();
    let mut sub = ps.subscriber("S");
    ps.authorize_subscriber(&mut sub, &Filter::for_topic("w"), 3)
        .expect("grantable");
    let secure = published(&ps, 10, 4);
    assert!(matches!(
        sub.decrypt(&secure).unwrap_err(),
        DecryptError::EpochMismatch { .. }
    ));
}

#[test]
fn tokens_are_unlinkable_across_events() {
    // Two events on the same topic carry different (nonce, tag) pairs; an
    // observer cannot link them by equality (only a token holder can).
    let ps = deployment();
    let mut publisher = ps.publisher("P");
    ps.authorize_publisher(&mut publisher, "w", 0);
    let e = Event::builder("w")
        .attr("age", 1i64)
        .payload(vec![0])
        .build();
    let a = publisher.publish(&e, 0).expect("publishable");
    let b = publisher.publish(&e, 0).expect("publishable");
    assert_ne!(a.tag.nonce, b.tag.nonce);
    assert_ne!(a.tag.tag, b.tag.tag);
    let token = ps.routing_token("w");
    assert!(a.tag.matches(&token) && b.tag.matches(&token));
}

#[test]
fn grant_for_subrange_cannot_escalate() {
    // Holding keys for (0, 127) gives nothing about (128, 255) even
    // though both hang off the same NAKT root.
    let ps = deployment();
    let mut sub = ps.subscriber("S");
    ps.authorize_subscriber(
        &mut sub,
        &Filter::for_topic("w").with(Constraint::new("age", Op::Le(127))),
        0,
    )
    .expect("grantable");
    for age in [128i64, 200, 255] {
        assert_eq!(
            sub.decrypt(&published(&ps, age, 0)).unwrap_err(),
            DecryptError::NotAuthorized,
            "age={age}"
        );
    }
}

#[test]
fn distinct_master_seeds_are_cryptographically_disjoint() {
    let ps1 = deployment();
    let ps2 = PsGuard::new(
        b"a completely different master",
        Schema::builder()
            .numeric("age", IntRange::new(0, 255).expect("valid"), 1)
            .expect("valid nakt")
            .build(),
        PsGuardConfig::default(),
    );
    // Same filter, different deployments: the grant from one cannot
    // decrypt (or even match) traffic of the other.
    let mut sub = ps2.subscriber("S");
    ps2.authorize_subscriber(&mut sub, &Filter::for_topic("w"), 0)
        .expect("grantable");
    let secure = published(&ps1, 10, 0);
    assert_eq!(
        sub.decrypt(&secure).unwrap_err(),
        DecryptError::NoMatchingSubscription
    );
    assert_ne!(ps1.routing_token("w"), ps2.routing_token("w"));
}
