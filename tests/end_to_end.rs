//! End-to-end integration: KDC → publisher → broker overlay →
//! subscriber, across crate boundaries, for all four attribute families.

use psguard::{PsGuard, PsGuardConfig};
use psguard_keys::Schema;
use psguard_model::{AttrValue, CategoryPath, Constraint, Event, Filter, IntRange, Op};
use psguard_routing::SecureFilter;
use psguard_siena::{Action, Broker, Peer};

fn deployment() -> PsGuard {
    let schema = Schema::builder()
        .numeric("age", IntRange::new(0, 255).expect("valid"), 1)
        .expect("valid nakt")
        .category("diag", 4)
        .str_prefix("sym", 8)
        .str_suffix("file", 16)
        .build();
    PsGuard::new(b"e2e-master", schema, PsGuardConfig::default())
}

#[test]
fn all_four_families_roundtrip() {
    let ps = deployment();
    let mut publisher = ps.publisher("P");
    ps.authorize_publisher(&mut publisher, "w", 0);

    let cases: Vec<(Filter, Event)> = vec![
        (
            Filter::for_topic("w"),
            Event::builder("w").payload(b"plain".to_vec()).build(),
        ),
        (
            Filter::for_topic("w").with(Constraint::new("age", Op::Ge(10))),
            Event::builder("w")
                .attr("age", 40i64)
                .payload(b"numeric".to_vec())
                .build(),
        ),
        (
            Filter::for_topic("w").with(Constraint::new(
                "diag",
                Op::CategoryIn(CategoryPath::from_indices([1])),
            )),
            Event::builder("w")
                .attr(
                    "diag",
                    AttrValue::Category(CategoryPath::from_indices([1, 2, 0])),
                )
                .payload(b"category".to_vec())
                .build(),
        ),
        (
            Filter::for_topic("w").with(Constraint::new("sym", Op::StrPrefix("GO".into()))),
            Event::builder("w")
                .attr("sym", "GOOG")
                .payload(b"string-prefix".to_vec())
                .build(),
        ),
        (
            Filter::for_topic("w").with(Constraint::new("file", Op::StrSuffix(".log".into()))),
            Event::builder("w")
                .attr("file", "system.log")
                .payload(b"string-suffix".to_vec())
                .build(),
        ),
    ];

    for (filter, event) in cases {
        let mut sub = ps.subscriber("S");
        ps.authorize_subscriber(&mut sub, &filter, 0)
            .expect("grantable");
        let secure = publisher.publish(&event, 0).expect("publishable");
        let plain = sub
            .decrypt(&secure)
            .unwrap_or_else(|e| panic!("decrypt failed for {filter}: {e}"));
        assert_eq!(plain.payload(), event.payload());
    }
}

#[test]
fn secure_events_route_through_brokers_by_token_and_constraints() {
    let ps = deployment();
    let mut publisher = ps.publisher("P");
    ps.authorize_publisher(&mut publisher, "alerts", 0);
    ps.authorize_publisher(&mut publisher, "noise", 0);

    // One broker, two subscribers with different filters.
    let mut broker: Broker<SecureFilter> = Broker::new(true);
    let mut high = ps.subscriber("high");
    ps.authorize_subscriber(
        &mut high,
        &Filter::for_topic("alerts").with(Constraint::new("age", Op::Ge(100))),
        0,
    )
    .expect("grantable");
    broker.subscribe(Peer::Local(1), high.secure_filters().remove(0));

    let mut any = ps.subscriber("any");
    ps.authorize_subscriber(&mut any, &Filter::for_topic("alerts"), 0)
        .expect("grantable");
    broker.subscribe(Peer::Local(2), any.secure_filters().remove(0));

    // A low-severity alert reaches only the unconstrained subscriber.
    let low = publisher
        .publish(
            &Event::builder("alerts")
                .attr("age", 5i64)
                .payload(vec![1])
                .build(),
            0,
        )
        .expect("publishable");
    let out = broker.publish(Peer::Local(9), low);
    assert_eq!(out.len(), 1);
    assert!(matches!(out[0], Action::Deliver(Peer::Local(2), _)));

    // A high-severity alert reaches both.
    let high_ev = publisher
        .publish(
            &Event::builder("alerts")
                .attr("age", 200i64)
                .payload(vec![2])
                .build(),
            0,
        )
        .expect("publishable");
    let out = broker.publish(Peer::Local(9), high_ev);
    assert_eq!(out.len(), 2);

    // An event of a different topic matches neither (token mismatch),
    // even with identical attributes.
    let other = publisher
        .publish(
            &Event::builder("noise")
                .attr("age", 200i64)
                .payload(vec![3])
                .build(),
            0,
        )
        .expect("publishable");
    assert!(broker.publish(Peer::Local(9), other).is_empty());
}

#[test]
fn broker_visible_surface_leaks_no_plaintext() {
    let ps = deployment();
    let mut publisher = ps.publisher("P");
    ps.authorize_publisher(&mut publisher, "secret-topic", 0);

    let payload = b"extremely confidential payload".to_vec();
    let event = Event::builder("secret-topic")
        .attr("age", 33i64)
        .payload(payload.clone())
        .build();
    let secure = publisher.publish(&event, 0).expect("publishable");

    // What a broker sees: no topic string, no plaintext payload bytes.
    assert_eq!(secure.event.topic(), "");
    assert_ne!(secure.event.payload(), payload.as_slice());
    let wire = {
        use psguard_siena::Wire;
        secure.to_bytes()
    };
    let needle = b"secret-topic";
    assert!(
        !wire.windows(needle.len()).any(|w| w == needle),
        "topic name must not appear on the wire"
    );
    assert!(
        !wire.windows(payload.len()).any(|w| w == payload.as_slice()),
        "payload must not appear on the wire"
    );
    // The routable attribute is visible — that is the design point.
    assert_eq!(secure.event.attr("age").and_then(|v| v.as_int()), Some(33));
}

#[test]
fn two_subscribers_same_filter_need_no_coordination() {
    // The PSGuard property: grants are independent of other subscribers;
    // two subscribers with the same filter get identical key material
    // without the KDC tracking either of them.
    let ps = deployment();
    let f = Filter::for_topic("w").with(Constraint::new("age", Op::Le(99)));
    let mut s1 = ps.subscriber("s1");
    let mut s2 = ps.subscriber("s2");
    ps.authorize_subscriber(&mut s1, &f, 0).expect("grantable");
    ps.authorize_subscriber(&mut s2, &f, 0).expect("grantable");
    assert_eq!(s1.key_count(), s2.key_count());

    let mut publisher = ps.publisher("P");
    ps.authorize_publisher(&mut publisher, "w", 0);
    let e = Event::builder("w")
        .attr("age", 12i64)
        .payload(vec![7])
        .build();
    let secure = publisher.publish(&e, 0).expect("publishable");
    assert_eq!(
        s1.decrypt(&secure).expect("s1").payload(),
        s2.decrypt(&secure).expect("s2").payload()
    );
}

#[test]
fn wire_roundtrip_through_frames() {
    use psguard_siena::wire::{read_frame, write_frame};
    use psguard_siena::{Message, Wire};

    let ps = deployment();
    let mut publisher = ps.publisher("P");
    ps.authorize_publisher(&mut publisher, "w", 0);
    let secure = publisher
        .publish(
            &Event::builder("w")
                .attr("age", 1i64)
                .payload(vec![1, 2, 3])
                .build(),
            0,
        )
        .expect("publishable");

    let msg: Message<SecureFilter, psguard_routing::SecureEvent> = Message::Publish(secure.clone());
    let mut buf = Vec::new();
    write_frame(&mut buf, &msg.to_bytes()).expect("write");
    let mut cursor = std::io::Cursor::new(buf);
    let frame = read_frame(&mut cursor).expect("read");
    let decoded =
        Message::<SecureFilter, psguard_routing::SecureEvent>::from_bytes(&frame).expect("decode");
    assert_eq!(decoded, Message::Publish(secure));
}
