//! The §5.2 workload at paper scale, end-to-end: 32 subscribers × 32
//! subscriptions over 128 topics of all four families, several hundred
//! publications — decryption success must coincide exactly with
//! plaintext-filter matching for every (event, subscriber) pair.

use psguard::{PsGuard, PsGuardConfig};
use psguard_analysis::{Workload, WorkloadConfig};
use psguard_keys::Schema;
use psguard_model::{Filter, IntRange};

fn paper_schema() -> Schema {
    Schema::builder()
        .numeric("value", IntRange::new(0, 255).expect("valid"), 4)
        .expect("valid nakt")
        .category("category", 4)
        .str_prefix("str", 8)
        .build()
}

#[test]
fn paper_workload_end_to_end() {
    let ps = PsGuard::new(b"scale-master", paper_schema(), PsGuardConfig::default());
    let mut workload = Workload::new(WorkloadConfig::default(), 2026);

    let mut publisher = ps.publisher("P");
    for t in workload.topics() {
        ps.authorize_publisher(&mut publisher, &t.name, 0);
    }

    // 32 subscribers, 32 subscriptions each.
    let mut subscribers = Vec::new();
    for s in 0..32 {
        let mut sub = ps.subscriber(format!("s{s}"));
        let filters = workload.subscriptions(32);
        for f in &filters {
            ps.authorize_subscriber(&mut sub, f, 0)
                .unwrap_or_else(|e| panic!("subscriber {s} filter {f}: {e}"));
        }
        subscribers.push((sub, filters));
    }

    // Publish 300 popularity-drawn events and check every pair.
    let mut decrypted = 0u32;
    let mut refused = 0u32;
    let mut lc_grace = 0u32;
    for _ in 0..300 {
        let event = workload.random_event();
        let secure = publisher.publish(&event, 0).expect("publishable");
        for (sub, filters) in subscribers.iter_mut() {
            let matches = filters.iter().any(|f| f.matches(&event));
            match sub.decrypt(&secure) {
                Ok(plain) => {
                    // Least-count snapping (lc = 4) can legitimately widen a
                    // numeric grant beyond the exact filter: decryption may
                    // succeed for events in the same NAKT cell just outside
                    // the subscribed range. Track but tolerate those.
                    if !matches {
                        lc_grace += 1;
                    }
                    assert_eq!(plain.payload(), event.payload());
                    decrypted += 1;
                }
                Err(_) => {
                    assert!(
                        !matches,
                        "matching event must decrypt: topic={} sub={}",
                        event.topic(),
                        sub.name()
                    );
                    refused += 1;
                }
            }
        }
    }

    // Sanity on the totals: plenty of both outcomes, and least-count
    // grace cases are a small minority.
    assert!(decrypted > 500, "decrypted={decrypted}");
    assert!(refused > 2000, "refused={refused}");
    assert!(
        (lc_grace as f64) < 0.1 * decrypted as f64,
        "lc_grace={lc_grace} vs decrypted={decrypted}"
    );
}

#[test]
fn key_counts_stay_flat_as_population_grows() {
    // The PSGuard scalability claim at workload scale: the 33rd
    // subscriber's grant is exactly as big as the 1st's, and the KDC
    // performed no per-subscriber state updates (it has no state at all).
    let ps = PsGuard::new(b"scale-master", paper_schema(), PsGuardConfig::default());
    let mut workload = Workload::new(WorkloadConfig::default(), 7);

    let mut counts = Vec::new();
    for s in 0..33 {
        let mut sub = ps.subscriber(format!("s{s}"));
        for f in workload.subscriptions(32) {
            ps.authorize_subscriber(&mut sub, &f, 0).expect("grantable");
        }
        counts.push(sub.key_count());
    }
    let first10: f64 = counts[..10].iter().sum::<usize>() as f64 / 10.0;
    let last10: f64 = counts[23..].iter().sum::<usize>() as f64 / 10.0;
    assert!(
        (first10 - last10).abs() / first10 < 0.2,
        "key counts drifted: {first10} vs {last10}"
    );
}

#[test]
fn same_filter_same_grant_under_churn() {
    // Churn does not perturb anybody: grants are pure functions.
    let ps = PsGuard::new(b"scale-master", paper_schema(), PsGuardConfig::default());
    let mut workload = Workload::new(WorkloadConfig::default(), 8);
    let filter: Filter = workload.subscriptions(1).remove(0);

    let mut early = ps.subscriber("early");
    ps.authorize_subscriber(&mut early, &filter, 0)
        .expect("grantable");
    let early_keys = early.key_count();

    // 100 churning subscribers later…
    for s in 0..100 {
        let mut sub = ps.subscriber(format!("churn{s}"));
        for f in workload.subscriptions(4) {
            ps.authorize_subscriber(&mut sub, &f, 0).expect("grantable");
        }
        drop(sub); // leaves: requires no KDC action at all
    }

    let mut late = ps.subscriber("late");
    ps.authorize_subscriber(&mut late, &filter, 0)
        .expect("grantable");
    assert_eq!(early_keys, late.key_count());
}
