//! A deeper TCP overlay: a three-level broker tree carrying PSGuard's
//! encrypted envelopes end-to-end, with covering-aware subscription
//! propagation across real sockets.

use std::time::Duration;

use psguard::{PsGuard, PsGuardConfig};
use psguard_keys::Schema;
use psguard_model::{Constraint, Event, Filter, IntRange, Op};
use psguard_routing::SecureFilter;
use psguard_siena::{spawn_broker, TcpClient};

#[test]
fn three_level_secure_tree() {
    let schema = Schema::builder()
        .numeric("sev", IntRange::new(0, 10).expect("valid"), 1)
        .expect("valid nakt")
        .build();
    let ps = PsGuard::new(b"tcp-overlay-master", schema, PsGuardConfig::default());
    let mut publisher = ps.publisher("mon");
    ps.authorize_publisher(&mut publisher, "alerts", 0);

    // Tree: root -> {mid_l, mid_r}; mid_l -> {leaf_a, leaf_b}.
    let root = spawn_broker::<SecureFilter>("127.0.0.1:0", None).expect("root");
    let mid_l = spawn_broker::<SecureFilter>("127.0.0.1:0", Some(root.addr())).expect("mid_l");
    let mid_r = spawn_broker::<SecureFilter>("127.0.0.1:0", Some(root.addr())).expect("mid_r");
    let leaf_a = spawn_broker::<SecureFilter>("127.0.0.1:0", Some(mid_l.addr())).expect("leaf_a");
    let leaf_b = spawn_broker::<SecureFilter>("127.0.0.1:0", Some(mid_l.addr())).expect("leaf_b");

    // Two subscribers at different leaves, different thresholds.
    let mut high = ps.subscriber("high");
    ps.authorize_subscriber(
        &mut high,
        &Filter::for_topic("alerts").with(Constraint::new("sev", Op::Ge(8))),
        0,
    )
    .expect("grantable");
    let high_conn: TcpClient<SecureFilter> = TcpClient::connect(leaf_a.addr()).expect("connect");
    high_conn
        .subscribe_acked(high.secure_filters().remove(0), Duration::from_secs(5))
        .expect("ack climbs leaf_a -> mid_l -> root");

    let mut any = ps.subscriber("any");
    ps.authorize_subscriber(&mut any, &Filter::for_topic("alerts"), 0)
        .expect("grantable");
    let any_conn: TcpClient<SecureFilter> = TcpClient::connect(leaf_b.addr()).expect("connect");
    any_conn
        .subscribe_acked(any.secure_filters().remove(0), Duration::from_secs(5))
        .expect("ack climbs leaf_b -> mid_l -> root");

    // Publish from the far side of the tree (under mid_r).
    let feed: TcpClient<SecureFilter> = TcpClient::connect(mid_r.addr()).expect("connect");
    for sev in [2i64, 9] {
        let e = Event::builder("alerts")
            .attr("sev", sev)
            .payload(format!("sev{sev}").into_bytes())
            .build();
        feed.publish(publisher.publish(&e, 0).expect("publishable"))
            .expect("enqueue");
    }

    // `any` gets both, decrypts both; `high` only the sev-9.
    let mut got_any = Vec::new();
    while let Some(se) = any_conn.recv_timeout(Duration::from_secs(5)) {
        got_any.push(any.decrypt(&se).expect("authorized").payload().to_vec());
        if got_any.len() == 2 {
            break;
        }
    }
    got_any.sort();
    assert_eq!(got_any, vec![b"sev2".to_vec(), b"sev9".to_vec()]);

    let se = high_conn
        .recv_timeout(Duration::from_secs(5))
        .expect("sev-9 must arrive");
    assert_eq!(high.decrypt(&se).expect("authorized").payload(), b"sev9");
    assert!(
        high_conn.recv_timeout(Duration::from_millis(300)).is_none(),
        "sev-2 must be filtered in-network before leaf_a"
    );

    drop(high_conn);
    drop(any_conn);
    drop(feed);
    leaf_a.shutdown();
    leaf_b.shutdown();
    mid_l.shutdown();
    mid_r.shutdown();
    root.shutdown();
}
